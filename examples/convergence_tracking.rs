//! Convergence-threshold iteration under updates — the paper's §3.1
//! "future work" implemented: the maintained iteration keeps its own
//! stopping rule, and each update may extend the horizon (re-evaluating
//! extra steps, footnote 3) or truncate now-outdated results.
//!
//! The workload is a damped PageRank-style fixed point `Tᵢ₊₁ = A·Tᵢ + b`
//! whose contraction rate we perturb: damping the link matrix makes
//! convergence *faster* (truncation), amplifying it makes convergence
//! *slower* (extension).
//!
//! Run with: `cargo run --release --example convergence_tracking`

use linview::apps::convergence::ConvergentIteration;
use linview::prelude::*;

fn main() {
    let n = 150;
    let eps = 1e-9;

    // Damped column-stochastic iteration: spectral radius 0.85. Cold start
    // from all mass on page 0 (a uniform start is already near-stationary
    // and converges immediately — no horizon to maintain).
    let m = Matrix::random_stochastic(n, 11).transpose();
    let a = m.scale(0.85);
    let b = Matrix::filled(n, 1, 0.15 / n as f64);
    let mut t0 = Matrix::zeros(n, 1);
    t0.set(0, 0, 1.0);

    let mut it =
        ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), eps, 10_000).expect("converges");
    println!(
        "initial run: {} iterations to reach ‖ΔT‖ < {eps:.0e}",
        it.iterations()
    );

    // 1. A small link perturbation: the horizon barely moves.
    let small = RankOneUpdate::row_update(n, n, 17, 0.001, 3);
    it.apply(&small).expect("maintains");
    println!(
        "after a small link update:   k = {:>4}  (extended {}, truncated {})",
        it.iterations(),
        it.last_extension(),
        it.last_truncation()
    );

    // 2. Shift 40% of column 0's mass away: the fixed point moves and the
    //    stopping index adjusts — extension (footnote 3) or truncation,
    //    whichever the new residual chain dictates.
    let col = it.a().col_matrix(0);
    let mut e0 = Matrix::zeros(n, 1);
    e0.set(0, 0, 1.0);
    let damp = RankOneUpdate {
        u: col.scale(-0.4),
        v: e0.clone(),
    };
    it.apply(&damp).expect("maintains");
    println!(
        "after damping column 0:      k = {:>4}  (extended {}, truncated {})",
        it.iterations(),
        it.last_extension(),
        it.last_truncation()
    );

    // 3. Put the mass back: the horizon returns to (near) its old value,
    //    exercising the opposite adjustment path.
    let boost = RankOneUpdate {
        u: col.scale(0.4),
        v: e0,
    };
    it.apply(&boost).expect("maintains");
    println!(
        "after restoring column 0:    k = {:>4}  (extended {}, truncated {})",
        it.iterations(),
        it.last_extension(),
        it.last_truncation()
    );

    // Cross-check the final state against a fresh convergent run.
    let mut fresh_prev = t0;
    let mut fresh_iters = 0;
    let result = loop {
        let next = it
            .a()
            .try_matmul(&fresh_prev)
            .expect("conforming")
            .try_add(&b)
            .expect("conforming");
        fresh_iters += 1;
        let r = next
            .try_sub(&fresh_prev)
            .expect("conforming")
            .frobenius_norm();
        if r < eps {
            break next;
        }
        fresh_prev = next;
    };
    println!(
        "fresh re-run: {} iterations, divergence {:.2e}",
        fresh_iters,
        it.result().rel_diff(&result)
    );
    assert_eq!(it.iterations(), fresh_iters);
    assert!(it.result().rel_diff(&result) < 1e-7);
}
