//! Linear dynamical systems under model updates — §5.2's "solving systems
//! of linear differential equations using matrix exponentials" motivation,
//! maintained incrementally.
//!
//! The system is `ẋ = A·x` with solution `x(t) = exp(A·t)·x₀`. We maintain
//! the truncated-Taylor solution operator `E ≈ exp(A)` as a view; each
//! calibration update to the system matrix `A` (one rank-1 change — e.g.
//! re-estimating one row's couplings) refreshes `E` incrementally instead
//! of re-summing the series.
//!
//! Run with: `cargo run --release --example linear_ode`

use linview::prelude::*;
use std::time::Instant;

fn main() {
    let n = 120;
    let terms = 14;
    let updates = 12;

    // A stable random system: spectral radius 0.6 keeps exp(A) tame and
    // the 14-term Taylor truncation accurate to ~1e-12.
    let a = Matrix::random_spectral(n, 5, 0.6);
    let x0 = Matrix::random_col(n, 6);

    let mut incr = IncrExpm::new(a.clone(), terms).expect("series converges");
    let mut reeval = ReevalExpm::new(a, terms).expect("series converges");
    println!("linear ODE x' = Ax, n = {n}, {terms}-term Taylor solution operator");
    println!("  initial state norm ‖x₀‖ = {:.4}", x0.frobenius_norm());
    println!(
        "  initial solution  ‖x(1)‖ = {:.4}",
        incr.evolve(&x0).expect("conforming").frobenius_norm()
    );

    // Stream of calibration updates, applied both ways.
    let mut stream = UpdateStream::new(n, n, 0.01, 7);
    let events: Vec<RankOneUpdate> = (0..updates).map(|_| stream.next_rank_one()).collect();

    let t0 = Instant::now();
    for upd in &events {
        incr.apply(upd).expect("maintains");
    }
    let incr_elapsed = t0.elapsed();

    let t1 = Instant::now();
    for upd in &events {
        reeval.apply(upd).expect("recomputes");
    }
    let reeval_elapsed = t1.elapsed();

    let drift = incr.value().rel_diff(reeval.value());
    println!("  {updates} model updates: INCR {incr_elapsed:?} vs REEVAL {reeval_elapsed:?}");
    println!("  divergence between strategies: {drift:.2e}");
    assert!(drift < 1e-8);

    // The maintained operator still solves the ODE: compare one step of
    // the updated system against a fine Euler integration.
    let x1 = incr.evolve(&x0).expect("conforming");
    let steps = 20_000;
    let h = 1.0 / steps as f64;
    let mut euler = x0.clone();
    for _ in 0..steps {
        let dx = incr.a().try_matmul(&euler).expect("conforming").scale(h);
        euler.add_assign_from(&dx).expect("same shape");
    }
    println!(
        "  ‖exp(A)x₀ − Euler(h=1/{steps})‖/‖x‖ = {:.2e}",
        x1.rel_diff(&euler)
    );
    assert!(x1.rel_diff(&euler) < 1e-3, "solution operator is wrong");
}
