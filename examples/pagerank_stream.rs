//! Streaming PageRank over an evolving link graph — the `p = 1` instance of
//! the general iterative form where the paper's HYBRID strategy wins
//! (§5.3, Fig. 3g).
//!
//! Run with: `cargo run --release --example pagerank_stream`

use linview::apps::general::Strategy;
use linview::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 200;
    let k = 16;
    let damping = 0.85;
    let edge_events = 30;

    // A random initial graph: ~8 out-links per node.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut edges = Vec::new();
    for src in 0..n {
        for _ in 0..8 {
            edges.push((src, rng.random_range(0..n)));
        }
    }

    let mut maintainers: Vec<(Strategy, PageRank)> =
        [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid]
            .into_iter()
            .map(|s| {
                (
                    s,
                    PageRank::new(n, &edges, damping, k, IterModel::Linear, s)
                        .expect("pagerank builds"),
                )
            })
            .collect();

    // A stream of edge insertions/removals, applied to all maintainers.
    let events: Vec<(bool, usize, usize)> = (0..edge_events)
        .map(|_| {
            (
                rng.random::<f64>() < 0.7,
                rng.random_range(0..n),
                rng.random_range(0..n),
            )
        })
        .collect();

    println!("PageRank over {n} nodes, k = {k} iterations, {edge_events} edge events:");
    for (strategy, pr) in &mut maintainers {
        let t0 = Instant::now();
        for &(insert, src, dst) in &events {
            if insert {
                pr.add_edge(src, dst).expect("edge insert");
            } else {
                pr.remove_edge(src, dst).expect("edge remove");
            }
        }
        println!("  {:<12} {:>10.2?}", strategy.label(), t0.elapsed());
    }

    // All strategies must agree on the final ranks.
    let reference = maintainers[0].1.ranks().clone();
    for (strategy, pr) in &maintainers[1..] {
        let diff = pr.ranks().rel_diff(&reference);
        println!("  {} vs REEVAL divergence: {:.2e}", strategy.label(), diff);
        assert!(diff < 1e-7);
    }

    // Show the top-5 pages.
    let ranks = maintainers[0].1.ranks();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        ranks
            .get(b, 0)
            .partial_cmp(&ranks.get(a, 0))
            .expect("ranks are finite")
    });
    println!("  top pages: {:?}", &order[..5]);
}
