//! Streaming maintenance with batched multi-input ingestion, on every
//! execution backend.
//!
//! A Zipf-skewed stream of rank-1 events over TWO dynamic inputs (`A` and
//! `B` of `C := A * B; D := C * C;`) flows into a `MaintenanceEngine`,
//! which coalesces per-input events into rank-k batches and fires the
//! compiled triggers through the pluggable `ExecBackend` — the same code
//! path whether views are in-process dense matrices (`LocalBackend`),
//! grid-partitioned over the simulated cluster (`DistBackend`, §6), or
//! owned by real worker threads that receive every factor broadcast as a
//! serialized byte frame (`ThreadedBackend`). Final flushes fire ONE joint
//! trigger per round (§4.4) when both inputs are pending.
//!
//! Run with:
//! `cargo run --release --example maintenance_engine -- [local|dist|threaded|both|all]`

use linview::prelude::*;
use linview::runtime::{DistBackend, ExecBackend, FlushPolicy, MaintenanceEngine, ThreadedBackend};

const N: usize = 48;
const EVENTS: usize = 64;
const ZIPF: f64 = 1.5;
const WORKERS: usize = 4;

/// Streams the workload at the given batch size; returns (firings, D).
fn stream<B: ExecBackend>(view: IncrementalView<B>, batch: usize) -> (u64, Matrix) {
    view.reset_comm();
    let policy = if batch <= 1 {
        FlushPolicy::Immediate
    } else {
        FlushPolicy::Count(batch)
    };
    let mut engine = MaintenanceEngine::new(view, policy);
    let mut updates = UpdateStream::new(N, N, 0.01, 99);
    for i in 0..EVENTS {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine
            .ingest(input, updates.next_rank_one_zipf(ZIPF))
            .expect("event ingests");
    }
    engine.flush_all().expect("final flush");
    let stats = engine.stats();
    let comm = engine.comm();
    println!(
        "  {:>8} backend, batch {:>2}: {:>2} firings (fired rank {:>2}, {} joint rounds \
         saving {} firings), mean refresh {:>10.2?}, broadcast {:>7} B, shuffle {} B, \
         {} stmts in {} stages, {} overlapped broadcasts",
        engine.view().backend().name(),
        batch,
        stats.firings,
        stats.fired_rank,
        stats.joint_rounds,
        stats.triggers_saved,
        stats.refresh.mean_wall(),
        comm.broadcast_bytes,
        comm.shuffle_bytes,
        stats.stmts,
        stats.stages,
        stats.overlapped_broadcasts,
    );
    let d = engine.get("D").expect("D is maintained").clone();
    (stats.firings, d)
}

fn build_local(program: &Program, inputs: &[(&str, Matrix)], cat: &Catalog) -> IncrementalView {
    IncrementalView::build(program, inputs, cat).expect("local view builds")
}

fn build_dist(
    program: &Program,
    inputs: &[(&str, Matrix)],
    cat: &Catalog,
) -> IncrementalView<DistBackend> {
    let backend = DistBackend::new(WORKERS).expect("square worker count");
    IncrementalView::build_on(backend, program, inputs, cat).expect("dist view builds")
}

fn build_threaded(
    program: &Program,
    inputs: &[(&str, Matrix)],
    cat: &Catalog,
) -> IncrementalView<ThreadedBackend> {
    let backend = ThreadedBackend::new(WORKERS).expect("square worker count");
    IncrementalView::build_on(backend, program, inputs, cat).expect("threaded view builds")
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let program = parse_program("C := A * B; D := C * C;").expect("program parses");
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("B", N, N);
    let a = Matrix::random_spectral(N, 7, 0.8);
    let b = Matrix::random_spectral(N, 8, 0.8);
    let inputs = [("A", a), ("B", b)];

    println!(
        "maintenance engine: C := A * B; D := C * C; — {EVENTS} Zipf({ZIPF}) events over A, B (n = {N})"
    );

    let mut reference: Option<Matrix> = None;
    for batch in [1usize, 8] {
        let mut per_batch: Vec<(u64, Matrix)> = Vec::new();
        if matches!(which.as_str(), "local" | "both" | "all") {
            per_batch.push(stream(build_local(&program, &inputs, &cat), batch));
        }
        if matches!(which.as_str(), "dist" | "both" | "all") {
            per_batch.push(stream(build_dist(&program, &inputs, &cat), batch));
        }
        if matches!(which.as_str(), "threaded" | "all") {
            per_batch.push(stream(build_threaded(&program, &inputs, &cat), batch));
        }
        assert!(
            !per_batch.is_empty(),
            "usage: -- [local|dist|threaded|both|all]"
        );
        // Every backend and every batch size must maintain the same D:
        // batching is exact, and the backends share one execution path.
        for (_, d) in &per_batch {
            match &reference {
                None => reference = Some(d.clone()),
                Some(r) => {
                    let diff = r.max_abs_diff(d);
                    assert!(diff < 1e-9, "views diverged by {diff:.2e}");
                }
            }
        }
        if batch > 1 {
            let max_firings = per_batch.iter().map(|(f, _)| *f).max().unwrap();
            assert!(
                max_firings < EVENTS as u64,
                "batching must fire fewer triggers than events"
            );
        }
    }
    println!("all backends and batch sizes agree on D (divergence < 1e-9)");
}
