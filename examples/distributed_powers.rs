//! Distributed matrix powers on the simulated cluster (§6, Fig. 3f).
//!
//! Re-evaluation shuffles full matrix blocks on every product; incremental
//! maintenance runs the compiled trigger to obtain the factored delta
//! `ΔC = U_C V_Cᵀ` and only *broadcasts* those skinny factors to the
//! workers holding the partitioned view. This example makes the §6
//! communication claim concrete by metering both. The incremental side is
//! the generic `IncrementalView` on a `DistBackend` — the same triggers
//! and interpreter that drive local maintenance.
//!
//! The third meter is the `ThreadedBackend`: the same triggers again, but
//! the partitions live on real worker threads and every factor broadcast
//! is a serialized byte frame moved over a channel — its traffic numbers
//! are exact frame lengths, not analytical estimates, and its gathered
//! view must equal the simulated one bit for bit.
//!
//! Run with: `cargo run --release --example distributed_powers`

use linview::prelude::*;
use linview::runtime::{DistBackend, ThreadedBackend};
use std::time::Instant;

fn main() {
    let n = 240;
    let updates = 3;

    // Program: C = A^4 via two squarings.
    let program = parse_program("B := A * A; C := B * B;").expect("program parses");
    let mut cat = Catalog::new();
    cat.declare("A", n, n);

    let a = Matrix::random_spectral(n, 5, 0.9);

    for workers in [4, 16] {
        let grid = (workers as f64).sqrt() as usize;

        // --- Distributed re-evaluation: recompute A² and A⁴ per update. ---
        let reeval_cluster = Cluster::new(workers);
        let mut a_cur = a.clone();
        let mut stream = UpdateStream::new(n, n, 0.01, 55);
        let t0 = Instant::now();
        let mut reeval_c = None;
        for _ in 0..updates {
            let upd = stream.next_rank_one();
            upd.apply_to(&mut a_cur).expect("update applies");
            let da = DistMatrix::from_dense(&a_cur, grid).expect("partitions");
            let d2 = dist_matmul(&da, &da, &reeval_cluster).expect("A^2");
            let d4 = dist_matmul(&d2, &d2, &reeval_cluster).expect("A^4");
            reeval_c = Some(d4);
        }
        let reeval_time = t0.elapsed();
        let reeval_comm = reeval_cluster.comm().reset();

        // --- Distributed incremental: the compiled trigger fires through
        //     the DistBackend — delta blocks evaluate centrally (they are
        //     O(kn), tiny), factors broadcast, workers update their
        //     partitions locally with no shuffle. ---
        let backend = DistBackend::new(workers).expect("square worker count");
        let mut incr = IncrementalView::build_on(backend, &program, &[("A", a.clone())], &cat)
            .expect("incremental view builds");
        incr.reset_comm();
        let mut stream = UpdateStream::new(n, n, 0.01, 55);
        let t0 = Instant::now();
        for _ in 0..updates {
            incr.apply("A", &stream.next_rank_one())
                .expect("trigger fires");
        }
        let incr_time = t0.elapsed();
        let incr_comm = incr.reset_comm();

        // --- Threaded incremental: identical triggers, but the broadcast
        //     factors are serialized into frames and *moved* to worker
        //     threads that own the partitions. ---
        let backend = ThreadedBackend::new(workers).expect("square worker count");
        let mut thr = IncrementalView::build_on(backend, &program, &[("A", a.clone())], &cat)
            .expect("threaded view builds");
        thr.reset_comm();
        let mut stream = UpdateStream::new(n, n, 0.01, 55);
        let t0 = Instant::now();
        for _ in 0..updates {
            thr.apply("A", &stream.next_rank_one())
                .expect("trigger fires");
        }
        let thr_time = t0.elapsed();
        let thr_comm = thr.reset_comm();

        let dist_c = incr.backend().view("C").expect("C is partitioned");
        let thr_c = thr.backend().view("C").expect("C is partitioned");
        assert_eq!(
            dist_c, thr_c,
            "simulated and thread-owned partitions diverged"
        );
        let diff = dist_c.rel_diff(&reeval_c.expect("ran").to_dense());
        println!("workers = {workers} (grid {grid}x{grid}), n = {n}, {updates} updates of A^4:");
        println!(
            "  REEVAL:        {:>9.2?}, shuffle {:>12} B, broadcast {:>10} B",
            reeval_time, reeval_comm.shuffle_bytes, reeval_comm.broadcast_bytes
        );
        println!(
            "  INCR (dist):   {:>9.2?}, shuffle {:>12} B, broadcast {:>10} B (metered model)",
            incr_time, incr_comm.shuffle_bytes, incr_comm.broadcast_bytes
        );
        println!(
            "  INCR (thread): {:>9.2?}, shuffle {:>12} B, broadcast {:>10} B (real frames)",
            thr_time, thr_comm.shuffle_bytes, thr_comm.broadcast_bytes
        );
        println!(
            "  comm reduction: {:.0}x   divergence: {:.2e}\n",
            reeval_comm.total_bytes() as f64 / incr_comm.total_bytes().max(1) as f64,
            diff
        );
        assert!(diff < 1e-7);
        assert_eq!(thr_comm.shuffle_bytes, 0);
        assert!(thr_comm.broadcast_bytes > incr_comm.broadcast_bytes);
    }
}
