//! Distributed matrix powers on the simulated cluster (§6, Fig. 3f).
//!
//! Re-evaluation shuffles full matrix blocks on every product; incremental
//! maintenance runs the compiled trigger to obtain the factored delta
//! `ΔC = U_C V_Cᵀ` and only *broadcasts* those skinny factors to the
//! workers holding the partitioned view. This example makes the §6
//! communication claim concrete by metering both.
//!
//! Run with: `cargo run --release --example distributed_powers`

use linview::compiler::{compile, CompileOptions, TriggerStmt};
use linview::prelude::*;
use std::time::Instant;

fn main() {
    let n = 240;
    let updates = 3;

    // Program: C = A^4 via two squarings.
    let program = parse_program("B := A * A; C := B * B;").expect("program parses");
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).expect("compiles");
    let trigger = tp.trigger_for("A").expect("trigger exists").clone();

    let a = Matrix::random_spectral(n, 5, 0.9);

    for workers in [4, 16] {
        let grid = (workers as f64).sqrt() as usize;

        // --- Distributed re-evaluation: recompute A² and A⁴ per update. ---
        let reeval_cluster = Cluster::new(workers);
        let mut a_cur = a.clone();
        let mut stream = UpdateStream::new(n, n, 0.01, 55);
        let t0 = Instant::now();
        let mut reeval_c = None;
        for _ in 0..updates {
            let upd = stream.next_rank_one();
            upd.apply_to(&mut a_cur).expect("update applies");
            let da = DistMatrix::from_dense(&a_cur, grid).expect("partitions");
            let d2 = dist_matmul(&da, &da, &reeval_cluster).expect("A^2");
            let d4 = dist_matmul(&d2, &d2, &reeval_cluster).expect("A^4");
            reeval_c = Some(d4);
        }
        let reeval_time = t0.elapsed();
        let reeval_comm = reeval_cluster.comm().reset();

        // --- Distributed incremental: evaluate the trigger's delta blocks
        //     centrally (they are O(kn), tiny), then broadcast them to the
        //     partitioned views. ---
        let incr_cluster = Cluster::new(workers);
        let evaluator = Evaluator::new();
        let mut env = Env::new();
        env.bind("A", a.clone());
        let b0 = a.try_matmul(&a).expect("B");
        env.bind("C", b0.try_matmul(&b0).expect("C"));
        env.bind("B", b0);
        let mut dist_b = DistMatrix::from_dense(env.get("B").expect("B"), grid).expect("part B");
        let mut dist_c = DistMatrix::from_dense(env.get("C").expect("C"), grid).expect("part C");
        let mut dist_a = DistMatrix::from_dense(&a, grid).expect("part A");

        let mut stream = UpdateStream::new(n, n, 0.01, 55);
        let t0 = Instant::now();
        for _ in 0..updates {
            let upd = stream.next_rank_one();
            env.bind("dU_A", upd.u.clone());
            env.bind("dV_A", upd.v.clone());
            // Compute phase: evaluate every block assignment centrally.
            for stmt in &trigger.stmts {
                match stmt {
                    TriggerStmt::Assign { var, expr } => {
                        let value = evaluator.eval(expr, &env).expect("block evaluates");
                        env.bind(var.clone(), value);
                    }
                    TriggerStmt::ApplyDelta { target, u, v } => {
                        // Broadcast the factors; workers update their blocks.
                        let um = evaluator.eval(u, &env).expect("U evaluates");
                        let vm = evaluator.eval(v, &env).expect("V evaluates");
                        let dist = match target.as_str() {
                            "A" => &mut dist_a,
                            "B" => &mut dist_b,
                            _ => &mut dist_c,
                        };
                        dist_add_low_rank(dist, &um, &vm, &incr_cluster).expect("low-rank update");
                        // Keep the central copy in sync for later blocks.
                        let delta = um.try_matmul(&vm.transpose()).expect("delta materializes");
                        env.get_mut(target)
                            .expect("view bound")
                            .add_assign_from(&delta)
                            .expect("shapes match");
                    }
                    TriggerStmt::ShermanMorrison { .. } => unreachable!("no inverses here"),
                }
            }
        }
        let incr_time = t0.elapsed();
        let incr_comm = incr_cluster.comm().reset();

        let diff = dist_c
            .to_dense()
            .rel_diff(&reeval_c.expect("ran").to_dense());
        println!("workers = {workers} (grid {grid}x{grid}), n = {n}, {updates} updates of A^4:");
        println!(
            "  REEVAL: {:>9.2?}, shuffle {:>12} B, broadcast {:>10} B",
            reeval_time, reeval_comm.shuffle_bytes, reeval_comm.broadcast_bytes
        );
        println!(
            "  INCR:   {:>9.2?}, shuffle {:>12} B, broadcast {:>10} B",
            incr_time, incr_comm.shuffle_bytes, incr_comm.broadcast_bytes
        );
        println!(
            "  comm reduction: {:.0}x   divergence: {:.2e}\n",
            reeval_comm.total_bytes() as f64 / incr_comm.total_bytes().max(1) as f64,
            diff
        );
        assert!(diff < 1e-7);
    }
}
