//! Online Ordinary Least Squares (§5.1, Fig. 3e): maintain the estimator
//! `β* = (XᵀX)⁻¹XᵀY` while observation rows keep changing, using the
//! compiled Sherman–Morrison trigger instead of re-inverting.
//!
//! Run with: `cargo run --release --example ols_online`

use linview::prelude::*;
use std::time::Instant;

fn main() {
    let n = 192;
    let updates = 8;

    // Well-conditioned predictors; single response column (the paper's
    // cheapest-for-reevaluation setting).
    let x = Matrix::random_diag_dominant(n, 3);
    let y = Matrix::random_col(n, 4);

    let mut reeval = ReevalOls::new(x.clone(), y.clone()).expect("reeval OLS");
    let mut incr = IncrOls::new(x, y).expect("incremental OLS");

    println!(
        "Compiled OLS trigger (note the sherman_morrison statement):\n{}",
        incr.trigger_program()
    );

    let mut stream = UpdateStream::new(n, n, 0.001, 11);
    let batch: Vec<RankOneUpdate> = (0..updates).map(|_| stream.next_rank_one()).collect();

    let t0 = Instant::now();
    for upd in &batch {
        reeval.apply(upd).expect("reeval update");
    }
    let reeval_time = t0.elapsed();

    let t0 = Instant::now();
    for upd in &batch {
        incr.apply(upd).expect("incr update");
    }
    let incr_time = t0.elapsed();

    println!("n = {n}, {updates} row updates to X:");
    println!("  REEVAL (LU re-inversion):      {reeval_time:>10.2?}");
    println!("  INCR (Sherman-Morrison):       {incr_time:>10.2?}");
    println!(
        "  speedup: {:.1}x   β divergence: {:.2e}",
        reeval_time.as_secs_f64() / incr_time.as_secs_f64(),
        incr.beta().rel_diff(reeval.beta())
    );
    assert!(incr.beta().rel_diff(reeval.beta()) < 1e-6);
}
