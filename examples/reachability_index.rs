//! An incrementally maintained k-hop reachability index over an evolving
//! directed graph — the paper's §5.2 motivating use case for matrix powers
//! ("answering graph reachability queries where k represents the maximum
//! path length") — plus checkpoint/restore of the maintained state.
//!
//! Run with: `cargo run --release --example reachability_index`

use linview::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 64;
    let k = 8;
    let events = 200;

    // Sparse random digraph: ~3 out-edges per node.
    let mut rng = StdRng::seed_from_u64(7);
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|src| {
            (0..3)
                .map(|_| (src, rng.random_range(0..n)))
                .collect::<Vec<_>>()
        })
        .collect();

    let t0 = Instant::now();
    let mut index = Reachability::new(n, &edges, k).expect("index builds");
    println!(
        "built <= {k}-hop reachability index over {n} nodes in {:?}",
        t0.elapsed()
    );

    // Stream edge churn through the compiled trigger.
    let t0 = Instant::now();
    let mut inserts = 0;
    for _ in 0..events {
        let (src, dst) = (rng.random_range(0..n), rng.random_range(0..n));
        if rng.random::<f64>() < 0.6 {
            index.add_edge(src, dst).expect("insert");
            inserts += 1;
        } else {
            index.remove_edge(src, dst).expect("remove");
        }
    }
    println!(
        "{events} edge events ({inserts} inserts) maintained in {:?} ({:.1?} / event)",
        t0.elapsed(),
        t0.elapsed() / events
    );

    // Query it.
    let reachable_from_0 = index.reachable_set(0).expect("query");
    println!(
        "node 0 reaches {} of {n} nodes within {k} hops; weight to first: {:.4}",
        reachable_from_0.len(),
        reachable_from_0
            .first()
            .map(|&j| index.path_weight(0, j).expect("weight"))
            .unwrap_or(0.0)
    );

    // Sanity: an inserted direct edge is immediately visible.
    index.add_edge(0, n - 1).expect("insert");
    assert!(index.reachable(0, n - 1).expect("query"));
    println!(
        "direct edge 0 -> {} visible immediately after insert",
        n - 1
    );

    // Checkpoint demo on a plain environment: the same machinery a
    // deployment would use to survive restarts.
    let mut env = Env::new();
    env.bind("demo", Matrix::random_uniform(8, 8, 1));
    let snapshot = linview::runtime::checkpoint::save(&env).expect("save");
    let restored = linview::runtime::checkpoint::restore(snapshot).expect("restore");
    assert_eq!(restored.get("demo").unwrap(), env.get("demo").unwrap());
    println!("checkpoint round-trip of maintained state: ok");
}
