//! Online linear regression via batch gradient descent (§7 Fig. 3h):
//! `Θᵢ₊₁ = Θᵢ − λ·Xᵀ(XΘᵢ − Y)` maintained under observation updates, with
//! all three strategies and the model lineup of the paper.
//!
//! Run with: `cargo run --release --example gradient_descent`

use linview::apps::gd::GradientDescentLR;
use linview::apps::general::Strategy;
use linview::prelude::*;
use std::time::Instant;

fn main() {
    let m = 256; // observations
    let n = 128; // features
    let p = 8; // response columns
    let k = 16; // descent steps
    let lambda = 0.05;
    let updates = 6;

    let x = Matrix::random_uniform(m, n, 1).scale(0.3);
    let y = Matrix::random_uniform(m, p, 2);
    let theta0 = Matrix::zeros(n, p);

    println!("Gradient-descent LR: m = {m}, n = {n}, p = {p}, k = {k}, {updates} updates");
    println!(
        "{:<10} {:<12} {:>12} {:>12}",
        "model", "strategy", "time/update", "final MSE"
    );

    let mut stream = UpdateStream::new(m, n, 0.01, 33);
    let batch: Vec<RankOneUpdate> = (0..updates).map(|_| stream.next_rank_one()).collect();

    let mut reference: Option<Matrix> = None;
    for model in [
        IterModel::Linear,
        IterModel::Skip(4),
        IterModel::Exponential,
    ] {
        for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
            let mut gd = GradientDescentLR::new(
                x.clone(),
                y.clone(),
                lambda,
                theta0.clone(),
                model,
                k,
                strategy,
            )
            .expect("maintainer builds");
            let t0 = Instant::now();
            for upd in &batch {
                gd.apply(upd).expect("update applies");
            }
            let per_update = t0.elapsed() / updates as u32;
            println!(
                "{:<10} {:<12} {:>12.2?} {:>12.4}",
                model.label(),
                strategy.label(),
                per_update,
                gd.mse().expect("mse computes")
            );
            match &reference {
                None => reference = Some(gd.theta().clone()),
                Some(r) => assert!(
                    gd.theta().rel_diff(r) < 1e-6,
                    "{model}/{} diverged from reference",
                    strategy.label()
                ),
            }
        }
    }
    println!("all model/strategy combinations agree on Θ");
}
