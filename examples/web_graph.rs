//! An evolving web graph end to end: sparse substrate → rank-1 transition
//! deltas → compiled incremental triggers, cross-checked against exact
//! sparse recomputation.
//!
//! This is the paper's intro scenario made concrete: "the Internet activity
//! of a single user … represents only a tiny portion of the collected
//! data". Every link added or retracted changes one row of the transition
//! matrix — a factored rank-1 update — and incremental maintenance refreshes
//! the downstream views without re-running the `O(nᵞ)` pipeline.
//!
//! Run with: `cargo run --release --example web_graph`

use linview::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 300;
    let events = 40;

    // A scale-free-ish random crawl: 6 out-links per page.
    let mut graph = Graph::random(n, 6, 7);
    println!(
        "web graph: {} pages, {} links, transition density {:.3}%",
        graph.vertices(),
        graph.edges(),
        graph.transition().density() * 100.0
    );

    // Maintain the 2-step and 4-step visit distributions M², M⁴ over the
    // column-stochastic link matrix M via compiled triggers (Example 1.1's
    // program shape, but fed by real graph deltas).
    let m0 = graph.transition().to_dense().transpose();
    let program = parse_program("M2 := M * M; M4 := M2 * M2;").expect("parses");
    let mut cat = Catalog::new();
    cat.declare("M", n, n);
    let mut view = IncrementalView::build(&program, &[("M", m0)], &cat).expect("builds");

    // Stream link events; each one is a rank-1 update of M.
    let mut rng = StdRng::seed_from_u64(99);
    let t0 = Instant::now();
    let mut applied = 0;
    while applied < events {
        let s = rng.random_range(0..n);
        let t = rng.random_range(0..n);
        if s == t {
            continue;
        }
        let delta = if graph.has_edge(s, t) {
            graph.remove_edge(s, t).expect("edge exists")
        } else {
            graph.insert_edge(s, t).expect("edge is new")
        };
        // Column-stochastic orientation: ΔM = v·uᵀ.
        let upd = RankOneUpdate {
            u: delta.v.clone(),
            v: delta.u.clone(),
        };
        view.apply("M", &upd).expect("trigger fires");
        applied += 1;
    }
    let incr_elapsed = t0.elapsed();

    // Exact check: rebuild M⁴ from the final graph.
    let t1 = Instant::now();
    let m = graph.transition().to_dense().transpose();
    let m2 = m.try_matmul(&m).expect("square");
    let m4 = m2.try_matmul(&m2).expect("square");
    let reeval_elapsed = t1.elapsed();

    let diff = view.get("M4").expect("maintained").rel_diff(&m4);
    println!("  {events} link events maintained incrementally in {incr_elapsed:?}");
    println!("  one full re-evaluation of M4 takes {reeval_elapsed:?}");
    println!("  divergence after {events} events: {diff:.2e}");
    assert!(diff < 1e-8, "incremental view drifted");

    // PageRank on the final graph via the sparse exact solver.
    let pr = pagerank(&graph.transition(), &PageRankOptions::default()).expect("converges");
    println!(
        "  sparse PageRank converged in {} iterations; top pages: {:?}",
        pr.iterations(),
        pr.top_k(5)
    );
}
