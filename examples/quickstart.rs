//! Quickstart: compile the paper's running example (A⁴, Example 1.1 /
//! Example 4.6), inspect the generated trigger, and stream updates through
//! it — comparing incremental maintenance against full re-evaluation.
//!
//! Run with: `cargo run --release --example quickstart`

use linview::compiler::codegen::{octave, plan};
use linview::compiler::{compile, CompileOptions};
use linview::expr::cost::CostModel;
use linview::prelude::*;
use std::time::Instant;

fn main() {
    let n = 256;
    let updates = 10;

    // 1. Write the program in the APL-style frontend.
    let program = parse_program("B := A * A; C := B * B;").expect("program parses");
    let mut cat = Catalog::new();
    cat.declare("A", n, n);

    // 2. Compile to an incremental trigger program (Algorithm 1).
    let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).expect("compiles");
    println!("=== Generated trigger (paper Example 4.6) ===\n{tp}");

    // 3. Inspect the cost-annotated plan and the Octave backend output.
    let model = CostModel::cubic();
    println!(
        "=== Cost-annotated plan ===\n{}",
        plan::render_program(&tp, &model).expect("plan renders")
    );
    println!("=== Octave backend ===\n{}", octave::emit_program(&tp));

    // 4. Maintain the views under a stream of rank-1 row updates.
    let a = Matrix::random_spectral(n, 7, 0.9);
    let mut reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).expect("reeval");
    let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).expect("incr");

    let mut stream = UpdateStream::new(n, n, 0.01, 42);
    let batch: Vec<RankOneUpdate> = (0..updates).map(|_| stream.next_rank_one()).collect();

    let t0 = Instant::now();
    for upd in &batch {
        reeval.apply("A", upd).expect("reeval update");
    }
    let reeval_time = t0.elapsed();

    let t0 = Instant::now();
    for upd in &batch {
        incr.apply("A", upd).expect("incr update");
    }
    let incr_time = t0.elapsed();

    let diff = incr
        .get("C")
        .expect("view C")
        .rel_diff(reeval.get("C").expect("view C"));
    println!("n = {n}, {updates} rank-1 updates of A, maintaining C = A^4:");
    println!("  REEVAL: {reeval_time:>10.2?} total");
    println!("  INCR:   {incr_time:>10.2?} total");
    println!(
        "  speedup: {:.1}x   max relative divergence: {:.2e}",
        reeval_time.as_secs_f64() / incr_time.as_secs_f64(),
        diff
    );
    assert!(diff < 1e-8, "incremental maintenance diverged");
}
