//! Integration tests for the distributed execution path: the §6 claims
//! checked end to end — correctness of partitioned maintenance and the
//! shuffle-vs-broadcast communication asymmetry.

use linview::apps::distributed::DistIncrView;
use linview::prelude::*;

#[test]
fn distributed_incremental_tracks_single_node_reevaluation() {
    let n = 32;
    let program = parse_program("B := A * A; C := B * B; D := C * C;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 5, 0.8);
    let mut reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).unwrap();
    let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, 16).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.01, 7);
    for _ in 0..10 {
        let upd = stream.next_rank_one();
        reeval.apply("A", &upd).unwrap();
        dist.apply("A", &upd).unwrap();
    }
    assert!(dist
        .view("D")
        .unwrap()
        .approx_eq(reeval.get("D").unwrap(), 1e-7));
}

#[test]
fn incremental_broadcast_traffic_is_orders_below_reeval_shuffle() {
    let n = 128;
    let grid = 4;
    let workers = grid * grid;

    // One distributed re-evaluation of A^4.
    let a = Matrix::random_spectral(n, 9, 0.9);
    let reeval_cluster = Cluster::new(workers);
    let da = DistMatrix::from_dense(&a, grid).unwrap();
    let d2 = dist_matmul(&da, &da, &reeval_cluster).unwrap();
    let _d4 = dist_matmul(&d2, &d2, &reeval_cluster).unwrap();
    let reeval_bytes = reeval_cluster.comm().snapshot().total_bytes();

    // One incremental refresh of the same view set.
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, workers).unwrap();
    dist.reset_comm();
    dist.apply("A", &RankOneUpdate::row_update(n, n, 3, 0.01, 11))
        .unwrap();
    let incr = dist.comm();

    assert_eq!(incr.shuffle_bytes, 0);
    assert!(
        incr.total_bytes() * 4 < reeval_bytes,
        "incr {} !<< reeval {}",
        incr.total_bytes(),
        reeval_bytes
    );
}

#[test]
fn batched_updates_flow_through_distributed_triggers() {
    let n = 24;
    let program = parse_program("B := A * A;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 13, 0.8);
    let mut dist = DistIncrView::build(&program, &[("A", a.clone())], &cat, 4).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.01, 17);
    let batch = stream.next_batch_zipf(8, 1.0).unwrap();
    dist.apply_factored("A", &batch.u, &batch.v).unwrap();

    let mut a_new = a;
    a_new.add_assign_from(&batch.to_dense().unwrap()).unwrap();
    let expected = a_new.try_matmul(&a_new).unwrap();
    assert!(dist.view("B").unwrap().approx_eq(&expected, 1e-9));
}

#[test]
fn worker_count_does_not_change_results() {
    let n = 36;
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 19, 0.8);
    let upd = RankOneUpdate::row_update(n, n, 5, 0.02, 23);
    let mut results = Vec::new();
    for workers in [1usize, 4, 9, 36] {
        let mut dist = DistIncrView::build(&program, &[("A", a.clone())], &cat, workers).unwrap();
        dist.apply("A", &upd).unwrap();
        results.push(dist.view("C").unwrap());
    }
    for r in &results[1..] {
        assert!(r.approx_eq(&results[0], 1e-12));
    }
}
