//! `SocketBackend` integration suite: the same frame protocol the
//! threaded backend speaks over in-process channels, now over real
//! Unix-domain sockets to self-hosted worker servers.
//!
//! The conformance bar is identical to `backend_conformance.rs`: views
//! and worker-owned partitions bit-identical to the single-node
//! reference. One claim is *stronger* here — because both frame backends
//! meter exact serialized frame lengths, the socket backend's
//! communication counters must equal the threaded backend's **exactly**,
//! byte for byte and message for message.
//!
//! The hardening half: a dead worker (its server killed, connection
//! reset) must surface as a typed `RuntimeError::Transport` — never a
//! panic, never a hang — and a worker count that cannot form a grid is a
//! `RuntimeError::Cluster` before a single socket is dialed.

use linview::apps::powers::powers_program;
use linview::dist::{spawn_local_grid, PeerAddr, SocketConfig};
use linview::prelude::*;
use linview::runtime::{RuntimeError, SocketBackend, ThreadedBackend};

use std::path::PathBuf;

const SEED: u64 = 31337;

fn build_views(
    n: usize,
    tag: &str,
) -> (
    Vec<linview::dist::WorkerServer>,
    Vec<String>,
    IncrementalView,
    IncrementalView<ThreadedBackend>,
    IncrementalView<SocketBackend>,
) {
    let (program, _) = powers_program(IterModel::Exponential, 4);
    let mut views = vec!["A".to_string()];
    views.extend(program.statements().iter().map(|s| s.target.clone()));
    let a = Matrix::random_spectral(n, 5, 0.8);
    let inputs = vec![("A", a)];
    let mut cat = Catalog::new();
    cat.declare("A", n, n);

    let local = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let threaded = IncrementalView::build_on(
        ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
        &program,
        &inputs,
        &cat,
    )
    .unwrap();
    let (servers, addrs) = spawn_local_grid(2, 2, tag).unwrap();
    let socket = IncrementalView::build_on(
        SocketBackend::connect_with_cluster(
            Cluster::with_grid(2, 2),
            addrs,
            SocketConfig::default(),
        )
        .unwrap(),
        &program,
        &inputs,
        &cat,
    )
    .unwrap();
    (servers, views, local, threaded, socket)
}

#[test]
fn socket_backend_matches_threaded_bit_for_bit_with_equal_meters() {
    let n = 12;
    let (_servers, views, mut local, mut threaded, mut socket) = build_views(n, "st-conf");
    threaded.reset_comm();
    socket.reset_comm();

    let mut s_local = UpdateStream::new(n, n, 0.01, SEED);
    let mut s_thr = UpdateStream::new(n, n, 0.01, SEED);
    let mut s_sock = UpdateStream::new(n, n, 0.01, SEED);
    for _ in 0..8 {
        local.apply("A", &s_local.next_rank_one()).unwrap();
        threaded.apply("A", &s_thr.next_rank_one()).unwrap();
        socket.apply("A", &s_sock.next_rank_one()).unwrap();
    }

    for view in &views {
        let reference = local.get(view).unwrap();
        assert_eq!(
            socket.get(view).unwrap(),
            reference,
            "socket mirror of {view} diverged"
        );
        assert_eq!(
            &socket.backend().view(view).unwrap(),
            reference,
            "socket worker-owned blocks of {view} diverged"
        );
    }

    // Both frame backends serialize the identical frames, so the meters
    // must agree exactly — not approximately.
    let tc = threaded.comm();
    let sc = socket.comm();
    assert!(sc.broadcast_bytes > 0 && sc.broadcast_msgs > 0);
    assert_eq!(
        sc.shuffle_bytes, 0,
        "socket shuffled on the incremental path"
    );
    assert_eq!(
        (sc.broadcast_bytes, sc.broadcast_msgs),
        (tc.broadcast_bytes, tc.broadcast_msgs),
        "socket and threaded frame meters disagree"
    );
}

#[test]
fn dead_socket_worker_is_a_typed_error_not_a_hang() {
    let (mut servers, _views, _local, _threaded, mut socket) = build_views(10, "st-dead");
    // SIGKILL-equivalent on the last worker; nobody takes over its address.
    servers.pop().unwrap().kill();

    // Broadcasting a delta hits the torn connection: a typed transport
    // error, not a panic — and the coordinator keeps serving its mirror.
    let mut stream = UpdateStream::new(10, 10, 0.01, SEED);
    let err = socket
        .apply("A", &stream.next_rank_one())
        .expect_err("broadcast to a dead worker must fail");
    assert!(
        matches!(err, RuntimeError::Transport(_)),
        "expected a transport error, got {err:?}"
    );
    assert_eq!(socket.get("A").unwrap().shape(), (10, 10));

    // Gathering from the dead peer fails fast with the same typed error.
    let err = socket
        .backend()
        .view("A")
        .expect_err("gather from a dead worker must fail");
    assert!(matches!(err, RuntimeError::Transport(_)));
}

#[test]
fn non_grid_worker_counts_are_a_cluster_error_before_dialing() {
    // Three bogus addresses: the grid check rejects the count before any
    // connection attempt, so the paths never need to exist.
    let addrs = (0..3)
        .map(|i| PeerAddr::Unix(PathBuf::from(format!("/nonexistent/lv-{i}.sock"))))
        .collect();
    let err = SocketBackend::connect(addrs, SocketConfig::default())
        .expect_err("3 workers cannot form a square grid");
    assert!(
        matches!(err, RuntimeError::Cluster(_)),
        "expected a cluster error, got {err:?}"
    );
}

#[test]
fn revived_socket_workers_reconnect_and_reinstall() {
    let (mut servers, views, local, _threaded, mut socket) = build_views(10, "st-revive");
    // Kill a worker, then bring a fresh empty one up on the same address.
    let old = servers.pop().unwrap();
    let addr = old.addr().clone();
    old.kill();
    servers.push(linview::dist::WorkerServer::spawn(&addr).unwrap());
    // Tear the coordinator's stale connection down so the peer is marked
    // dead (in production the next I/O error does this).
    let victim = servers.len() - 1;
    socket.backend().pool().transport().disconnect(victim);

    // restore() re-materializes the backend from the mirror snapshot:
    // dead peers are revived (bounded-backoff redial to the fresh server)
    // and every partitioned view reinstalled from scratch.
    let snapshot = socket.checkpoint().unwrap();
    socket.restore(snapshot).unwrap();
    for view in &views {
        assert_eq!(
            &socket.backend().view(view).unwrap(),
            local.get(view).unwrap(),
            "reinstalled {view} diverged after revive"
        );
    }
}
