//! Cross-backend conformance suite.
//!
//! Every app workload (matrix powers, sums of powers, OLS, reachability,
//! a PageRank power-iteration step) runs on the Local, Dist, and Threaded
//! backends from the *same* `UpdateStream` seed, and the maintained views
//! must be **bit-identical** across all three — the shared statement
//! interpreter leaves no room for divergence, and this suite is the lock
//! on that door. Per-backend communication invariants ride along:
//!
//! * Local never communicates at all.
//! * Dist (the metered simulation) and Threaded (real message passing)
//!   broadcast on every delta and never shuffle.
//! * Dist and Threaded perform the *same number* of broadcast deliveries,
//!   while Threaded's byte counts are strictly larger: they are exact
//!   serialized frame lengths (tag + view name + matrix headers +
//!   payload), not the simulation's `8·(|U|+|V|)` estimate.

use linview::apps::powers::powers_program;
use linview::apps::sums::sums_program;
use linview::prelude::*;
use linview::runtime::{DistBackend, ExecBackend, ThreadedBackend};

const SEED: u64 = 4242;

/// One conformance case: a program, its inputs, which input the update
/// stream hits, and the worker-grid geometry (rectangular where a program
/// maintains `n×1` views that a square grid could not partition).
struct Case {
    name: &'static str,
    program: Program,
    inputs: Vec<(&'static str, Matrix)>,
    target: &'static str,
    grid: (usize, usize),
    scale: f64,
    updates: usize,
}

fn chain_adjacency(n: usize, damping: f64) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        a.set(i, i + 1, damping);
    }
    a.set(n - 1, 0, damping); // close the cycle so powers stay nonzero
    a
}

fn cases() -> Vec<Case> {
    let n = 12;
    let mut out = Vec::new();

    // Matrix powers A^4 under the exponential model (Fig. 3a-3c).
    let (program, _) = powers_program(IterModel::Exponential, 4);
    out.push(Case {
        name: "powers",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 7, 0.8))],
        target: "A",
        grid: (2, 2),
        scale: 0.01,
        updates: 8,
    });

    // Sums of powers I + A + ... + A^(k-1) (Fig. 3d).
    let (program, _) = sums_program(IterModel::Linear, 4, n);
    out.push(Case {
        name: "sums",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 8, 0.8))],
        target: "A",
        grid: (2, 2),
        scale: 0.01,
        updates: 8,
    });

    // OLS with a hoisted, Sherman-Morrison-maintained inverse (Fig. 3e).
    // beta is n×1, so the grid must keep a single block column.
    out.push(Case {
        name: "ols",
        program: parse_program("beta := inv(X' * X) * X' * Y;").unwrap(),
        inputs: vec![
            ("X", Matrix::random_diag_dominant(n, 9)),
            ("Y", Matrix::random_col(n, 10)),
        ],
        target: "X",
        grid: (4, 1),
        scale: 0.001,
        updates: 6,
    });

    // Bounded-hop reachability: sums of powers closed by R := A · S_k.
    let (sums, final_sum) = sums_program(IterModel::Exponential, 4, n);
    let mut program = Program::new();
    for stmt in sums.statements() {
        program.assign(stmt.target.clone(), stmt.expr.clone());
    }
    program.assign("R", Expr::var("A") * Expr::var(final_sum));
    out.push(Case {
        name: "reach",
        program,
        inputs: vec![("A", chain_adjacency(n, 0.5))],
        target: "A",
        grid: (2, 2),
        scale: 0.1,
        updates: 8,
    });

    // Three PageRank power-iteration steps over a damped transition
    // matrix; the rank vectors are n×1, hence the single-column grid.
    let m = Matrix::random_stochastic(n, 11).transpose().scale(0.85);
    let r0 = Matrix::filled(n, 1, 1.0 / n as f64);
    out.push(Case {
        name: "pagerank-step",
        program: parse_program("R1 := M * R0; R2 := M * R1; R3 := M * R2;").unwrap(),
        inputs: vec![("M", m), ("R0", r0)],
        target: "M",
        grid: (3, 1),
        scale: 0.005,
        updates: 8,
    });

    out
}

fn run_case(case: &Case) {
    let inputs: Vec<(&str, Matrix)> = case
        .inputs
        .iter()
        .map(|(name, m)| (*name, m.clone()))
        .collect();
    let mut cat = Catalog::new();
    for (name, m) in &inputs {
        cat.declare(*name, m.rows(), m.cols());
    }
    let dynamic: Vec<&str> = inputs.iter().map(|(n, _)| *n).collect();
    // The materialized view set is the *normalized* program's targets
    // (inverse hoisting may introduce auxiliary views), plus the inputs.
    let normalized = case.program.hoist_inverses(&dynamic);
    let mut views: Vec<String> = dynamic.iter().map(|s| s.to_string()).collect();
    views.extend(normalized.statements().iter().map(|s| s.target.clone()));

    let mut local = IncrementalView::build(&case.program, &inputs, &cat)
        .unwrap_or_else(|e| panic!("{}: local build failed: {e}", case.name));
    let dist_backend = DistBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1));
    let mut dist = IncrementalView::build_on(dist_backend, &case.program, &inputs, &cat)
        .unwrap_or_else(|e| panic!("{}: dist build failed: {e}", case.name));
    let thr_backend = ThreadedBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1));
    let mut threaded = IncrementalView::build_on(thr_backend, &case.program, &inputs, &cat)
        .unwrap_or_else(|e| panic!("{}: threaded build failed: {e}", case.name));
    dist.reset_comm();
    threaded.reset_comm();

    let (rows, cols) = inputs
        .iter()
        .find(|(n, _)| *n == case.target)
        .map(|(_, m)| m.shape())
        .expect("target is an input");
    let mut s_local = UpdateStream::new(rows, cols, case.scale, SEED);
    let mut s_dist = UpdateStream::new(rows, cols, case.scale, SEED);
    let mut s_thr = UpdateStream::new(rows, cols, case.scale, SEED);
    for _ in 0..case.updates {
        local.apply(case.target, &s_local.next_rank_one()).unwrap();
        dist.apply(case.target, &s_dist.next_rank_one()).unwrap();
        threaded.apply(case.target, &s_thr.next_rank_one()).unwrap();
    }

    for view in &views {
        let reference = local.get(view).unwrap();
        assert_eq!(
            dist.get(view).unwrap(),
            reference,
            "{}: view {view} is not bit-identical on dist",
            case.name
        );
        assert_eq!(
            threaded.get(view).unwrap(),
            reference,
            "{}: view {view} is not bit-identical on threaded",
            case.name
        );
        // The partitioned state itself — simulated blocks and
        // worker-thread-owned blocks — must also equal the mirror exactly.
        assert_eq!(
            &dist.backend().view(view).unwrap(),
            reference,
            "{}: dist partitions of {view} diverged from the mirror",
            case.name
        );
        assert_eq!(
            &threaded.backend().view(view).unwrap(),
            reference,
            "{}: worker-owned blocks of {view} diverged from the mirror",
            case.name
        );
    }

    let workers = (case.grid.0 * case.grid.1) as u64;
    assert_eq!(
        local.comm().total_bytes(),
        0,
        "{}: local moved bytes",
        case.name
    );
    let dc = dist.comm();
    let tc = threaded.comm();
    for (backend, comm) in [("dist", dc), ("threaded", tc)] {
        assert!(
            comm.broadcast_bytes > 0 && comm.broadcast_msgs > 0,
            "{}: {backend} broadcast nothing",
            case.name
        );
        assert_eq!(
            comm.shuffle_bytes, 0,
            "{}: {backend} shuffled on the incremental path",
            case.name
        );
        assert_eq!(
            comm.broadcast_msgs % workers,
            0,
            "{}: {backend} deliveries are not one-per-worker",
            case.name
        );
    }
    // Same trigger statements ⇒ same number of deliveries; real frames
    // carry headers the analytical estimate does not.
    assert_eq!(
        tc.broadcast_msgs, dc.broadcast_msgs,
        "{}: threaded and dist disagree on delivery count",
        case.name
    );
    assert!(
        tc.broadcast_bytes > dc.broadcast_bytes,
        "{}: serialized frames ({} B) should exceed the estimate ({} B)",
        case.name,
        tc.broadcast_bytes,
        dc.broadcast_bytes
    );

    // All of the above ran through the *staged* interpreter (the default):
    // every backend must agree on the stage structure, and every app
    // trigger must actually collapse statements into parallel stages.
    let ls = local.sched_stats();
    let ds = dist.sched_stats();
    let ts = threaded.sched_stats();
    assert_eq!(ls, ds, "{}: dist stage accounting diverged", case.name);
    assert_eq!(ls, ts, "{}: threaded stage accounting diverged", case.name);
    assert!(
        ls.stages < ls.stmts,
        "{}: staged execution found no parallelism ({} stages / {} stmts)",
        case.name,
        ls.stages,
        ls.stmts
    );
    // The distributed backends overlapped the same broadcasts on the wire.
    assert_eq!(
        dist.backend().sched(),
        threaded.backend().sched(),
        "{}: dist and threaded disagree on overlapped broadcasts",
        case.name
    );
    assert!(
        threaded.backend().sched().overlapped > 0,
        "{}: no broadcast ever overlapped within a stage",
        case.name
    );
}

#[test]
fn every_app_is_bit_identical_across_all_backends() {
    for case in cases() {
        run_case(&case);
    }
}

/// Sparse-aware execution conformance: a basis-row update stream (factor
/// density 1/n, inside the fold crossover and far below the
/// wire-compression break-even) maintained with sparse execution ON must
/// be bit-identical — across all three backends AND against the same runs
/// forced dense — while compressed broadcast frames strictly shrink the
/// wire, by exactly the bytes the accounting claims.
#[test]
fn sparse_execution_is_bit_identical_and_strictly_cheaper_on_the_wire() {
    use linview::runtime::{CommSnapshot, ExecOptions, SparseStats};

    let n = 24;
    let (program, _) = powers_program(IterModel::Exponential, 4);
    let inputs: Vec<(&str, Matrix)> = vec![("A", Matrix::random_spectral(n, 77, 0.8))];
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let views: Vec<String> = std::iter::once("A".to_string())
        .chain(
            program
                .hoist_inverses(&["A"])
                .statements()
                .iter()
                .map(|s| s.target.clone()),
        )
        .collect();

    fn drive<B: ExecBackend>(
        mut view: IncrementalView<B>,
        sparse_folds: Option<bool>,
        names: &[String],
        n: usize,
    ) -> (Vec<Matrix>, SparseStats, CommSnapshot) {
        view.set_exec_options(ExecOptions {
            sparse_folds,
            ..Default::default()
        });
        view.reset_comm();
        let mut stream = UpdateStream::new(n, n, 0.01, SEED);
        for _ in 0..8 {
            view.apply("A", &stream.next_rank_one()).unwrap();
        }
        let finals = names.iter().map(|v| view.get(v).unwrap().clone()).collect();
        (finals, view.sparse_stats(), view.comm())
    }

    let build_local = || IncrementalView::build(&program, &inputs, &cat).unwrap();
    let build_dist = || {
        IncrementalView::build_on(
            DistBackend::with_cluster(Cluster::with_grid(2, 2)),
            &program,
            &inputs,
            &cat,
        )
        .unwrap()
    };
    let build_thr = || {
        IncrementalView::build_on(
            ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
            &program,
            &inputs,
            &cat,
        )
        .unwrap()
    };

    let (reference, l_sparse, _) = drive(build_local(), None, &views, n);
    let (d_views, d_sparse, d_comm) = drive(build_dist(), None, &views, n);
    let (t_views, t_sparse, t_comm) = drive(build_thr(), None, &views, n);
    let (lf_views, lf_sparse, _) = drive(build_local(), Some(false), &views, n);
    let (df_views, df_sparse, df_comm) = drive(build_dist(), Some(false), &views, n);
    let (tf_views, tf_sparse, tf_comm) = drive(build_thr(), Some(false), &views, n);

    for (i, name) in views.iter().enumerate() {
        for (label, run) in [
            ("dist sparse", &d_views),
            ("threaded sparse", &t_views),
            ("local forced-dense", &lf_views),
            ("dist forced-dense", &df_views),
            ("threaded forced-dense", &tf_views),
        ] {
            assert_eq!(
                run[i], reference[i],
                "{name} is not bit-identical on {label}"
            );
        }
    }

    // The sparse path actually engaged on every backend…
    for (backend, stats) in [
        ("local", l_sparse),
        ("dist", d_sparse),
        ("threaded", t_sparse),
    ] {
        assert!(
            stats.sparse_folds > 0,
            "{backend}: no fold took the sparse path at density 1/{n}"
        );
    }
    // …and the forced-dense opt-out actually opted out, of everything.
    for (backend, stats) in [
        ("local", lf_sparse),
        ("dist", df_sparse),
        ("threaded", tf_sparse),
    ] {
        assert_eq!(
            stats.sparse_folds, 0,
            "{backend}: forced dense still folded sparsely"
        );
        assert_eq!(
            stats.compressed_frames, 0,
            "{backend}: forced dense still compressed"
        );
        assert_eq!(
            stats.bytes_saved, 0,
            "{backend}: forced dense claimed savings"
        );
    }
    // Compression strictly shrinks the wire on both communicating
    // backends, by exactly the bytes the accounting claims.
    for (backend, stats, comm, forced) in [
        ("dist", d_sparse, d_comm, df_comm),
        ("threaded", t_sparse, t_comm, tf_comm),
    ] {
        assert!(
            stats.compressed_frames > 0 && stats.bytes_saved > 0,
            "{backend}: no broadcast ever compressed"
        );
        assert!(
            comm.broadcast_bytes < forced.broadcast_bytes,
            "{backend}: compression did not shrink the wire ({} !< {})",
            comm.broadcast_bytes,
            forced.broadcast_bytes
        );
        assert_eq!(
            comm.broadcast_bytes + stats.bytes_saved,
            forced.broadcast_bytes,
            "{backend}: bytes_saved disagrees with the meters"
        );
        assert_eq!(
            comm.broadcast_msgs, forced.broadcast_msgs,
            "{backend}: compression changed the delivery count"
        );
    }
}

/// The app-level constructors too: `new_on` must give the same maintained
/// results on the threaded backend as the default local path.
#[test]
fn app_constructors_run_on_the_threaded_backend() {
    let n = 12;

    let a = Matrix::random_spectral(n, 21, 0.8);
    let mut local = IncrPowers::new(a.clone(), IterModel::Exponential, 4).unwrap();
    let mut threaded = IncrPowers::new_on(
        ThreadedBackend::new(4).unwrap(),
        a,
        IterModel::Exponential,
        4,
    )
    .unwrap();
    let mut s1 = UpdateStream::new(n, n, 0.01, 31);
    let mut s2 = UpdateStream::new(n, n, 0.01, 31);
    for _ in 0..5 {
        local.apply(&s1.next_rank_one()).unwrap();
        threaded.apply(&s2.next_rank_one()).unwrap();
    }
    assert_eq!(threaded.result(), local.result());

    let a = Matrix::random_spectral(n, 22, 0.8);
    let mut local = IncrSums::new(a.clone(), IterModel::Linear, 4).unwrap();
    let mut threaded =
        IncrSums::new_on(ThreadedBackend::new(4).unwrap(), a, IterModel::Linear, 4).unwrap();
    let mut s1 = UpdateStream::new(n, n, 0.01, 32);
    let mut s2 = UpdateStream::new(n, n, 0.01, 32);
    for _ in 0..5 {
        local.apply(&s1.next_rank_one()).unwrap();
        threaded.apply(&s2.next_rank_one()).unwrap();
    }
    assert_eq!(threaded.result(), local.result());

    let x = Matrix::random_diag_dominant(n, 23);
    let y = Matrix::random_col(n, 24);
    let mut local = IncrOls::new(x.clone(), y.clone()).unwrap();
    let mut threaded = IncrOls::new_on(
        ThreadedBackend::with_cluster(Cluster::with_grid(4, 1)),
        x,
        y,
    )
    .unwrap();
    let mut s1 = UpdateStream::new(n, n, 0.001, 33);
    let mut s2 = UpdateStream::new(n, n, 0.001, 33);
    for _ in 0..5 {
        local.apply(&s1.next_rank_one()).unwrap();
        threaded.apply(&s2.next_rank_one()).unwrap();
    }
    assert_eq!(threaded.beta(), local.beta());
}

/// The reachability app (engine-backed, batched) on real worker threads:
/// identical reachable sets and strictly fewer firings than mutations.
#[test]
fn reachability_index_runs_on_the_threaded_backend() {
    use linview::runtime::FlushPolicy;
    let n = 12;
    let seed_edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let mut local = Reachability::new_batched(n, &seed_edges, 4, 3).unwrap();
    let mut threaded = Reachability::new_on_with_policy(
        ThreadedBackend::new(4).unwrap(),
        n,
        &seed_edges,
        4,
        FlushPolicy::Count(3),
    )
    .unwrap();
    let churn = [(1, 7), (0, 5), (2, 9), (4, 1), (7, 3), (5, 2), (3, 4)];
    for &(s, d) in &churn {
        local.add_edge(s, d).unwrap();
        threaded.add_edge(s, d).unwrap();
    }
    local.flush().unwrap();
    threaded.flush().unwrap();
    for src in 0..n {
        assert_eq!(
            threaded.reachable_set(src).unwrap(),
            local.reachable_set(src).unwrap(),
            "reachable set from {src} diverged on the threaded backend"
        );
    }
    assert!(threaded.firings() < churn.len() as u64);
}

/// Determinism under the tuned GEMM path: with the kernel pinned and a
/// fixed thread budget, two full conformance runs from one seed are
/// bit-identical run-to-run — and the result does not depend on the
/// budget at all, because row-band parallelism preserves every
/// per-element accumulation order. This is what keeps the staged
/// scheduling assertions above meaningful on top of the packed kernel.
#[test]
fn pinned_kernel_runs_are_bit_identical_across_thread_budgets() {
    use linview::matrix::{set_default_kernel, set_gemm_threads, GemmKernel};

    let case = &cases()[0]; // powers: the widest trigger in the suite
    let final_views = |case: &Case| -> Vec<(String, Matrix)> {
        let inputs: Vec<(&str, Matrix)> = case
            .inputs
            .iter()
            .map(|(name, m)| (*name, m.clone()))
            .collect();
        let mut cat = Catalog::new();
        for (name, m) in &inputs {
            cat.declare(*name, m.rows(), m.cols());
        }
        let mut view = IncrementalView::build(&case.program, &inputs, &cat).unwrap();
        let (rows, cols) = inputs[0].1.shape();
        let mut stream = UpdateStream::new(rows, cols, case.scale, SEED);
        for _ in 0..case.updates {
            view.apply(case.target, &stream.next_rank_one()).unwrap();
        }
        let mut names: Vec<String> = inputs.iter().map(|(n, _)| n.to_string()).collect();
        names.extend(
            case.program
                .hoist_inverses(&["A"])
                .statements()
                .iter()
                .map(|s| s.target.clone()),
        );
        names
            .into_iter()
            .map(|name| {
                let m = view.get(&name).unwrap().clone();
                (name, m)
            })
            .collect()
    };

    set_default_kernel(Some(GemmKernel::Packed));
    set_gemm_threads(Some(1));
    let serial_once = final_views(case);
    let serial_twice = final_views(case);
    assert_eq!(
        serial_once, serial_twice,
        "run-to-run divergence at 1 thread"
    );
    // The full cross-backend conformance contract holds under the pin.
    run_case(case);
    set_gemm_threads(Some(4));
    let parallel = final_views(case);
    assert_eq!(
        serial_once, parallel,
        "thread budget changed maintained view bits"
    );
    set_gemm_threads(None);
    set_default_kernel(None);
}
