//! Property-based tests (proptest) for the `ExecBackend` / streaming
//! `MaintenanceEngine` layer:
//!
//! 1. **Engine exactness** — batched multi-input ingestion over the
//!    `LocalBackend` matches full re-evaluation to 1e-9 across random
//!    event streams, for every batching policy exercised.
//! 2. **Backend equivalence** — the `DistBackend` maintains bit-for-bit
//!    the same views as the `LocalBackend` on identical streams (one
//!    shared execution path), while metering broadcast-only traffic.
//! 3. **Compaction soundness** — row compaction of arbitrary mixed
//!    batches (row + dense updates) preserves the dense delta.
//! 4. **Joint-flush exactness** — flush rounds that fire ONE joint trigger
//!    (§4.4) match sequential per-input flushing *and* full re-evaluation
//!    to 1e-9 across random policies and input mixes, while never firing
//!    more triggers than the sequential path.

use linview::prelude::*;
use linview::runtime::{DistBackend, FlushPolicy, MaintenanceEngine};
use proptest::prelude::*;
// Explicit: the facade prelude also globs in `apps::general::Strategy`.
use proptest::strategy::Strategy;

fn policy_strategy() -> impl Strategy<Value = FlushPolicy> {
    prop_oneof![
        Just(FlushPolicy::Immediate),
        (1usize..8).prop_map(FlushPolicy::Count),
        (1usize..6).prop_map(FlushPolicy::Rank),
    ]
}

/// Divisible by the 2×2 grid of the 4-worker cluster used below.
const N: usize = 12;

/// One ingested event: which input it hits, the affected row, and the
/// seed of its random right factor.
type Event = (usize, usize, u64);

fn event_strategy() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0usize..2, 0usize..N, 0u64..100_000), 1..32)
}

fn build_setup() -> (Program, Catalog, Matrix, Matrix) {
    let program = parse_program("C := A * B; D := C * C;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("B", N, N);
    let a = Matrix::random_spectral(N, 21, 0.7);
    let b = Matrix::random_spectral(N, 22, 0.7);
    (program, cat, a, b)
}

fn to_update(&(_, row, seed): &Event) -> RankOneUpdate {
    RankOneUpdate::row_update(N, N, row, 0.01, seed)
}

fn input_name(e: &Event) -> &'static str {
    if e.0 == 0 {
        "A"
    } else {
        "B"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: engine over LocalBackend == ReevalView recomputation.
    #[test]
    fn engine_matches_full_reevaluation(events in event_strategy(), batch in 1usize..6) {
        let (program, cat, a, b) = build_setup();
        let mut reeval =
            ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
        let view = IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap();
        let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(batch));
        for e in &events {
            let upd = to_update(e);
            reeval.apply(input_name(e), &upd).unwrap();
            engine.ingest(input_name(e), upd).unwrap();
        }
        engine.flush_all().unwrap();
        for view in ["C", "D"] {
            let got = engine.get(view).unwrap();
            let want = reeval.get(view).unwrap();
            prop_assert!(
                got.approx_eq(want, 1e-9),
                "{view} diverged from re-evaluation by {:.2e} (batch {batch})",
                got.max_abs_diff(want)
            );
        }
        prop_assert_eq!(engine.stats().events, events.len() as u64);
    }

    /// Property 2: DistBackend == LocalBackend bit-for-bit, broadcast-only.
    #[test]
    fn dist_backend_matches_local_bit_for_bit(events in event_strategy(), batch in 1usize..5) {
        let (program, cat, a, b) = build_setup();
        let inputs = [("A", a), ("B", b)];
        let local = IncrementalView::build(&program, &inputs, &cat).unwrap();
        let dist = IncrementalView::build_on(
            DistBackend::new(4).unwrap(),
            &program,
            &inputs,
            &cat,
        )
        .unwrap();
        dist.reset_comm();
        let mut local_engine = MaintenanceEngine::new(local, FlushPolicy::Count(batch));
        let mut dist_engine = MaintenanceEngine::new(dist, FlushPolicy::Count(batch));
        for e in &events {
            local_engine.ingest(input_name(e), to_update(e)).unwrap();
            dist_engine.ingest(input_name(e), to_update(e)).unwrap();
        }
        local_engine.flush_all().unwrap();
        dist_engine.flush_all().unwrap();
        for view in ["A", "B", "C", "D"] {
            // Bit-for-bit: same interpreter, same delta arithmetic.
            prop_assert_eq!(
                dist_engine.get(view).unwrap(),
                local_engine.get(view).unwrap(),
                "{} is not bit-identical across backends",
                view
            );
        }
        let comm = dist_engine.comm();
        prop_assert!(comm.broadcast_bytes > 0, "no broadcast traffic metered");
        prop_assert_eq!(comm.shuffle_bytes, 0, "incremental path must never shuffle");
        prop_assert_eq!(local_engine.comm().total_bytes(), 0);
    }

    /// Property 4: a joint-flushing engine, a sequential-flushing engine,
    /// and full re-evaluation agree to 1e-9 on every maintained view, for
    /// random policies and event mixes — and joint flushing never fires
    /// more triggers than sequential flushing.
    #[test]
    fn joint_flush_matches_sequential_and_reevaluation(
        events in event_strategy(),
        policy in policy_strategy(),
    ) {
        let (program, cat, a, b) = build_setup();
        let mut reeval =
            ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
        let mut joint = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat)
                .unwrap(),
            policy,
        );
        let mut seq = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            policy,
        );
        seq.set_joint_flush(false);
        for e in &events {
            let upd = to_update(e);
            reeval.apply(input_name(e), &upd).unwrap();
            joint.ingest(input_name(e), upd.clone()).unwrap();
            seq.ingest(input_name(e), upd).unwrap();
        }
        joint.flush_all().unwrap();
        seq.flush_all().unwrap();
        for view in ["A", "B", "C", "D"] {
            let want = reeval.get(view).unwrap();
            for (label, engine) in [("joint", &joint), ("sequential", &seq)] {
                let got = engine.get(view).unwrap();
                prop_assert!(
                    got.approx_eq(want, 1e-9),
                    "{view} diverged from re-evaluation by {:.2e} under {label} \
                     flushing ({policy:?})",
                    got.max_abs_diff(want)
                );
            }
        }
        prop_assert!(
            joint.stats().firings <= seq.stats().firings,
            "joint flushing fired more triggers ({}) than sequential ({})",
            joint.stats().firings,
            seq.stats().firings
        );
        prop_assert_eq!(
            joint.stats().firings + joint.stats().triggers_saved,
            seq.stats().firings,
            "saved-firings accounting is inconsistent"
        );
        prop_assert_eq!(seq.stats().joint_rounds, 0);
        prop_assert_eq!(
            joint.stats().joint_rounds > 0,
            joint.stats().triggers_saved > 0
        );
        prop_assert_eq!(joint.pending_total(), 0);
        prop_assert_eq!(seq.pending_total(), 0);
    }

    /// Property 5: rank recompression is exact and monotone — for any
    /// (possibly rank-deficient) low-rank delta, folding the recompressed
    /// factors matches folding the originals to 1e-9, and recompression
    /// never increases the rank. Duplicated outer products must be
    /// detected: the recompressed rank is bounded by the span of the
    /// distinct factor columns.
    #[test]
    fn recompress_then_fold_matches_plain_fold(
        pairs in proptest::collection::vec((0u64..4, 0u64..4), 2..7),
        tseed in 0u64..1000,
    ) {
        use linview::matrix::{fold_low_rank, recompress};
        let k = pairs.len();
        let mut u = Matrix::zeros(N, k);
        let mut v = Matrix::zeros(N, k);
        for (j, &(su, sv)) in pairs.iter().enumerate() {
            let cu = Matrix::random_uniform(N, 1, su);
            let cv = Matrix::random_uniform(N, 1, 1000 + sv);
            for i in 0..N {
                u.set(i, j, cu.get(i, 0));
                v.set(i, j, cv.get(i, 0));
            }
        }
        let rc = recompress(&u, &v, 1e-12).unwrap();
        prop_assert_eq!(rc.rank_before, k);
        prop_assert!(rc.rank_after <= k, "recompression increased rank");
        let span = std::cmp::min(
            pairs.iter().map(|p| p.0).collect::<std::collections::BTreeSet<_>>().len(),
            pairs.iter().map(|p| p.1).collect::<std::collections::BTreeSet<_>>().len(),
        );
        prop_assert!(
            rc.rank_after <= span,
            "missed redundancy: rank {} exceeds the {}-dimensional factor span",
            rc.rank_after,
            span
        );
        let mut plain = Matrix::random_spectral(N, tseed, 0.7);
        let mut compressed = plain.clone();
        fold_low_rank(&mut plain, &u, &v, true).unwrap();
        fold_low_rank(&mut compressed, &rc.u, &rc.v, true).unwrap();
        prop_assert!(
            compressed.approx_eq(&plain, 1e-9),
            "recompressed fold diverged by {:.2e}",
            compressed.max_abs_diff(&plain)
        );
    }

    /// Property 3: compact_rows preserves the dense delta for mixed
    /// batches of row updates and dense (non-basis) updates.
    #[test]
    fn row_compaction_preserves_mixed_batches(
        rows in proptest::collection::vec((0usize..N, 0u64..100_000), 1..12),
        dense_seeds in proptest::collection::vec(0u64..100_000, 0..3),
    ) {
        let mut ones: Vec<RankOneUpdate> = rows
            .iter()
            .map(|&(r, s)| RankOneUpdate::row_update(N, N, r, 0.1, s))
            .collect();
        for &s in &dense_seeds {
            ones.push(RankOneUpdate::dense(N, N, 0.1, s));
        }
        let batch = BatchUpdate::from_rank_ones(&ones).unwrap();
        let compact = batch.compact_rows().unwrap();
        prop_assert!(compact.rank() <= batch.rank());
        prop_assert!(
            compact
                .to_dense()
                .unwrap()
                .approx_eq(&batch.to_dense().unwrap(), 1e-12),
            "compaction changed the dense delta"
        );
        let distinct: std::collections::BTreeSet<usize> =
            rows.iter().map(|&(r, _)| r).collect();
        prop_assert_eq!(compact.rank(), distinct.len() + dense_seeds.len());
    }
}

/// Engine-level recompression accounting: duplicated dense updates are
/// shed by the pre-flush recompression pass, the shed rank is recorded in
/// the sparse-execution stats, and the maintained views still match full
/// re-evaluation.
#[test]
fn engine_recompression_sheds_redundant_rank() {
    let (program, cat, a, b) = build_setup();
    let mut reeval =
        ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
    let view = IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap();
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(4));
    // Seeds repeat, so the rank-4 buffered batch is truly rank 2.
    for seed in [7u64, 7, 9, 9] {
        let upd = RankOneUpdate::dense(N, N, 0.01, seed);
        reeval.apply("A", &upd).unwrap();
        engine.ingest("A", upd).unwrap();
    }
    engine.flush_all().unwrap();
    assert!(
        engine.stats().sparse.rank_saved >= 2,
        "recompression shed {} ranks from a half-redundant batch",
        engine.stats().sparse.rank_saved
    );
    for view in ["C", "D"] {
        let got = engine.get(view).unwrap();
        let want = reeval.get(view).unwrap();
        assert!(
            got.approx_eq(want, 1e-9),
            "{view} diverged from re-evaluation by {:.2e} after recompression",
            got.max_abs_diff(want)
        );
    }
}
