//! Cross-substrate integration: the dense *incremental* PageRank maintainer
//! (the paper's §5.3 general-form machinery) validated against the sparse
//! *exact* power-iteration baseline over an evolving graph.
//!
//! This is the end-to-end story of the paper's intro: a link matrix evolves
//! one edge at a time, each mutation is a rank-1 update, and incremental
//! maintenance must track what a full sparse recomputation would produce.

use linview::apps::general::Strategy;
use linview::apps::pagerank::PageRank as DensePageRank;
use linview::prelude::*;

/// Exact fixed-iteration PageRank over the sparse transition matrix, with
/// the same dangling model the dense maintainer uses (dangling columns
/// teleport uniformly) and the same uniform start.
fn sparse_reference(g: &Graph, damping: f64, k: usize) -> Matrix {
    let n = g.vertices();
    let pt = g.transition().transpose(); // column-stochastic direction
    let mut x = Matrix::filled(n, 1, 1.0 / n as f64);
    for _ in 0..k {
        let mut next = pt.spmm(&x).unwrap();
        // Dangling vertices contribute uniform columns.
        let dangling_mass: f64 = (0..n)
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| x.get(v, 0))
            .sum();
        let teleport = (1.0 - damping) / n as f64 + damping * dangling_mass / n as f64;
        next.map_inplace(|v| damping * v + teleport);
        x = next;
    }
    x
}

#[test]
fn incremental_dense_pagerank_tracks_sparse_exact_recomputation() {
    let n = 24;
    let k = 16;
    let damping = 0.85;
    let mut g = Graph::random(n, 3, 42);
    let adj = g.adjacency();
    let edges: Vec<(usize, usize)> = adj.iter().map(|(s, t, _)| (s, t)).collect();
    let mut dense = DensePageRank::new(
        n,
        &edges,
        damping,
        k,
        IterModel::Linear,
        Strategy::Incremental,
    )
    .unwrap();

    // Stream of mutations applied to both sides.
    let mutations = [(0usize, 9usize), (5, 17), (11, 2), (20, 3), (7, 14)];
    for &(s, t) in &mutations {
        if g.has_edge(s, t) {
            g.remove_edge(s, t).unwrap();
            dense.remove_edge(s, t).unwrap();
        } else {
            g.insert_edge(s, t).unwrap();
            dense.add_edge(s, t).unwrap();
        }
        let expected = sparse_reference(&g, damping, k);
        assert!(
            dense.ranks().approx_eq(&expected, 1e-7),
            "dense incremental diverged from sparse exact after ({s},{t})"
        );
    }
}

#[test]
fn sparse_solver_agrees_with_dense_maintainer_on_static_graph() {
    let n = 16;
    let k = 32;
    let damping = 0.85;
    let g = Graph::random(n, 4, 7);
    // No dangling vertices in this generator (degree 4 > 0), so the
    // converged sparse solver and the k-step dense iteration agree tightly.
    let adj = g.adjacency();
    let edges: Vec<(usize, usize)> = adj.iter().map(|(s, t, _)| (s, t)).collect();
    let dense =
        DensePageRank::new(n, &edges, damping, k, IterModel::Linear, Strategy::Reeval).unwrap();
    let pr = pagerank(
        &g.transition(),
        &PageRankOptions {
            damping,
            tol: 1e-12,
            max_iterations: 500,
            fixed_iterations: false,
        },
    )
    .unwrap();
    for v in 0..n {
        assert!(
            (dense.ranks().get(v, 0) - pr.scores()[v]).abs() < 1e-6,
            "vertex {v}: dense {} vs sparse {}",
            dense.ranks().get(v, 0),
            pr.scores()[v]
        );
    }
}

#[test]
fn edge_deltas_feed_factored_updates_end_to_end() {
    // The EdgeDelta of the sparse graph is exactly the (u, v) pair the
    // compiled-trigger machinery consumes: maintain B = P' * P' (the
    // two-step reachability weights) under edge mutations.
    let n = 12;
    let mut g = Graph::random(n, 3, 9);
    let p0 = g.transition().to_dense().transpose(); // column-stochastic
    let program = parse_program("B := A * A;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let mut view = IncrementalView::build(&program, &[("A", p0)], &cat).unwrap();

    for &(s, t) in &[(0usize, 5usize), (3, 8), (10, 1)] {
        let delta = if g.has_edge(s, t) {
            g.remove_edge(s, t).unwrap()
        } else {
            g.insert_edge(s, t).unwrap()
        };
        // Column-stochastic orientation: ΔA = v·uᵀ (transposed row delta).
        let upd = RankOneUpdate {
            u: delta.v.clone(),
            v: delta.u.clone(),
        };
        view.apply("A", &upd).unwrap();
        let fresh = g.transition().to_dense().transpose();
        let expected = fresh.try_matmul(&fresh).unwrap();
        assert!(view.get("B").unwrap().approx_eq(&expected, 1e-9));
    }
}
