//! DAG-staged trigger scheduling: equivalence and shape properties.
//!
//! The staged interpreter consumes the compile-time statement dependency
//! DAG instead of walking the trigger body in program order. This suite is
//! the lock on its two contracts:
//!
//! 1. **Exactness** — staged execution is **bit-identical** to the
//!    sequential opt-out (`ExecOptions::sequential`) on every backend
//!    (Local / Dist / Threaded) for every shipped app workload, with
//!    identical communication volume on the distributed backends.
//! 2. **Shape** — stage count never exceeds statement count, with
//!    equality exactly for chain-dependent trigger bodies; every shipped
//!    app trigger actually collapses statements into wider stages.
//!
//! A proptest sweeps random straight-line programs through the same
//! staged-vs-sequential comparison.

use linview::prelude::*;
use linview::runtime::{DistBackend, ExecBackend, ThreadedBackend};
use proptest::prelude::*;

const SEED: u64 = 20726;

struct Case {
    name: &'static str,
    program: Program,
    inputs: Vec<(&'static str, Matrix)>,
    target: &'static str,
    grid: (usize, usize),
    scale: f64,
    updates: usize,
}

fn chain_adjacency(n: usize, damping: f64) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        a.set(i, i + 1, damping);
    }
    a.set(n - 1, 0, damping);
    a
}

fn cases() -> Vec<Case> {
    let n = 12;
    let mut out = Vec::new();

    let (program, _) = linview::apps::powers::powers_program(IterModel::Exponential, 4);
    out.push(Case {
        name: "powers",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 7, 0.8))],
        target: "A",
        grid: (2, 2),
        scale: 0.01,
        updates: 6,
    });

    let (program, _) = linview::apps::sums::sums_program(IterModel::Linear, 4, n);
    out.push(Case {
        name: "sums",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 8, 0.8))],
        target: "A",
        grid: (2, 2),
        scale: 0.01,
        updates: 6,
    });

    out.push(Case {
        name: "ols",
        program: parse_program("beta := inv(X' * X) * X' * Y;").unwrap(),
        inputs: vec![
            ("X", Matrix::random_diag_dominant(n, 9)),
            ("Y", Matrix::random_col(n, 10)),
        ],
        target: "X",
        grid: (4, 1),
        scale: 0.001,
        updates: 5,
    });

    let (sums, final_sum) = linview::apps::sums::sums_program(IterModel::Exponential, 4, n);
    let mut program = Program::new();
    for stmt in sums.statements() {
        program.assign(stmt.target.clone(), stmt.expr.clone());
    }
    program.assign("R", Expr::var("A") * Expr::var(final_sum));
    out.push(Case {
        name: "reach",
        program,
        inputs: vec![("A", chain_adjacency(n, 0.5))],
        target: "A",
        grid: (2, 2),
        scale: 0.1,
        updates: 6,
    });

    let m = Matrix::random_stochastic(n, 11).transpose().scale(0.85);
    let r0 = Matrix::filled(n, 1, 1.0 / n as f64);
    out.push(Case {
        name: "pagerank-step",
        program: parse_program("R1 := M * R0; R2 := M * R1; R3 := M * R2;").unwrap(),
        inputs: vec![("M", m), ("R0", r0)],
        target: "M",
        grid: (3, 1),
        scale: 0.005,
        updates: 6,
    });

    out
}

/// Runs `case` staged and sequential on one backend pair, asserting
/// bit-identical views, identical comm volume, and the expected stage
/// accounting. Returns (stmts, stages) accumulated by the staged view.
fn run_pair<B: ExecBackend>(
    case: &Case,
    staged_backend: B,
    seq_backend: B,
    views: &[String],
) -> (u64, u64) {
    let inputs: Vec<(&str, Matrix)> = case
        .inputs
        .iter()
        .map(|(name, m)| (*name, m.clone()))
        .collect();
    let mut cat = Catalog::new();
    for (name, m) in &inputs {
        cat.declare(*name, m.rows(), m.cols());
    }
    let mut staged = IncrementalView::build_on(staged_backend, &case.program, &inputs, &cat)
        .unwrap_or_else(|e| panic!("{}: staged build failed: {e}", case.name));
    let mut seq = IncrementalView::build_on(seq_backend, &case.program, &inputs, &cat)
        .unwrap_or_else(|e| panic!("{}: sequential build failed: {e}", case.name));
    seq.set_exec_options(ExecOptions {
        sequential: true,
        ..ExecOptions::default()
    });
    staged.reset_comm();
    seq.reset_comm();

    let (rows, cols) = inputs
        .iter()
        .find(|(n, _)| *n == case.target)
        .map(|(_, m)| m.shape())
        .expect("target is an input");
    let mut s1 = UpdateStream::new(rows, cols, case.scale, SEED);
    let mut s2 = UpdateStream::new(rows, cols, case.scale, SEED);
    for _ in 0..case.updates {
        staged.apply(case.target, &s1.next_rank_one()).unwrap();
        seq.apply(case.target, &s2.next_rank_one()).unwrap();
    }

    for view in views {
        assert_eq!(
            staged.get(view).unwrap(),
            seq.get(view).unwrap(),
            "{}: view {view} not bit-identical staged vs sequential",
            case.name
        );
    }
    // Stages buy latency, never volume: identical bytes and deliveries.
    assert_eq!(
        staged.comm(),
        seq.comm(),
        "{}: staged execution changed communication volume",
        case.name
    );

    let st = staged.sched_stats();
    let sq = seq.sched_stats();
    assert_eq!(st.firings, case.updates as u64);
    assert_eq!(st.stmts, sq.stmts, "{}: statement counts differ", case.name);
    assert_eq!(sq.stages, sq.stmts, "{}: opt-out must be serial", case.name);
    assert!(
        st.stages < st.stmts,
        "{}: staged execution found no parallelism ({} stages / {} stmts)",
        case.name,
        st.stages,
        st.stmts
    );
    (st.stmts, st.stages)
}

#[test]
fn staged_equals_sequential_bitwise_on_all_backends() {
    for case in cases() {
        let inputs: Vec<&str> = case.inputs.iter().map(|(n, _)| *n).collect();
        let normalized = case.program.hoist_inverses(&inputs);
        let mut views: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        views.extend(normalized.statements().iter().map(|s| s.target.clone()));

        run_pair(
            &case,
            linview::runtime::LocalBackend,
            linview::runtime::LocalBackend,
            &views,
        );
        run_pair(
            &case,
            DistBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1)),
            DistBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1)),
            &views,
        );
        run_pair(
            &case,
            ThreadedBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1)),
            ThreadedBackend::with_cluster(Cluster::with_grid(case.grid.0, case.grid.1)),
            &views,
        );
    }
}

#[test]
fn every_shipped_app_trigger_has_a_multi_statement_stage() {
    // The acceptance bar: the DAG actually collapses statements — at
    // least one stage of every app trigger holds ≥ 2 statements.
    for case in cases() {
        let inputs: Vec<&str> = case.inputs.iter().map(|(n, _)| *n).collect();
        let normalized = case.program.hoist_inverses(&inputs);
        let mut cat = Catalog::new();
        for (name, m) in &case.inputs {
            cat.declare(*name, m.rows(), m.cols());
        }
        let tp = compile(&normalized, &inputs, &cat, &CompileOptions::default()).unwrap();
        let trigger = tp.trigger_for(case.target).unwrap();
        let dag = trigger.dag().unwrap();
        assert!(dag.stage_count() <= dag.stmt_count());
        assert!(
            dag.max_stage_width() >= 2,
            "{}: widest stage of {} statements is {}",
            case.name,
            dag.stmt_count(),
            dag.max_stage_width()
        );
        assert!(
            !dag.is_chain(),
            "{}: trigger degenerated to a chain",
            case.name
        );
    }
}

#[test]
fn chain_dependent_triggers_keep_one_statement_per_stage() {
    // Equality of stage count and statement count happens exactly for
    // chain-dependent bodies: R1 := M R0 feeds R2 := M R1 feeds … — but
    // the *compiled* trigger still parallelizes the U/V block pairs, so
    // build the chain directly.
    use linview::compiler::{Trigger, TriggerStmt};
    let t = Trigger {
        input: "A".into(),
        update_rank: 1,
        stmts: vec![
            TriggerStmt::Assign {
                var: "x".into(),
                expr: Expr::var("dU_A"),
            },
            TriggerStmt::Assign {
                var: "y".into(),
                expr: Expr::var("A") * Expr::var("x"),
            },
            TriggerStmt::ApplyDelta {
                target: "A".into(),
                u: Expr::var("y"),
                v: Expr::var("dV_A"),
            },
        ],
    };
    let dag = t.dag().unwrap();
    assert!(dag.is_chain());
    assert_eq!(dag.stage_count(), dag.stmt_count());
    assert_eq!(dag.stmts_saved(), 0);
}

#[test]
fn engine_reports_overlapped_broadcasts_on_the_threaded_backend() {
    use linview::runtime::{FlushPolicy, MaintenanceEngine};
    let n = 12;
    let program = parse_program("C := A * B; D := C * C;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    cat.declare("B", n, n);
    let inputs = [
        ("A", Matrix::random_spectral(n, 31, 0.7)),
        ("B", Matrix::random_spectral(n, 32, 0.7)),
    ];
    let view = IncrementalView::build_on(ThreadedBackend::new(4).unwrap(), &program, &inputs, &cat)
        .unwrap();
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(3));
    let mut stream = UpdateStream::new(n, n, 0.01, 41);
    for i in 0..12 {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine.ingest(input, stream.next_rank_one()).unwrap();
    }
    engine.flush_all().unwrap();
    let stats = engine.stats();
    assert!(stats.stmts > 0);
    assert!(
        stats.stages < stats.stmts,
        "staged engine found no parallelism"
    );
    assert_eq!(stats.stmts_saved(), stats.stmts - stats.stages);
    assert!(
        stats.overlapped_broadcasts > 0,
        "threaded backend never overlapped a broadcast"
    );
    // The backend's own counters agree with what the engine accumulated.
    assert_eq!(
        engine.view().backend().sched().overlapped,
        stats.overlapped_broadcasts
    );
}

/// One random straight-line program: each statement multiplies two of the
/// previously available matrices (always including a dynamic dependency so
/// the trigger touches it).
fn random_program(shape: &[u8]) -> Program {
    let mut program = Program::new();
    let mut avail: Vec<String> = vec!["A".into()];
    for (i, &kind) in shape.iter().enumerate() {
        let target = format!("T{i}");
        let last = avail.last().unwrap().clone();
        let first = avail[0].clone();
        let expr = match kind % 3 {
            0 => Expr::var(&last) * Expr::var(&last),
            1 => Expr::var(&first) * Expr::var(&last),
            _ => Expr::var(&last) * Expr::var(&first),
        };
        program.assign(&target, expr);
        avail.push(target);
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_programs_stage_exactly(
        shape in proptest::collection::vec(0u8..3, 1..5),
        seed in 0u64..10_000,
        updates in 1usize..4,
    ) {
        let n = 10;
        let program = random_program(&shape);
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, seed, 0.7);
        let inputs = [("A", a)];

        let mut staged = IncrementalView::build(&program, &inputs, &cat).unwrap();
        let mut seq = IncrementalView::build(&program, &inputs, &cat).unwrap();
        seq.set_exec_options(ExecOptions { sequential: true, ..ExecOptions::default() });

        let mut s1 = UpdateStream::new(n, n, 0.01, seed);
        let mut s2 = UpdateStream::new(n, n, 0.01, seed);
        for _ in 0..updates {
            staged.apply("A", &s1.next_rank_one()).unwrap();
            seq.apply("A", &s2.next_rank_one()).unwrap();
        }
        prop_assert_eq!(staged.get("A").unwrap(), seq.get("A").unwrap());
        for i in 0..shape.len() {
            let view = format!("T{i}");
            prop_assert_eq!(
                staged.get(&view).unwrap(),
                seq.get(&view).unwrap(),
                "{} diverged", view
            );
        }

        // Shape properties of the schedule itself.
        let dag = staged.trigger_program().trigger_for("A").unwrap().dag().unwrap();
        prop_assert!(dag.stage_count() <= dag.stmt_count());
        prop_assert_eq!(dag.is_chain(), dag.stage_count() == dag.stmt_count());
        let total: usize = dag.stages().iter().map(Vec::len).sum();
        prop_assert_eq!(total, dag.stmt_count());
        let st = staged.sched_stats();
        prop_assert_eq!(st.stages, updates as u64 * dag.stage_count() as u64);
    }
}
