//! Integration tests for the `linview` command-line compiler.

use std::process::Command;

fn linview(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_linview"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn compiles_powers_program_to_trigger() {
    let (ok, stdout, _) = linview(&["--dims", "A=8x8", "--program", "B := A * A; C := B * B;"]);
    assert!(ok);
    assert!(stdout.contains("ON UPDATE A BY (dU_A, dV_A):"));
    assert!(stdout.contains("C += U_C V_C';"));
}

#[test]
fn emits_all_backends() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=8x8",
        "--program",
        "B := A * A;",
        "--emit",
        "all",
    ]);
    assert!(ok);
    assert!(stdout.contains("ON UPDATE A"));
    assert!(stdout.contains("function [A, B] = on_update_A"));
    assert!(stdout.contains("object LinviewTriggers {"));
    assert!(stdout.contains("flops"));
}

#[test]
fn ols_with_inverse_compiles_via_cli() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "X=16x4,Y=16x1",
        "--inputs",
        "X",
        "--program",
        "beta := inv(X' * X) * X' * Y;",
        "--emit",
        "trigger",
    ]);
    assert!(ok, "stderr: {stdout}");
    assert!(stdout.contains("sherman_morrison"));
    assert!(stdout.contains("beta += U_beta V_beta';"));
}

#[test]
fn rank_and_factor_flags_are_honored() {
    // --no-factor triples the first statement's block rank: 3 columns.
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=8x8",
        "--program",
        "B := A * A;",
        "--no-factor",
        "--no-optimize",
    ]);
    assert!(ok);
    // Unfactored U_B has three stacked blocks.
    let u_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("U_B :="))
        .expect("U_B assignment present");
    assert_eq!(
        u_line.matches('|').count(),
        2,
        "expected 3 blocks: {u_line}"
    );
}

#[test]
fn bad_usage_fails_with_diagnostics() {
    let (ok, _, stderr) = linview(&["--program", "B := A;"]);
    assert!(!ok);
    assert!(stderr.contains("--dims is required"));

    let (ok2, _, stderr2) = linview(&["--dims", "A=8x8"]);
    assert!(!ok2);
    assert!(stderr2.contains("--program / --file"));

    let (ok3, _, stderr3) = linview(&["--dims", "A=notashape", "--program", "B := A;"]);
    assert!(!ok3);
    assert!(stderr3.contains("bad shape") || stderr3.contains("bad dim spec"));
}

#[test]
fn parse_errors_are_reported() {
    let (ok, _, stderr) = linview(&["--dims", "A=8x8", "--program", "B := A **;"]);
    assert!(!ok);
    assert!(stderr.contains("parse error"));
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = linview(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE:"));
}

#[test]
fn analyze_flag_prints_cost_report() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=512x512",
        "--program",
        "B := A * A; C := B * B;",
        "--analyze",
    ]);
    assert!(ok);
    assert!(stdout.contains("REEVAL:"));
    assert!(stdout.contains("INCR:"));
    assert!(stdout.contains("predicted speedup"));
}

#[test]
fn joint_flag_emits_single_multi_input_trigger() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=8x8,B=8x8",
        "--program",
        "C := A * B;",
        "--joint",
    ]);
    assert!(ok);
    // Example 4.5's delta, as one trigger over both inputs.
    assert!(stdout.contains("ON UPDATE A, B BY (dU_A, dV_A), (dU_B, dV_B):"));
    assert!(stdout.contains("U_C := [ dU_A | A dU_B + dU_A (dV_A' dU_B) ];"));
    assert!(stdout.contains("C += U_C V_C';"));
    // And it is ONE trigger, not two.
    assert_eq!(stdout.matches("ON UPDATE").count(), 1);
}

#[test]
fn joint_flag_rejects_codegen_backends() {
    let (ok, _, stderr) = linview(&[
        "--dims",
        "A=8x8,B=8x8",
        "--program",
        "C := A * B;",
        "--joint",
        "--emit",
        "octave",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--joint"));
}

#[test]
fn emits_numpy_backend() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=8x8",
        "--program",
        "B := A * A;",
        "--emit",
        "numpy",
    ]);
    assert!(ok);
    assert!(stdout.contains("import numpy as np"));
    assert!(stdout.contains("def on_update_A(A, B, dU_A, dV_A):"));
    assert!(stdout.contains("B += U_B @ V_B.T"));
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir();
    let path = dir.join("linview_cli_test_prog.lv");
    std::fs::write(&path, "B := A * A;\n").unwrap();
    let (ok, stdout, _) = linview(&["--dims", "A=8x8", "--file", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("ON UPDATE A"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_accepts_well_formed_programs() {
    let (ok, stdout, _) = linview(&[
        "lint",
        "--dims",
        "A=16x16",
        "--program",
        "B := A * A; C := B * B;",
    ]);
    assert!(ok, "well-formed program must lint clean: {stdout}");
    assert!(stdout.contains("0 error(s)"));
    assert!(stdout.contains("verified stage(s)"));
    assert!(stdout.contains("flops/firing"));
}

#[test]
fn lint_rejects_ill_formed_program_with_structured_diagnostic() {
    // Seeded ill-formed program: dimension-inconsistent entrywise sum.
    let (ok, stdout, _) = linview(&["lint", "--dims", "A=4x4,B=5x5", "--program", "C := A + B;"]);
    assert!(!ok, "ill-formed program must exit nonzero");
    assert!(
        stdout.contains("error[shape]"),
        "missing structured diagnostic: {stdout}"
    );
    assert!(stdout.contains("1 error(s)"));
}

#[test]
fn lint_reports_parse_errors_structurally() {
    let (ok, stdout, _) = linview(&["lint", "--dims", "A=8x8", "--program", "B := A **;"]);
    assert!(!ok);
    assert!(stdout.contains("error[parse]"), "{stdout}");
}

#[test]
fn lint_runs_all_shipped_apps() {
    let (ok, stdout, _) = linview(&["lint", "--app", "all"]);
    assert!(ok, "shipped apps must lint without errors: {stdout}");
    for app in ["powers", "sums", "ols", "reach", "pagerank-step"] {
        assert!(
            stdout.contains(&format!("-- lint: {app} --")),
            "{app} missing"
        );
    }
    assert!(stdout.contains("5 program(s), 0 error(s)"));
}

#[test]
fn lint_deny_warnings_escalates() {
    // pagerank-step at n=16 legitimately prices worse than re-evaluation
    // (Table 2), which is a warning — fatal only under --deny-warnings.
    let (ok, stdout, _) = linview(&["lint", "--app", "pagerank-step"]);
    assert!(ok, "warnings alone must not fail: {stdout}");
    let (ok, stdout, _) = linview(&["lint", "--app", "pagerank-step", "--deny-warnings"]);
    assert!(!ok, "--deny-warnings must escalate: {stdout}");
    assert!(stdout.contains("warning[cost]"), "{stdout}");
}

#[test]
fn lint_rejects_unknown_flags_and_apps() {
    let (ok, _, stderr) = linview(&["lint", "--app", "nonesuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --app"));
    let (ok, _, stderr) = linview(&["lint", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("bogus"));
}

#[test]
fn emit_analysis_prints_analyzer_report() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=32x32",
        "--program",
        "B := A * A; C := B * B;",
        "--emit",
        "analysis",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("static analysis"), "{stdout}");
    assert!(stdout.contains("verified stage(s)"));
    assert!(stdout.contains("cost terms:"));
}

#[test]
fn engine_subcommand_runs_both_backends() {
    let (ok, stdout, stderr) = linview(&[
        "engine",
        "--n",
        "24",
        "--events",
        "16",
        "--batch",
        "4",
        "--backend",
        "both",
    ]);
    assert!(ok, "engine subcommand failed: {stderr}");
    assert!(stdout.contains("backend local"));
    assert!(stdout.contains("backend  dist"));
    assert!(stdout.contains("firings"));
    // Batching 16 events by 4 must fire 4 triggers per backend.
    assert!(stdout.contains("16 events -> 4 firings"));
    // Shared execution path: the backends agree exactly.
    assert!(stdout.contains("backend divergence on D (local vs dist): 0.00e0"));
}

#[test]
fn engine_subcommand_rejects_bad_flags() {
    let (ok, _, stderr) = linview(&["engine", "--backend", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("--backend"));
    let (ok, _, stderr) = linview(&["engine", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("bogus"));
}

/// Like [`linview`] but with extra environment variables set on the child.
fn linview_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_linview"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn engine_gemm_flags_pin_kernel_and_threads() {
    let (ok, stdout, stderr) = linview(&[
        "engine",
        "--n",
        "16",
        "--events",
        "4",
        "--batch",
        "2",
        "--backend",
        "local",
        "--gemm",
        "naive",
        "--threads",
        "1",
    ]);
    assert!(ok, "engine with --gemm failed: {stderr}");
    assert!(
        stdout.contains("gemm: kernel naive, 1 thread budget"),
        "missing kernel report: {stdout}"
    );
}

#[test]
fn gemm_env_overrides_select_kernel_and_threads() {
    let (ok, stdout, stderr) = linview_env(
        &["engine", "--n", "16", "--events", "4", "--backend", "local"],
        &[("LINVIEW_GEMM", "blocked"), ("LINVIEW_THREADS", "2")],
    );
    assert!(ok, "engine under env overrides failed: {stderr}");
    assert!(
        stdout.contains("gemm: kernel blocked, 2 thread budget"),
        "env overrides not honored: {stdout}"
    );
    // The CLI flag outranks the environment.
    let (ok, stdout, _) = linview_env(
        &[
            "engine",
            "--n",
            "16",
            "--events",
            "4",
            "--backend",
            "local",
            "--gemm",
            "packed",
        ],
        &[("LINVIEW_GEMM", "naive")],
    );
    assert!(ok);
    assert!(stdout.contains("gemm: kernel packed"), "{stdout}");
}

#[test]
fn engine_results_are_identical_across_gemm_thread_budgets() {
    // Determinism end to end: the same engine run under different thread
    // budgets prints identical reports (timings aside, D is checked
    // in-process against re-derived views on every backend).
    let run = |threads: &str| {
        let (ok, stdout, stderr) = linview(&[
            "engine",
            "--n",
            "32",
            "--events",
            "8",
            "--backend",
            "both",
            "--threads",
            threads,
        ]);
        assert!(ok, "engine --threads {threads} failed: {stderr}");
        assert!(stdout.contains("backend divergence on D (local vs dist): 0.00e0"));
    };
    run("1");
    run("3");
}

#[test]
fn rejects_bad_gemm_flags() {
    let (ok, _, stderr) = linview(&["engine", "--gemm", "turbo"]);
    assert!(!ok);
    assert!(stderr.contains("bad --gemm"));
    // The typed parse error lists every valid spelling.
    assert!(
        stderr.contains("unknown GEMM kernel") && stderr.contains("packed-fma"),
        "error must name the kernel list: {stderr}"
    );
    let (ok, _, stderr) = linview(&["engine", "--threads", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--threads"));
    let (ok, _, stderr) = linview(&[
        "--dims",
        "A=8x8",
        "--program",
        "B := A * A;",
        "--gemm",
        "warp",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad --gemm"));
}

#[test]
fn bad_env_kernel_warns_at_startup_and_falls_back() {
    // A typo'd LINVIEW_GEMM must not silently benchmark the default
    // kernel: the run still succeeds, but says what it ignored.
    let (ok, stdout, stderr) = linview_env(
        &["engine", "--n", "16", "--events", "4", "--backend", "local"],
        &[("LINVIEW_GEMM", "turbo")],
    );
    assert!(ok, "engine under a bad LINVIEW_GEMM failed: {stderr}");
    assert!(
        stderr.contains("warning: ignoring LINVIEW_GEMM") && stderr.contains("turbo"),
        "missing startup warning: {stderr}"
    );
    assert!(
        stdout.contains("gemm: kernel packed"),
        "must fall back to the default kernel: {stdout}"
    );
    // A valid value warns nothing.
    let (ok, _, stderr) = linview_env(
        &["engine", "--n", "16", "--events", "4", "--backend", "local"],
        &[("LINVIEW_GEMM", "naive")],
    );
    assert!(ok);
    assert!(
        !stderr.contains("warning: ignoring LINVIEW_GEMM"),
        "spurious warning: {stderr}"
    );
}

#[test]
fn packed_fma_is_selectable_by_flag_and_env() {
    let (ok, stdout, stderr) = linview(&[
        "engine",
        "--n",
        "16",
        "--events",
        "4",
        "--backend",
        "local",
        "--gemm",
        "packed-fma",
    ]);
    assert!(ok, "engine with --gemm packed-fma failed: {stderr}");
    assert!(
        stdout.contains("gemm: kernel packed-fma"),
        "missing kernel report: {stdout}"
    );
    let (ok, stdout, stderr) = linview_env(
        &["engine", "--n", "16", "--events", "4", "--backend", "local"],
        &[("LINVIEW_GEMM", "packed-fma")],
    );
    assert!(ok, "engine under LINVIEW_GEMM=packed-fma failed: {stderr}");
    assert!(stdout.contains("gemm: kernel packed-fma"), "{stdout}");
}

#[test]
fn compile_mode_accepts_gemm_flags() {
    let (ok, stdout, _) = linview(&[
        "--dims",
        "A=8x8",
        "--program",
        "B := A * A;",
        "--gemm",
        "strassen",
        "--threads",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("ON UPDATE A"));
}

#[test]
fn cluster_errors_render_a_caused_by_chain() {
    // 3 workers cannot form a square grid: the CLI must exit nonzero with
    // the full error chain, not panic inside the cluster constructor.
    let (ok, _, stderr) = linview(&[
        "engine",
        "--n",
        "8",
        "--events",
        "4",
        "--backend",
        "threaded",
        "--workers",
        "3",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("cluster layout error"),
        "missing top-level error: {stderr}"
    );
    assert!(
        stderr.contains("caused by:") && stderr.contains("not a perfect square"),
        "missing caused-by chain: {stderr}"
    );
}

#[test]
fn engine_recovers_a_killed_worker_with_zero_divergence() {
    // The full fault-tolerance drill through the CLI: every backend from
    // the same seed, a worker killed mid-stream on the threaded and socket
    // legs, checkpoint/replay recovery — and still bit-identical results.
    let (ok, stdout, stderr) = linview(&[
        "engine",
        "--n",
        "12",
        "--events",
        "12",
        "--batch",
        "3",
        "--workers",
        "4",
        "--backend",
        "all",
        "--checkpoint-every",
        "2",
        "--kill-worker-after",
        "6",
    ]);
    assert!(ok, "engine recovery run failed: {stderr}");
    for pair in ["local vs dist", "local vs threaded", "local vs socket"] {
        assert!(
            stdout.contains(&format!("backend divergence on D ({pair}): 0.00e0")),
            "nonzero divergence for {pair}: {stdout}"
        );
    }
    assert!(
        stdout.contains("recovery:") && stdout.contains("1 recoveries"),
        "missing recovery report: {stdout}"
    );
}

#[test]
fn kill_injection_requires_checkpointing() {
    let (ok, _, stderr) = linview(&[
        "engine",
        "--backend",
        "threaded",
        "--kill-worker-after",
        "4",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--checkpoint-every"),
        "missing flag diagnostic: {stderr}"
    );
}

#[test]
fn worker_subcommand_requires_a_listen_address() {
    let (ok, _, stderr) = linview(&["worker"]);
    assert!(!ok);
    assert!(stderr.contains("--listen"), "missing diagnostic: {stderr}");
}

#[test]
fn serve_cluster_rejects_non_grid_worker_counts() {
    let (ok, _, stderr) = linview(&["serve-cluster", "--workers", "5"]);
    assert!(!ok);
    assert!(
        stderr.contains("caused by:") || stderr.contains("perfect square"),
        "missing cluster diagnostic: {stderr}"
    );
}

#[test]
fn bad_env_thread_budget_warns_at_startup_and_falls_back() {
    // LINVIEW_THREADS=0 (or garbage) must not silently pick some other
    // budget: the run still succeeds, but says what it ignored — the
    // same contract as LINVIEW_GEMM hardening.
    for bad in ["0", "lots", "-3"] {
        let (ok, _, stderr) = linview_env(
            &["engine", "--n", "16", "--events", "4", "--backend", "local"],
            &[("LINVIEW_THREADS", bad)],
        );
        assert!(ok, "engine under LINVIEW_THREADS={bad} failed: {stderr}");
        assert!(
            stderr.contains("warning: ignoring LINVIEW_THREADS")
                && stderr.contains("invalid thread budget"),
            "missing startup warning for {bad:?}: {stderr}"
        );
    }
    // A valid value warns nothing.
    let (ok, _, stderr) = linview_env(
        &["engine", "--n", "16", "--events", "4", "--backend", "local"],
        &[("LINVIEW_THREADS", "2")],
    );
    assert!(ok);
    assert!(
        !stderr.contains("warning: ignoring LINVIEW_THREADS"),
        "spurious warning: {stderr}"
    );
}

#[test]
fn serve_reports_reads_staleness_latency_and_zero_divergence() {
    let (ok, stdout, stderr) = linview(&[
        "serve",
        "--n",
        "16",
        "--events",
        "48",
        "--batch",
        "4",
        "--readers",
        "2",
        "--publish-every",
        "2",
        "--pace-ms",
        "1",
    ]);
    assert!(ok, "serve failed: {stderr}");
    assert!(
        stdout.contains("serve divergence (snapshot vs live, 4 views): 0.00e0"),
        "missing zero-divergence line: {stdout}"
    );
    assert!(
        stdout.contains("read latency: p50"),
        "missing latency report: {stdout}"
    );
    assert!(
        stdout.contains("reads/s") && !stdout.contains("(s), 0 reads"),
        "readers made no progress: {stdout}"
    );
    assert!(
        stdout.contains("staleness max"),
        "missing staleness report: {stdout}"
    );
}

#[test]
fn serve_rejects_bad_flags() {
    let (ok, _, stderr) = linview(&["serve", "--backend", "dist"]);
    assert!(!ok);
    assert!(stderr.contains("--backend"), "missing diagnostic: {stderr}");
    let (ok, _, stderr) = linview(&["serve", "--readers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--readers"), "missing diagnostic: {stderr}");
    let (ok, _, stderr) = linview(&["serve", "--bogus"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown serve flag"),
        "missing diagnostic: {stderr}"
    );
}

#[test]
fn serve_recovers_from_a_torn_wal_directory() {
    let dir = std::env::temp_dir().join(format!("lv-cli-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_flag = dir.to_str().unwrap();
    let base = &[
        "serve",
        "--n",
        "12",
        "--events",
        "24",
        "--batch",
        "4",
        "--readers",
        "1",
        "--wal-dir",
        dir_flag,
    ];
    let (ok, _, stderr) = linview(base);
    assert!(ok, "first serve run failed: {stderr}");

    // Chop 3 bytes off the newest WAL generation: a torn tail.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".bin"))
        })
        .max()
        .expect("a WAL file exists");
    let len = std::fs::metadata(&newest).unwrap().len();
    assert!(len > 3, "WAL too short to tear ({len} bytes)");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&newest)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let (ok, stdout, stderr) = linview(base);
    assert!(ok, "serve after torn WAL failed: {stderr}");
    assert!(
        stdout.contains("torn WAL tail byte(s) truncated") && stdout.contains("recovered from"),
        "missing torn-tail recovery report: {stdout}"
    );
    assert!(
        stdout.contains("serve divergence (snapshot vs live, 4 views): 0.00e0"),
        "post-recovery serving diverged: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
