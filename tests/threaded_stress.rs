//! Concurrency stress for the threaded message-passing backend.
//!
//! N producer threads hammer ONE `MaintenanceEngine<ThreadedBackend>`
//! behind a mutex, each streaming rank-1 events into its own dynamic
//! input, with scheduling deliberately perturbed so the policy-driven
//! flushes of different inputs interleave differently on every run. The
//! program is chosen so each input feeds a *disjoint* view chain
//! (`C := A * A; D := B * B;`): per-input event order is preserved by the
//! producers, per-input batch boundaries are fixed by the count policy,
//! and the derived views of different inputs share no state — so the
//! final engine state must be **deterministic** (bit-identical to a
//! sequential replay of the same per-input streams) no matter how the OS
//! schedules the producers or the worker threads.
//!
//! The same replay pins down the communication meter: byte counts of the
//! concurrent run must equal the sequential run's exactly, and a direct
//! `apply_delta` audit recomputes them from the serialized frames
//! themselves.

use std::sync::{Arc, Mutex};

use linview::prelude::*;
use linview::runtime::{ExecBackend, FlushPolicy, MaintenanceEngine, ThreadedBackend};

const N: usize = 12;
// Not a multiple of BATCH: the final flush round finds both inputs
// pending and fires ONE joint trigger for the leftovers.
const EVENTS_PER_PRODUCER: usize = 38;
const BATCH: usize = 4;
const WORKERS: usize = 4;

/// The two-producer workload: input name, stream seed.
const PRODUCERS: [(&str, u64); 2] = [("A", 71), ("B", 72)];

fn build_engine() -> MaintenanceEngine<ThreadedBackend> {
    let program = parse_program("C := A * A; D := B * B;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("B", N, N);
    let a = Matrix::random_spectral(N, 51, 0.7);
    let b = Matrix::random_spectral(N, 52, 0.7);
    let view = IncrementalView::build_on(
        ThreadedBackend::new(WORKERS).unwrap(),
        &program,
        &[("A", a), ("B", b)],
        &cat,
    )
    .unwrap();
    view.reset_comm();
    MaintenanceEngine::new(view, FlushPolicy::Count(BATCH))
}

/// The deterministic event sequence of one producer.
fn producer_events(seed: u64) -> Vec<RankOneUpdate> {
    let mut stream = UpdateStream::new(N, N, 0.01, seed);
    (0..EVENTS_PER_PRODUCER)
        .map(|_| stream.next_rank_one())
        .collect()
}

/// Runs the workload with real concurrency: one thread per producer, shared
/// engine, yields between ingests to churn the interleaving.
fn run_concurrent() -> MaintenanceEngine<ThreadedBackend> {
    let engine = Arc::new(Mutex::new(build_engine()));
    std::thread::scope(|scope| {
        for (input, seed) in PRODUCERS {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for (i, upd) in producer_events(seed).into_iter().enumerate() {
                    engine.lock().unwrap().ingest(input, upd).unwrap();
                    // Perturb the schedule so flushes interleave
                    // differently run to run.
                    if i % 3 == (seed % 3) as usize {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    let mut engine = Arc::try_unwrap(engine)
        .expect("producers joined")
        .into_inner()
        .unwrap();
    engine.flush_all().unwrap();
    engine
}

/// Runs the same per-input streams strictly sequentially.
fn run_sequential() -> MaintenanceEngine<ThreadedBackend> {
    let mut engine = build_engine();
    for (input, seed) in PRODUCERS {
        for upd in producer_events(seed) {
            engine.ingest(input, upd).unwrap();
        }
    }
    engine.flush_all().unwrap();
    engine
}

#[test]
fn concurrent_ingestion_is_deterministic_and_exactly_metered() {
    let sequential = run_sequential();
    // Two concurrent runs: different OS schedules, same required outcome.
    for round in 0..2 {
        let concurrent = run_concurrent();

        // Deterministic final state: every maintained view, the
        // worker-owned partitions included, is bit-identical to the
        // sequential replay.
        for view in ["A", "B", "C", "D"] {
            assert_eq!(
                concurrent.get(view).unwrap(),
                sequential.get(view).unwrap(),
                "{view} depends on producer interleaving (round {round})"
            );
            assert_eq!(
                &concurrent.view().backend().view(view).unwrap(),
                sequential.get(view).unwrap(),
                "worker-owned blocks of {view} diverged (round {round})"
            );
        }

        // Same events, same per-input batch boundaries, same firings — and
        // the frame-exact byte meter agrees down to the last byte.
        let cs = concurrent.stats();
        let ss = sequential.stats();
        assert_eq!(cs.events, ss.events);
        assert_eq!(cs.events, (PRODUCERS.len() * EVENTS_PER_PRODUCER) as u64);
        assert_eq!(cs.firings, ss.firings);
        assert_eq!(cs.fired_rank, ss.fired_rank);
        assert_eq!(cs.joint_rounds, 1, "the leftover flush round must go joint");
        assert_eq!(cs.triggers_saved, ss.triggers_saved);
        let cc = concurrent.comm();
        let sc = sequential.comm();
        assert_eq!(cc, sc, "concurrent byte accounting diverged");
        assert!(cc.broadcast_bytes > 0);
        assert_eq!(cc.shuffle_bytes, 0);
        assert_eq!(cc.broadcast_msgs % WORKERS as u64, 0);
    }
}

/// Audits the meter against the transport's own serialization: the bytes
/// recorded for a broadcast are the length of the frame the workers
/// actually received, once per worker — recomputed here byte for byte.
#[test]
fn comm_bytes_are_recomputed_exactly_from_serialized_frames() {
    let mut env = Env::new();
    env.bind("X", Matrix::random_uniform(N, N, 61));
    let mut backend = ThreadedBackend::new(WORKERS).unwrap();
    backend.materialize(&env).unwrap();
    backend.reset_comm();

    let mut expected_bytes = 0u64;
    let mut expected_msgs = 0u64;
    let mut stream = UpdateStream::new(N, N, 0.05, 62);
    for k in [1usize, 2, 5] {
        let batch = stream.next_batch_zipf(k, 1.0).unwrap();
        backend
            .apply_delta(&mut env, "X", &batch.u, &batch.v, false)
            .unwrap();
        let frame = linview::dist::delta_frame("X", &batch.u, &batch.v);
        expected_bytes += WORKERS as u64 * frame.len() as u64;
        expected_msgs += WORKERS as u64;
    }
    let comm = backend.comm();
    assert_eq!(comm.broadcast_bytes, expected_bytes);
    assert_eq!(comm.broadcast_msgs, expected_msgs);
    assert_eq!(comm.shuffle_bytes, 0);
    // And the bytes were not just counted — they moved: worker state
    // equals the mirror after the pipelined broadcasts drain.
    assert_eq!(&backend.view("X").unwrap(), env.get("X").unwrap());
}
