//! Serving-layer stress and conformance suite: wait-free snapshot reads
//! under live maintenance.
//!
//! The conformance bar: every published snapshot must be a state the
//! engine actually passed through — bit-identical to a sequential replay
//! of the same update stream at the same epoch, on every backend (local,
//! threaded, socket). Readers must observe monotone epochs, staleness
//! bounded by the publish cadence, and must never block trigger firings.

use linview::apps::powers::powers_program;
use linview::apps::sums::sums_program;
use linview::dist::{spawn_local_grid, SocketConfig};
use linview::prelude::*;
use linview::runtime::{
    ExecBackend, FlushPolicy, MaintenanceEngine, ReaderPool, SocketBackend, ThreadedBackend,
    ViewSnapshot,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const N: usize = 12;
const EVENTS: usize = 32;
const BATCH: usize = 4;
const SEED: u64 = 977;

fn serve_program() -> (Program, Catalog, Vec<(&'static str, Matrix)>) {
    let program = parse_program("C := A * B; D := C * C;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("B", N, N);
    let a = Matrix::random_spectral(N, 7, 0.8);
    let b = Matrix::random_spectral(N, 8, 0.8);
    (program, cat, vec![("A", a), ("B", b)])
}

/// Drives the standard event stream through `view` with serving enabled,
/// collecting the published snapshot at every epoch the run passes
/// through (publish cadence 1 makes publication synchronous with each
/// flush round, so the map is complete).
fn run_and_collect<B: ExecBackend>(
    view: IncrementalView<B>,
) -> (BTreeMap<u64, Arc<ViewSnapshot>>, MaintenanceEngine<B>) {
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(BATCH));
    let handle = engine.enable_serving(1);
    let mut by_epoch = BTreeMap::new();
    by_epoch.insert(handle.epoch(), handle.snapshot());
    let mut stream = UpdateStream::new(N, N, 0.01, SEED);
    for i in 0..EVENTS {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine.ingest(input, stream.next_rank_one()).unwrap();
        by_epoch
            .entry(handle.epoch())
            .or_insert_with(|| handle.snapshot());
    }
    engine.flush_all().unwrap();
    by_epoch
        .entry(handle.epoch())
        .or_insert_with(|| handle.snapshot());
    (by_epoch, engine)
}

fn assert_epoch_maps_identical(
    a: &BTreeMap<u64, Arc<ViewSnapshot>>,
    b: &BTreeMap<u64, Arc<ViewSnapshot>>,
    what: &str,
) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{what}: epoch sets differ"
    );
    for (epoch, snap) in a {
        let other = &b[epoch];
        assert_eq!(
            snap.as_ref(),
            other.as_ref(),
            "{what}: snapshot at epoch {epoch} diverged"
        );
    }
}

#[test]
fn published_snapshots_equal_sequential_replay_at_every_epoch() {
    let (program, cat, inputs) = serve_program();
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let (observed, engine) = run_and_collect(view);

    // An independent sequential replay of the identical stream must pass
    // through exactly the same states at the same epochs, bit for bit.
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let (replay, _) = run_and_collect(view);
    assert_epoch_maps_identical(&observed, &replay, "replay");

    // The final published snapshot is the live engine state.
    let last = observed.values().next_back().unwrap();
    for name in last.names() {
        assert_eq!(
            last.get(name).unwrap(),
            engine.get(name).unwrap(),
            "final snapshot of {name} is not the live state"
        );
    }
    // With cadence 1, every firing published: one epoch per firing plus
    // the epoch-0 bootstrap snapshot.
    assert_eq!(observed.len() as u64, engine.stats().firings + 1);
}

#[test]
fn snapshots_are_bit_identical_across_local_threaded_socket_at_every_epoch() {
    let (program, cat, inputs) = serve_program();

    let local = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let (local_map, _) = run_and_collect(local);

    let threaded = IncrementalView::build_on(
        ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
        &program,
        &inputs,
        &cat,
    )
    .unwrap();
    let (threaded_map, _) = run_and_collect(threaded);
    assert_epoch_maps_identical(&local_map, &threaded_map, "local vs threaded");

    let (_servers, addrs) = spawn_local_grid(2, 2, "serving-conf").unwrap();
    let socket = IncrementalView::build_on(
        SocketBackend::connect_with_cluster(
            Cluster::with_grid(2, 2),
            addrs,
            SocketConfig::default(),
        )
        .unwrap(),
        &program,
        &inputs,
        &cat,
    )
    .unwrap();
    let (socket_map, _) = run_and_collect(socket);
    assert_epoch_maps_identical(&local_map, &socket_map, "local vs socket");
}

#[test]
fn concurrent_readers_observe_only_replay_states() {
    // Reference: the epoch -> state table of a sequential replay.
    let (program, cat, inputs) = serve_program();
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let (reference, _) = run_and_collect(view);

    // Live run: collector threads race the maintainer, grabbing whatever
    // snapshot is published whenever they see a new epoch.
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(BATCH));
    let handle = engine.enable_serving(1);
    let stop = Arc::new(AtomicBool::new(false));
    let observed: Arc<Mutex<BTreeMap<u64, Arc<ViewSnapshot>>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let collectors: Vec<_> = (0..4)
        .map(|_| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                let mut last = u64::MAX;
                let mut monotone = true;
                while !stop.load(Ordering::Acquire) {
                    let snap = handle.snapshot();
                    let epoch = snap.epoch();
                    if last != u64::MAX && epoch < last {
                        monotone = false;
                    }
                    if epoch != last {
                        observed.lock().unwrap().entry(epoch).or_insert(snap);
                        last = epoch;
                    }
                    std::thread::yield_now();
                }
                monotone
            })
        })
        .collect();

    let mut stream = UpdateStream::new(N, N, 0.01, SEED);
    for i in 0..EVENTS {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine.ingest(input, stream.next_rank_one()).unwrap();
        // Pace the writer so collectors actually witness distinct epochs.
        std::thread::sleep(Duration::from_millis(1));
    }
    engine.flush_all().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    stop.store(true, Ordering::Release);
    for c in collectors {
        assert!(c.join().unwrap(), "a collector saw a non-monotone epoch");
    }

    let observed = observed.lock().unwrap();
    assert!(
        observed.len() > 1,
        "collectors saw only {} epoch(s) — no concurrency exercised",
        observed.len()
    );
    for (epoch, snap) in observed.iter() {
        let expected = reference
            .get(epoch)
            .unwrap_or_else(|| panic!("observed epoch {epoch} never occurs in a replay"));
        assert_eq!(
            snap.as_ref(),
            expected.as_ref(),
            "snapshot observed at epoch {epoch} is not the replay state"
        );
    }
}

#[test]
fn reader_pool_reports_progress_bounded_staleness_and_monotone_epochs() {
    let (program, cat, inputs) = serve_program();
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(BATCH));
    let every = 3u64;
    let handle = engine.enable_serving(every);
    let pool = ReaderPool::spawn(&handle, 4, &[]);

    let mut stream = UpdateStream::new(N, N, 0.01, SEED);
    for i in 0..EVENTS {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine.ingest(input, stream.next_rank_one()).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    engine.flush_all().unwrap();
    let reports = pool.stop();
    let mut reads = 0u64;
    for r in &reports {
        reads += r.reads;
        assert!(r.epochs_monotone, "a reader saw a non-monotone epoch");
        // Staleness can transiently read `every` between the round counter
        // bump and the publish that follows it; it must never exceed it.
        assert!(
            r.max_staleness <= every,
            "staleness {} exceeds cadence {every}",
            r.max_staleness
        );
    }
    assert!(reads > 0, "readers made no progress");
}

#[test]
fn readers_do_not_block_maintenance() {
    // Both runs pace the writer, so wall time is dominated by the sleeps
    // and any *blocking* a reader imposed on the maintainer would stand
    // out; pure CPU sharing does not register on a paced writer. The
    // margin is deliberately lenient (2x on the non-sleep residue) to
    // stay robust on loaded CI machines — the `serve` bench table tracks
    // the precise throughput ratio.
    let (program, cat, inputs) = serve_program();
    let run = |readers: usize| {
        let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
        let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(BATCH));
        let handle = engine.enable_serving(1);
        let pool = (readers > 0).then(|| ReaderPool::spawn(&handle, readers, &[]));
        let mut stream = UpdateStream::new(N, N, 0.01, SEED);
        let start = Instant::now();
        for i in 0..EVENTS {
            let input = if i % 2 == 0 { "A" } else { "B" };
            engine.ingest(input, stream.next_rank_one()).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        engine.flush_all().unwrap();
        let elapsed = start.elapsed();
        if let Some(pool) = pool {
            let reports = pool.stop();
            assert!(reports.iter().any(|r| r.reads > 0), "readers never ran");
        }
        elapsed
    };
    let baseline = run(0);
    let contended = run(4);
    let sleep_floor = Duration::from_millis(EVENTS as u64);
    let baseline_work = baseline.saturating_sub(sleep_floor);
    let contended_work = contended.saturating_sub(sleep_floor);
    assert!(
        contended_work < baseline_work.max(Duration::from_millis(20)) * 2,
        "maintenance under readers took {contended_work:?} vs {baseline_work:?} alone"
    );
}

#[test]
fn restore_republishes_before_readers_can_observe_stale_state() {
    let (program, cat, inputs) = serve_program();
    let view = IncrementalView::build(&program, &inputs, &cat).unwrap();
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Count(2));
    // A deliberately lazy cadence: without the forced publish on restore,
    // readers would keep serving the pre-restore state for several rounds.
    let handle = engine.enable_serving(8);
    engine.enable_checkpointing(1).unwrap();

    let mut stream = UpdateStream::new(N, N, 0.01, SEED);
    for i in 0..8 {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine.ingest(input, stream.next_rank_one()).unwrap();
    }
    let epoch_before = handle.epoch();
    engine.recover().unwrap();
    assert!(
        handle.epoch() > epoch_before,
        "restore did not advance the published epoch"
    );
    let snap = handle.snapshot();
    for name in snap.names() {
        assert_eq!(
            snap.get(name).unwrap(),
            engine.get(name).unwrap(),
            "post-restore snapshot of {name} is not the restored state"
        );
    }
}

#[test]
fn app_handles_publish_their_views() {
    let n = 10;
    let mut stream = UpdateStream::new(n, n, 0.01, SEED);

    // Matrix powers: every maintained power is served.
    let (_, final_power) = powers_program(IterModel::Exponential, 4);
    let a = Matrix::random_spectral(n, 5, 0.8);
    let mut powers = IncrPowers::new(a.clone(), IterModel::Exponential, 4).unwrap();
    let handle = powers.enable_serving(1);
    powers.apply(&stream.next_rank_one()).unwrap();
    assert_eq!(
        handle.snapshot().get(&final_power).unwrap(),
        powers.result()
    );
    assert!(powers.serving_handle().is_some());

    // Sums of powers.
    let (_, final_sum) = sums_program(IterModel::Linear, 4, n);
    let mut sums = IncrSums::new(a.clone(), IterModel::Linear, 4).unwrap();
    let handle = sums.enable_serving(1);
    sums.apply(&stream.next_rank_one()).unwrap();
    assert_eq!(handle.snapshot().get(&final_sum).unwrap(), sums.result());

    // OLS: the estimate and the maintained inverse are both served.
    let x = Matrix::random_uniform(24, 6, 11);
    let y = Matrix::random_uniform(24, 1, 12);
    let mut ols = IncrOls::new(x, y).unwrap();
    let handle = ols.enable_serving(1);
    let mut xs = UpdateStream::new(24, 6, 0.01, 13);
    ols.apply(&xs.next_rank_one()).unwrap();
    assert_eq!(handle.snapshot().get("beta").unwrap(), ols.beta());
    assert_eq!(handle.snapshot().get("W").unwrap(), ols.inverse_view());

    // Reachability: the index R is served through the engine.
    let mut reach = Reachability::new(8, &[(0, 1), (1, 2)], 4).unwrap();
    let handle = reach.enable_serving(1);
    reach.add_edge(2, 3).unwrap();
    let snap = handle.snapshot();
    assert_eq!(
        snap.get("R").unwrap().get(0, 3),
        reach.path_weight(0, 3).unwrap(),
        "served reachability index diverged"
    );

    // PageRank: the rank vector is served as \"ranks\".
    let edges: Vec<_> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
    let mut pr =
        PageRank::new(8, &edges, 0.85, 8, IterModel::Linear, Strategy::Incremental).unwrap();
    let handle = pr.enable_serving(1);
    let epoch0 = handle.epoch();
    pr.add_edge(0, 4).unwrap();
    assert!(handle.epoch() > epoch0, "edge mutation did not publish");
    assert_eq!(handle.snapshot().get("ranks").unwrap(), pr.ranks());
    // No-op mutations publish nothing.
    let epoch1 = handle.epoch();
    pr.add_edge(0, 4).unwrap();
    assert_eq!(handle.epoch(), epoch1);
}
