//! End-to-end integration tests: frontend → Algorithm 1 → optimizer →
//! codegen → runtime execution, validated against full re-evaluation, plus
//! cross-validation between the two independent incremental implementations
//! (compiled triggers vs the hand-derived Appendix A/B recurrences).

use linview::apps::general::{GeneralForm, Strategy};
use linview::apps::powers::IncrPowers;
use linview::compiler::codegen::{octave, plan};
use linview::compiler::optimizer::{optimize, OptimizerOptions};
use linview::compiler::{compile, CompileOptions};
use linview::expr::cost::CostModel;
use linview::matrix::flops;
use linview::prelude::*;

#[test]
fn full_pipeline_a8_example_4_4() {
    // Parse the A^8 program of Example 4.4 (B, C, D = A^8).
    let program = parse_program("B := A * A; C := B * B; D := C * C;").unwrap();
    let n = 24;
    let mut cat = Catalog::new();
    cat.declare("A", n, n);

    // Compile and check §4.3's rank growth: ΔB/ΔC/ΔD blocks are 2/4/8 wide.
    let mut tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
    assert_eq!(tp.catalog.get("U_B").unwrap().cols, 2);
    assert_eq!(tp.catalog.get("U_C").unwrap().cols, 4);
    assert_eq!(tp.catalog.get("U_D").unwrap().cols, 8);

    // Optimize; the trigger must stay semantically identical.
    optimize(&mut tp, &OptimizerOptions::default()).unwrap();

    // Execute both strategies over an update stream.
    let a = Matrix::random_spectral(n, 3, 0.8);
    let mut reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).unwrap();
    let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.01, 7);
    for _ in 0..15 {
        let upd = stream.next_rank_one();
        reeval.apply("A", &upd).unwrap();
        incr.apply("A", &upd).unwrap();
    }
    assert!(incr
        .get("D")
        .unwrap()
        .approx_eq(reeval.get("D").unwrap(), 1e-7));
}

#[test]
fn optimized_trigger_executes_identically() {
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let n = 16;
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
    let mut tp_opt = tp.clone();
    optimize(&mut tp_opt, &OptimizerOptions::default()).unwrap();

    let a = Matrix::random_spectral(n, 5, 0.8);
    let b0 = a.try_matmul(&a).unwrap();
    let c0 = b0.try_matmul(&b0).unwrap();
    let build_env = || {
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", b0.clone());
        env.bind("C", c0.clone());
        env
    };
    let mut env1 = build_env();
    let mut env2 = build_env();
    let upd = RankOneUpdate::row_update(n, n, 4, 0.02, 11);
    let ev = Evaluator::new();
    linview::runtime::fire_trigger(&mut env1, &ev, &tp.triggers[0], &upd.u, &upd.v).unwrap();
    linview::runtime::fire_trigger(&mut env2, &ev, &tp_opt.triggers[0], &upd.u, &upd.v).unwrap();
    assert!(env1
        .get("C")
        .unwrap()
        .approx_eq(env2.get("C").unwrap(), 1e-10));
}

#[test]
fn incremental_beats_reevaluation_in_flops() {
    // The core claim, stated in operation counts rather than wall time:
    // for A^16 (exp model), one incremental refresh does at least 5x fewer
    // FLOPs than one re-evaluation at n = 128.
    let n = 128;
    let k = 16;
    let a = Matrix::random_spectral(n, 9, 0.9);
    let mut reeval =
        linview::apps::powers::ReevalPowers::new(a.clone(), IterModel::Exponential, k).unwrap();
    let mut incr = IncrPowers::new(a, IterModel::Exponential, k).unwrap();
    let upd = RankOneUpdate::row_update(n, n, 3, 0.01, 13);

    flops::reset();
    reeval.apply(&upd).unwrap();
    let reeval_flops = flops::reset();
    incr.apply(&upd).unwrap();
    let incr_flops = flops::reset();
    assert!(
        incr_flops * 5 < reeval_flops,
        "INCR {incr_flops} flops !<< REEVAL {reeval_flops} flops"
    );
}

#[test]
fn compiled_triggers_agree_with_appendix_recurrences() {
    // Two fully independent incremental implementations of the same view:
    // the compiled trigger program (powers app) and the hand-derived
    // Appendix A propagation inside GeneralForm (with B = 0, p = n, T0 = I,
    // T_k = A^k).
    let n = 16;
    let k = 8;
    let a = Matrix::random_spectral(n, 15, 0.8);
    let mut compiled = IncrPowers::new(a.clone(), IterModel::Exponential, k).unwrap();
    let mut appendix = GeneralForm::new(
        a.clone(),
        Matrix::zeros(n, n),
        Matrix::identity(n),
        IterModel::Exponential,
        k,
        Strategy::Incremental,
    )
    .unwrap();
    let mut stream = UpdateStream::new(n, n, 0.01, 17);
    for _ in 0..10 {
        let upd = stream.next_rank_one();
        compiled.apply(&upd).unwrap();
        appendix.apply(&upd).unwrap();
    }
    assert!(compiled.result().approx_eq(appendix.result(), 1e-8));
}

#[test]
fn octave_and_plan_backends_render_compiled_programs() {
    let program = parse_program("Z := X' * X; W := inv(Z); beta := W * X' * Y;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("X", 32, 8);
    cat.declare("Y", 32, 1);
    let tp = compile(&program, &["X"], &cat, &CompileOptions::default()).unwrap();

    let oct = octave::emit_program(&tp);
    assert!(oct.contains("function ["));
    assert!(oct.contains("for sm_i = 1:columns("));

    let pl = plan::render_program(&tp, &CostModel::cubic()).unwrap();
    assert!(pl.contains("S-M steps"));
    assert!(pl.contains("-- total:"));
}

#[test]
fn multi_input_program_with_mixed_updates() {
    // C := A·B + B·A with both inputs dynamic; alternate updates.
    let program = parse_program("C := A * B + B * A;").unwrap();
    let n = 12;
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    cat.declare("B", n, n);
    let a = Matrix::random_spectral(n, 19, 0.8);
    let b = Matrix::random_spectral(n, 20, 0.8);
    let mut reeval =
        ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
    let mut incr = IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.01, 23);
    for i in 0..12 {
        let upd = stream.next_rank_one();
        let target = if i % 3 == 0 { "B" } else { "A" };
        reeval.apply(target, &upd).unwrap();
        incr.apply(target, &upd).unwrap();
    }
    assert!(incr
        .get("C")
        .unwrap()
        .approx_eq(reeval.get("C").unwrap(), 1e-8));
}

#[test]
fn trigger_cost_model_predicts_measured_flops_within_factor() {
    // The symbolic cost model and the kernel counters must agree on the
    // order of magnitude of a trigger firing (they use the same chain
    // ordering).
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let n = 96;
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
    let predicted = tp.cost(&CostModel::cubic()).unwrap();

    let a = Matrix::random_spectral(n, 25, 0.9);
    let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
    let upd = RankOneUpdate::row_update(n, n, 5, 0.01, 29);
    flops::reset();
    incr.apply("A", &upd).unwrap();
    let measured = flops::reset() as f64;
    let ratio = measured / predicted;
    assert!(
        (0.2..5.0).contains(&ratio),
        "cost model off by more than 5x: predicted {predicted}, measured {measured}"
    );
}
