//! Differential GEMM kernel-equivalence suite.
//!
//! Every [`GemmKernel`] variant is an independent implementation of the
//! same product, and every variant changes the floating-point accumulation
//! *grouping* — exactly the kind of rewrite that silently corrupts a hot
//! path. This suite locks the family together:
//!
//! 1. **Oracle differencing** — each kernel vs a textbook `i-j-p` f64
//!    oracle *and* a Kahan-compensated oracle, over proptest-randomized
//!    adversarial shapes (0/1-sized dims, skinny/tall, odd sizes,
//!    non-multiples of the `MR`/`NR` register tiles and `KC`/`MC` cache
//!    blocks), to ≤ 1e-10 relative error.
//! 2. **Exact accounting** — output shapes always `(m, n)`, and the cubic
//!    kernels add exactly `2·m·k·n` to the FLOP counter.
//! 3. **Determinism** — the packed kernel is bit-identical across thread
//!    counts and run-to-run; every kernel is repeatable on identical
//!    inputs.
//! 4. **Rendering equivalence** — the default packed kernel is bitwise
//!    identical whether the register tile runs through the hand-written
//!    AVX2 intrinsics or the portable scalar loop, and whether a skinny
//!    product takes the rank-k fast path or the general nest. Only the
//!    opt-in `packed-fma` kernel may differ, and it is held to the same
//!    1e-10 Kahan budget as everything else.
//!
//! Tests mutate process-wide kernel state (thread budget, default
//! kernel), so each takes the `SUITE` lock — the binary is internally
//! serialized and safe under any `RUST_TEST_THREADS`.

use linview::matrix::gemm::{MR, NR};
use linview::matrix::{
    flops, force_general_nest, force_portable_microkernel, set_default_kernel, set_gemm_threads,
    GemmKernel, Matrix, RANK_K_MAX_K,
};
use proptest::prelude::*;
use std::sync::Mutex;

static SUITE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SUITE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Textbook f64 oracle: `i-j-p`, one sequential sum per output entry.
fn naive_oracle(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Kahan-compensated oracle: the same sums with error compensation, i.e.
/// a strictly more accurate reference that calibrates how much of the
/// 1e-10 budget is kernel reordering vs plain f64 rounding.
fn kahan_oracle(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f64;
            let mut comp = 0.0f64;
            for p in 0..k {
                let y = a.get(i, p) * b.get(p, j) - comp;
                let t = sum + y;
                comp = (t - sum) - y;
                sum = t;
            }
            out.set(i, j, sum);
        }
    }
    out
}

/// Adversarial dimension strategy: degenerate, tiny, register-tile and
/// cache-block straddling, skinny and moderately large sizes.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        2 => 0usize..2,          // empty and scalar dims
        3 => 1usize..10,         // tiny and odd
        2 => (1usize..4).prop_map(|x| x * MR + 1),     // off the MR grid
        2 => (1usize..4).prop_map(|x| x * NR - 1),     // off the NR grid
        2 => 120usize..140,      // straddles MC = 128
        1 => 250usize..260,      // straddles KC = 256
        2 => 30usize..70,        // generic mid-size
    ]
}

fn operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (dim(), dim(), dim(), 0u64..1u64 << 32).prop_map(|(m, k, n, seed)| {
        (
            Matrix::random_uniform(m, k, seed),
            Matrix::random_uniform(k, n, seed.wrapping_add(1)),
        )
    })
}

/// Skinny rank-k operands: outer dims well past the register grid with
/// `k ≤ RANK_K_MAX_K`, i.e. exactly the shapes the dedicated rank-k fast
/// path claims from the packed nest.
fn skinny_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (
        20usize..300,
        1usize..RANK_K_MAX_K + 1,
        20usize..300,
        0u64..1u64 << 32,
    )
        .prop_map(|(m, k, n, seed)| {
            (
                Matrix::random_uniform(m, k, seed),
                Matrix::random_uniform(k, n, seed.wrapping_add(1)),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: every kernel within 1e-10 relative error of both
    /// oracles, with exact output shapes, on adversarial shapes.
    #[test]
    fn every_kernel_matches_both_oracles((a, b) in operands()) {
        let _guard = lock();
        let plain = naive_oracle(&a, &b);
        let kahan = kahan_oracle(&a, &b);
        // Calibration: the two oracles must themselves agree far inside
        // the kernel budget, or the budget measures nothing.
        prop_assert!(plain.rel_diff(&kahan) <= 1e-12);
        for kernel in GemmKernel::ALL {
            let c = a.matmul_with(&b, kernel).unwrap();
            prop_assert_eq!(c.shape(), (a.rows(), b.cols()));
            prop_assert!(
                c.rel_diff(&plain) <= 1e-10,
                "{} vs naive oracle: {:e} on {}x{}x{}",
                kernel, c.rel_diff(&plain), a.rows(), a.cols(), b.cols()
            );
            prop_assert!(
                c.rel_diff(&kahan) <= 1e-10,
                "{} vs kahan oracle: {:e}",
                kernel, c.rel_diff(&kahan)
            );
        }
    }

    /// Property 2: the cubic kernels account exactly 2·m·k·n FLOPs per
    /// product (Strassen asserts its own sub-cubic count in-crate).
    #[test]
    fn cubic_kernels_count_exact_flops((a, b) in operands()) {
        let _guard = lock();
        let expected = (2 * a.rows() * a.cols() * b.cols()) as u64;
        let cubic = [
            GemmKernel::Naive,
            GemmKernel::Blocked,
            GemmKernel::Packed,
            GemmKernel::PackedFma,
        ];
        for kernel in cubic {
            let before = flops::read();
            a.matmul_with(&b, kernel).unwrap();
            prop_assert_eq!(flops::read() - before, expected, "{}", kernel);
        }
    }

    /// Property 4: the fused FMA kernel holds the same 1e-10 budget
    /// against the Kahan oracle on skinny rank-k shapes — the shapes where
    /// the dedicated rank-k path (not the packed nest) renders it.
    #[test]
    fn fma_matches_the_kahan_oracle_on_skinny_shapes((a, b) in skinny_operands()) {
        let _guard = lock();
        let kahan = kahan_oracle(&a, &b);
        let c = a.matmul_with(&b, GemmKernel::PackedFma).unwrap();
        prop_assert!(
            c.rel_diff(&kahan) <= 1e-10,
            "packed-fma vs kahan on {}x{}x{}: {:e}",
            a.rows(), a.cols(), b.cols(), c.rel_diff(&kahan)
        );
    }

    /// Property 5: the rank-k fast path is bit-identical to the general
    /// packed nest on every skinny shape (both replay the ascending-k
    /// single-accumulator chain, so `==` must hold exactly).
    #[test]
    fn rank_k_path_is_bit_identical_to_the_general_nest((a, b) in skinny_operands()) {
        let _guard = lock();
        let fast = a.matmul_packed(&b).unwrap();
        force_general_nest(true);
        let nest = a.matmul_packed(&b).unwrap();
        force_general_nest(false);
        prop_assert_eq!(
            &fast, &nest,
            "rank-k vs nest on {}x{}x{}", a.rows(), a.cols(), b.cols()
        );
    }

    /// Property 3: the packed kernel is bit-identical for every thread
    /// budget, including counts that do not divide the row count.
    #[test]
    fn packed_is_bit_identical_across_thread_counts((a, b) in operands()) {
        let _guard = lock();
        set_gemm_threads(Some(1));
        let serial = a.matmul_packed(&b).unwrap();
        for threads in [2usize, 3, 8] {
            set_gemm_threads(Some(threads));
            let parallel = a.matmul_packed(&b).unwrap();
            prop_assert_eq!(&serial, &parallel, "threads = {}", threads);
        }
        set_gemm_threads(None);
    }
}

/// Explicit regression shapes: the exact boundaries the proptest strategy
/// samples around, pinned so a strategy change can never lose them.
#[test]
fn pinned_adversarial_shapes_match_the_oracle() {
    let _guard = lock();
    let shapes = [
        (0, 0, 0),
        (0, 4, 3),
        (3, 0, 4),
        (4, 3, 0),
        (1, 1, 1),
        (1, 257, 1),         // skinny straddling KC
        (2, 1, 64),          // outer-product-like
        (MR, 5, NR),         // one exact register tile
        (MR - 1, 5, NR - 1), // one ragged register tile
        (MR + 1, 7, NR + 1),
        (6 * MR + 1, 13, 3 * NR + 5), // ragged panel grids
        (129, 257, 17),               // straddles MC and KC together
        (65, 31, 130),
    ];
    for (m, k, n) in shapes {
        let a = Matrix::random_uniform(m, k, (m * 1000 + k) as u64);
        let b = Matrix::random_uniform(k, n, (k * 1000 + n) as u64);
        let oracle = naive_oracle(&a, &b);
        for kernel in GemmKernel::ALL {
            let c = a.matmul_with(&b, kernel).unwrap();
            assert_eq!(c.shape(), (m, n), "{kernel} shape on {m}x{k}x{n}");
            assert!(
                c.rel_diff(&oracle) <= 1e-10,
                "{kernel} on {m}x{k}x{n}: {:e}",
                c.rel_diff(&oracle)
            );
        }
    }
}

/// Run-to-run repeatability: identical inputs give bitwise-identical
/// outputs for every kernel, with the thread budget pinned and unpinned.
#[test]
fn every_kernel_is_repeatable_run_to_run() {
    let _guard = lock();
    let a = Matrix::random_uniform(97, 113, 21);
    let b = Matrix::random_uniform(113, 41, 22);
    for threads in [Some(1), Some(4), None] {
        set_gemm_threads(threads);
        for kernel in GemmKernel::ALL {
            let first = a.matmul_with(&b, kernel).unwrap();
            for _ in 0..3 {
                assert_eq!(
                    first,
                    a.matmul_with(&b, kernel).unwrap(),
                    "{kernel} with threads {threads:?}"
                );
            }
        }
    }
    set_gemm_threads(None);
}

/// The hand-written AVX2 microkernel is an alternate *rendering* of the
/// portable register tile, not an alternate algorithm: the default packed
/// kernel must produce bitwise-identical outputs with intrinsics enabled
/// and with the portable scalar tile forced, across thread budgets.
#[test]
fn intrinsics_rendering_is_bit_identical_to_portable() {
    let _guard = lock();
    let shapes = [
        (MR + 1, 37, NR + 3),
        (97, 113, 41),
        (129, 257, 17),
        (200, RANK_K_MAX_K, 77), // rank-k fast path, both renderings
    ];
    for (m, k, n) in shapes {
        let a = Matrix::random_uniform(m, k, (m * 31 + k) as u64);
        let b = Matrix::random_uniform(k, n, (k * 31 + n) as u64);
        for threads in [Some(1), Some(4)] {
            set_gemm_threads(threads);
            let simd = a.matmul_packed(&b).unwrap();
            force_portable_microkernel(true);
            let portable = a.matmul_packed(&b).unwrap();
            force_portable_microkernel(false);
            assert_eq!(simd, portable, "{m}x{k}x{n} with threads {threads:?}");
        }
    }
    set_gemm_threads(None);
}

/// The dispatcher honors a pinned default kernel end to end (the API side
/// of the `LINVIEW_GEMM` override; the env-var side is covered by the CLI
/// suite in a subprocess).
#[test]
fn try_matmul_follows_the_pinned_default_kernel() {
    let _guard = lock();
    let a = Matrix::random_uniform(50, 50, 31);
    let b = Matrix::random_uniform(50, 50, 32);
    let oracle = naive_oracle(&a, &b);
    for kernel in GemmKernel::ALL {
        set_default_kernel(Some(kernel));
        let c = a.try_matmul(&b).unwrap();
        assert!(c.rel_diff(&oracle) <= 1e-10, "{kernel}");
    }
    set_default_kernel(None);
}

/// Every kernel rejects inner-dimension mismatches identically.
#[test]
fn every_kernel_rejects_dim_mismatch() {
    let _guard = lock();
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 2);
    for kernel in GemmKernel::ALL {
        assert!(a.matmul_with(&b, kernel).is_err(), "{kernel}");
    }
}
