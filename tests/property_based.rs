//! Property-based tests (proptest) over the core invariants:
//!
//! 1. **Delta-rule soundness** — for random expression trees `E` over a
//!    dynamic matrix `A` and a static matrix `M`, the symbolically derived
//!    factored delta satisfies `E(A + ΔA) − E(A) = U Vᵀ` numerically. This
//!    is the central correctness property of the whole paper.
//! 2. **Simplifier soundness** — simplification preserves values.
//! 3. **Matrix algebra** — associativity, transpose laws, chain-order
//!    independence of results.
//! 4. **Batch compaction** — Zipf batch compaction preserves the dense
//!    update.

use linview::expr::delta::{self, DeltaMap};
use linview::expr::{simplify, Catalog, DeltaOptions, Expr};
use linview::matrix::Matrix;
use linview::runtime::{Env, Evaluator, RankOneUpdate, UpdateStream};
use proptest::prelude::*;

const N: usize = 5;

/// Random square-matrix expression trees over Var("A") (dynamic),
/// Var("M") (static), and the identity.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        3 => Just(Expr::var("A")),
        2 => Just(Expr::var("M")),
        1 => Just(Expr::identity(N)),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            inner.clone().prop_map(|a| a.t()),
            (inner, -2.0f64..2.0).prop_map(|(a, s)| a.scale(s)),
        ]
    })
}

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("M", N, N);
    cat
}

fn base_env(seed: u64) -> Env {
    let mut env = Env::new();
    env.bind("A", Matrix::random_uniform(N, N, seed));
    env.bind("M", Matrix::random_uniform(N, N, seed + 1));
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: Δ(E) = E(A + uvᵀ) − E(A), via the factored delta.
    #[test]
    fn delta_rule_matches_finite_difference(
        e in expr_strategy(),
        seed in 0u64..1000,
        row in 0usize..N,
    ) {
        let mut cat = catalog();
        let mut deltas = DeltaMap::new();
        let (du, dv) = delta::declare_input_delta(&mut cat, "A", 1).unwrap();
        deltas.insert("A".to_string(), (du, dv));

        let d = delta::derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();

        let mut env = base_env(seed);
        let upd = RankOneUpdate::row_update(N, N, row, 0.5, seed + 2);
        env.bind("dU_A", upd.u.clone());
        env.bind("dV_A", upd.v.clone());
        let ev = Evaluator::new();

        let before = ev.eval(&e, &env).unwrap();
        // Numeric delta from the factored form (old values of A).
        let numeric_delta = match d {
            linview::expr::Delta::Zero => Matrix::zeros(before.rows(), before.cols()),
            linview::expr::Delta::Factored { u, v } => {
                let um = ev.eval(&u, &env).unwrap();
                let vm = ev.eval(&v, &env).unwrap();
                um.try_matmul(&vm.transpose()).unwrap()
            }
        };
        // Finite difference.
        let mut a_new = env.get("A").unwrap().clone();
        upd.apply_to(&mut a_new).unwrap();
        env.bind("A", a_new);
        let after = ev.eval(&e, &env).unwrap();
        let expected = after.try_sub(&before).unwrap();
        prop_assert!(
            numeric_delta.max_abs_diff(&expected) <= 1e-6 * (1.0 + expected.max_abs()),
            "delta mismatch for {e}: |Δ - finite difference| = {}",
            numeric_delta.max_abs_diff(&expected)
        );
    }

    /// Property 1b: the unfactored (ablation) delta is also sound.
    #[test]
    fn unfactored_delta_is_also_sound(
        e in expr_strategy(),
        seed in 0u64..500,
    ) {
        let mut cat = catalog();
        let mut deltas = DeltaMap::new();
        let (du, dv) = delta::declare_input_delta(&mut cat, "A", 1).unwrap();
        deltas.insert("A".to_string(), (du, dv));
        let opts = DeltaOptions { factor_common: false };
        let d = delta::derive(&e, &cat, &deltas, &opts).unwrap();

        let mut env = base_env(seed);
        let upd = RankOneUpdate::dense(N, N, 0.3, seed + 5);
        env.bind("dU_A", upd.u.clone());
        env.bind("dV_A", upd.v.clone());
        let ev = Evaluator::new();
        let before = ev.eval(&e, &env).unwrap();
        let numeric_delta = match d {
            linview::expr::Delta::Zero => Matrix::zeros(before.rows(), before.cols()),
            linview::expr::Delta::Factored { u, v } => {
                let um = ev.eval(&u, &env).unwrap();
                let vm = ev.eval(&v, &env).unwrap();
                um.try_matmul(&vm.transpose()).unwrap()
            }
        };
        let mut a_new = env.get("A").unwrap().clone();
        upd.apply_to(&mut a_new).unwrap();
        env.bind("A", a_new);
        let after = ev.eval(&e, &env).unwrap();
        let expected = after.try_sub(&before).unwrap();
        prop_assert!(numeric_delta.max_abs_diff(&expected) <= 1e-6 * (1.0 + expected.max_abs()));
    }

    /// Property 1c: the §4.4 multi-update rule — the delta derived for
    /// SIMULTANEOUS updates to A and M equals the finite difference of
    /// applying both at once (Example 4.5 generalized to random trees).
    #[test]
    fn joint_delta_matches_simultaneous_finite_difference(
        e in expr_strategy(),
        seed in 0u64..500,
    ) {
        let mut cat = catalog();
        let mut deltas = DeltaMap::new();
        for name in ["A", "M"] {
            let (du, dv) = delta::declare_input_delta(&mut cat, name, 1).unwrap();
            deltas.insert(name.to_string(), (du, dv));
        }
        let d = delta::derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();

        let mut env = base_env(seed);
        let upd_a = RankOneUpdate::dense(N, N, 0.3, seed + 11);
        let upd_m = RankOneUpdate::dense(N, N, 0.3, seed + 13);
        env.bind("dU_A", upd_a.u.clone());
        env.bind("dV_A", upd_a.v.clone());
        env.bind("dU_M", upd_m.u.clone());
        env.bind("dV_M", upd_m.v.clone());
        let ev = Evaluator::new();
        let before = ev.eval(&e, &env).unwrap();
        let numeric_delta = match d {
            linview::expr::Delta::Zero => Matrix::zeros(before.rows(), before.cols()),
            linview::expr::Delta::Factored { u, v } => {
                let um = ev.eval(&u, &env).unwrap();
                let vm = ev.eval(&v, &env).unwrap();
                um.try_matmul(&vm.transpose()).unwrap()
            }
        };
        // Apply BOTH updates, then re-evaluate.
        let mut a_new = env.get("A").unwrap().clone();
        upd_a.apply_to(&mut a_new).unwrap();
        env.bind("A", a_new);
        let mut m_new = env.get("M").unwrap().clone();
        upd_m.apply_to(&mut m_new).unwrap();
        env.bind("M", m_new);
        let after = ev.eval(&e, &env).unwrap();
        let expected = after.try_sub(&before).unwrap();
        prop_assert!(
            numeric_delta.max_abs_diff(&expected) <= 1e-6 * (1.0 + expected.max_abs()),
            "joint delta mismatch for {e}"
        );
    }

    /// Property 2: simplification preserves expression values.
    #[test]
    fn simplify_preserves_value(e in expr_strategy(), seed in 0u64..500) {
        let cat = catalog();
        let s = simplify::simplify(&e, &cat).unwrap();
        let env = base_env(seed);
        let ev = Evaluator::new();
        let orig = ev.eval(&e, &env).unwrap();
        let simp = ev.eval(&s, &env).unwrap();
        prop_assert!(orig.max_abs_diff(&simp) <= 1e-9 * (1.0 + orig.max_abs()));
        // Shape inference agrees too.
        prop_assert_eq!(e.dim(&cat).unwrap(), s.dim(&cat).unwrap());
    }

    /// Property 3a: matmul associativity (up to fp error).
    #[test]
    fn matmul_is_associative(sa in 0u64..200, sb in 0u64..200, sc in 0u64..200) {
        let a = Matrix::random_uniform(4, 6, sa);
        let b = Matrix::random_uniform(6, 3, sb);
        let c = Matrix::random_uniform(3, 5, sc);
        let left = a.try_matmul(&b).unwrap().try_matmul(&c).unwrap();
        let right = a.try_matmul(&b.try_matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    /// Property 3b: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_products(sa in 0u64..200, sb in 0u64..200) {
        let a = Matrix::random_uniform(4, 6, sa);
        let b = Matrix::random_uniform(6, 3, sb);
        let lhs = a.try_matmul(&b).unwrap().transpose();
        let rhs = b.transpose().try_matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    /// Property 3c: chain-order optimization never changes results.
    #[test]
    fn chain_order_is_value_preserving(
        seed in 0u64..300,
        k in 1usize..4,
    ) {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(N, N, seed));
        env.bind("U", Matrix::random_uniform(N, k, seed + 1));
        env.bind("V", Matrix::random_uniform(N, k, seed + 2));
        let e = Expr::var("U") * Expr::var("V").t() * Expr::var("A") * Expr::var("A");
        let opt = Evaluator::with_chain_opt(true).eval(&e, &env).unwrap();
        let naive = Evaluator::with_chain_opt(false).eval(&e, &env).unwrap();
        prop_assert!(opt.max_abs_diff(&naive) <= 1e-8 * (1.0 + naive.max_abs()));
    }

    /// Property 4: Zipf batch compaction preserves the dense update.
    #[test]
    fn batch_compaction_is_lossless(
        seed in 0u64..300,
        batch in 1usize..20,
        z in 0.0f64..4.0,
    ) {
        let mut stream = UpdateStream::new(10, 8, 0.1, seed);
        let b = stream.next_batch_zipf(batch, z).unwrap();
        // compact_rows ran inside next_batch_zipf; rank ≤ batch and the
        // dense form must round-trip through another compaction.
        prop_assert!(b.rank() <= batch);
        let again = b.compact_rows().unwrap();
        prop_assert!(
            b.to_dense().unwrap().max_abs_diff(&again.to_dense().unwrap()) < 1e-12
        );
    }

    /// End-to-end trigger property: a random two-statement straight-line
    /// program compiled by Algorithm 1 and fired through the runtime must
    /// track full re-evaluation. This composes the delta rules, the
    /// simplifier, block stacking, chain ordering, and the executor.
    #[test]
    fn compiled_triggers_track_reevaluation_on_random_programs(
        e1 in expr_strategy(),
        e2 in expr_strategy(),
        seed in 0u64..300,
        row in 0usize..N,
    ) {
        use linview::compiler::{compile, CompileOptions, Program};
        use linview::runtime::{IncrementalView, ReevalView};

        let cat = catalog();
        // B := e1; C := e2[A := B]? Keep it simple: C references B and A.
        let mut program = Program::new();
        program.assign("B", e1);
        program.assign("C", e2 * Expr::var("B"));
        // Skip shape-inconsistent compositions (all square here, so none).
        let a = Matrix::random_uniform(N, N, seed).scale(0.5);
        let m = Matrix::random_uniform(N, N, seed + 1).scale(0.5);
        let inputs = [("A", a), ("M", m)];
        let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
        prop_assert!(tp.triggers.len() == 1);

        let mut reeval = ReevalView::build(&program, &inputs, &cat).unwrap();
        let mut incr = IncrementalView::build(&program, &inputs, &cat).unwrap();
        for i in 0..3u64 {
            let upd = RankOneUpdate::row_update(N, N, (row + i as usize) % N, 0.1, seed + 2 + i);
            reeval.apply("A", &upd).unwrap();
            incr.apply("A", &upd).unwrap();
        }
        let r = reeval.get("C").unwrap();
        let x = incr.get("C").unwrap();
        prop_assert!(
            x.max_abs_diff(r) <= 1e-6 * (1.0 + r.max_abs()),
            "trigger diverged: {}",
            x.max_abs_diff(r)
        );
    }

    /// LU inverse is a true inverse on well-conditioned inputs.
    #[test]
    fn lu_inverse_roundtrip(seed in 0u64..200) {
        let a = Matrix::random_diag_dominant(8, seed);
        let inv = a.inverse().unwrap();
        let prod = a.try_matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(8)) < 1e-8);
    }

    /// Cholesky rank-1 updates track refactorization for arbitrary update
    /// vectors (SPD is preserved by positive-semidefinite additions).
    #[test]
    fn cholesky_update_matches_refactorization(seed in 0u64..200, scale in 0.1f64..2.0) {
        use linview::matrix::{random_spd, Cholesky};
        let a = random_spd(7, seed);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let v = Matrix::random_col(7, seed + 1).scale(scale);
        ch.update(&v).unwrap();
        let mut a_new = a;
        a_new.add_assign_from(&Matrix::outer(&v, &v).unwrap()).unwrap();
        let direct = Cholesky::factorize(&a_new).unwrap();
        prop_assert!(ch.factor().max_abs_diff(direct.factor()) < 1e-7);
    }

    /// QR reconstructs and solves least squares consistently with the
    /// normal equations on random tall matrices.
    #[test]
    fn qr_least_squares_matches_normal_equations(seed in 0u64..200) {
        use linview::matrix::Qr;
        let x = Matrix::random_uniform(12, 4, seed);
        let y = Matrix::random_col(12, seed + 1);
        let qr = match Qr::factorize(&x) {
            Ok(qr) => qr,
            Err(_) => return Ok(()), // rank-deficient draw: skip
        };
        prop_assert!(qr.reconstruct().max_abs_diff(&x) < 1e-9);
        let beta_qr = qr.solve_least_squares(&y).unwrap();
        let xtx = x.transpose().try_matmul(&x).unwrap();
        let beta_ne = xtx.inverse().unwrap()
            .try_matmul(&x.transpose().try_matmul(&y).unwrap()).unwrap();
        prop_assert!(beta_qr.max_abs_diff(&beta_ne) < 1e-6);
    }

    /// Strassen multiplication agrees with the cubic kernel on arbitrary
    /// (including odd) sizes.
    #[test]
    fn strassen_matches_cubic(seed in 0u64..50, n in 60usize..100) {
        let a = Matrix::random_uniform(n, n, seed).scale(0.5);
        let b = Matrix::random_uniform(n, n, seed + 1).scale(0.5);
        let fast = a.matmul_strassen(&b).unwrap();
        let slow = a.matmul_serial(&b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow) <= 1e-9 * (1.0 + slow.max_abs()));
    }

    /// Checkpoint save/restore is lossless for arbitrary environments.
    #[test]
    fn checkpoint_roundtrip_is_lossless(seed in 0u64..200, count in 1usize..6) {
        use linview::runtime::checkpoint::{restore, save};
        let mut env = Env::new();
        for i in 0..count {
            env.bind(
                format!("m{i}"),
                Matrix::random_uniform(1 + (seed as usize + i) % 7, 1 + i, seed + i as u64),
            );
        }
        let back = restore(save(&env).unwrap()).unwrap();
        prop_assert_eq!(back.len(), env.len());
        for (name, m) in env.iter() {
            prop_assert_eq!(back.get(name).unwrap(), m);
        }
    }

    /// Sherman–Morrison agrees with direct inversion for random rank-1
    /// updates of a well-conditioned matrix.
    #[test]
    fn sherman_morrison_matches_direct(seed in 0u64..200) {
        let e = Matrix::random_diag_dominant(8, seed);
        let w = e.inverse().unwrap();
        let p = Matrix::random_uniform(8, 1, seed + 1).scale(0.2);
        let q = Matrix::random_uniform(8, 1, seed + 2).scale(0.2);
        let (u, v) = linview::runtime::sherman_morrison(&w, &p, &q).unwrap();
        let mut w_new = w;
        w_new.add_assign_from(&u.try_matmul(&v.transpose()).unwrap()).unwrap();
        let mut e_new = e;
        e_new.add_assign_from(&p.try_matmul(&q.transpose()).unwrap()).unwrap();
        let direct = e_new.inverse().unwrap();
        prop_assert!(w_new.max_abs_diff(&direct) < 1e-7);
    }
}
