//! Golden tests: the generated trigger text for the paper's Example 4.6
//! and the Octave backend output are pinned, so any change to the delta
//! rules, factoring, or printers is caught explicitly.

use linview::compiler::codegen::{numpy, octave};
use linview::compiler::{compile, CompileOptions};
use linview::prelude::*;

fn a4_trigger_program() -> TriggerProgram {
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", 8, 8);
    compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap()
}

#[test]
fn example_4_6_trigger_text_is_pinned() {
    let tp = a4_trigger_program();
    let expected = "\
ON UPDATE A BY (dU_A, dV_A):
  U_B := [ dU_A | A dU_A + dU_A (dV_A' dU_A) ];
  V_B := [ A' dV_A | dV_A ];
  U_C := [ U_B | B U_B + U_B (V_B' U_B) ];
  V_C := [ B' V_B | V_B ];
  A += dU_A dV_A';
  B += U_B V_B';
  C += U_C V_C';
";
    assert_eq!(tp.to_string(), expected);
}

#[test]
fn octave_output_is_pinned() {
    let tp = a4_trigger_program();
    let expected = "\
function [A, B, C] = on_update_A(A, B, C, dU_A, dV_A)
  U_B = [dU_A, A * dU_A + dU_A * (dV_A' * dU_A)];
  V_B = [A' * dV_A, dV_A];
  U_C = [U_B, B * U_B + U_B * (V_B' * U_B)];
  V_C = [B' * V_B, V_B];
  A = A + dU_A * dV_A';
  B = B + U_B * V_B';
  C = C + U_C * V_C';
end
";
    assert_eq!(octave::emit_trigger(&tp.triggers[0]), expected);
}

#[test]
fn numpy_output_is_pinned() {
    let tp = a4_trigger_program();
    let expected = "\
def on_update_A(A, B, C, dU_A, dV_A):
    \"\"\"Maintains A, B, C for the factored update dA = dU_A @ dV_A.T.\"\"\"
    U_B = np.hstack([dU_A, A @ dU_A + dU_A @ (dV_A.T @ dU_A)])
    V_B = np.hstack([A.T @ dV_A, dV_A])
    U_C = np.hstack([U_B, B @ U_B + U_B @ (V_B.T @ U_B)])
    V_C = np.hstack([B.T @ V_B, V_B])
    A += dU_A @ dV_A.T
    B += U_B @ V_B.T
    C += U_C @ V_C.T
    return A, B, C
";
    assert_eq!(numpy::emit_trigger(&tp.triggers[0]), expected);
}

#[test]
fn numpy_and_octave_emit_the_same_trigger_structure() {
    // Backends must agree on statement order and view coverage: same
    // number of assignments, same maintained views, modulo surface syntax.
    let program = parse_program("Z := X' * X; W := inv(Z); beta := W * X' * Y;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("X", 16, 4);
    cat.declare("Y", 16, 1);
    let tp = compile(&program, &["X"], &cat, &CompileOptions::default()).unwrap();
    let py = numpy::emit_trigger(&tp.triggers[0]);
    let oct = octave::emit_trigger(&tp.triggers[0]);
    for view in ["Z", "W", "beta"] {
        assert!(py.contains(&format!("{view} += ")), "numpy misses {view}");
        assert!(
            oct.contains(&format!("{view} = {view} + ")),
            "octave misses {view}"
        );
    }
    // Sherman–Morrison loop present in both.
    assert!(py.contains("for sm_i in range("));
    assert!(oct.contains("for sm_i = 1:columns("));
}

#[test]
fn ols_trigger_contains_sherman_morrison_block() {
    let program = parse_program("Z := X' * X; W := inv(Z); beta := W * X' * Y;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("X", 16, 4);
    cat.declare("Y", 16, 1);
    let tp = compile(&program, &["X"], &cat, &CompileOptions::default()).unwrap();
    let text = tp.to_string();
    assert!(text.contains("ON UPDATE X BY (dU_X, dV_X):"));
    assert!(text.contains("(U_W, V_W) := sherman_morrison(W, P_W, Q_W);"));
    assert!(text.contains("W += U_W V_W';"));
    assert!(text.contains("beta += U_beta V_beta';"));
}
