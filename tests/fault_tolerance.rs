//! Kill-and-recover conformance suite.
//!
//! The fault-tolerance contract (checkpoint every `N` firings + a delta
//! write-ahead log, §6 deployment hardening): an engine whose worker dies
//! mid-stream and is recovered from its last checkpoint must end
//! **bit-identical** to an engine that was never disturbed — same mirror
//! views, same worker-owned partitions — and the extra traffic the crash
//! cost must be *exactly* the [`RecoveryStats`] overhead:
//!
//! ```text
//! disturbed.comm == undisturbed.comm + aborted + reinstall + replay
//! ```
//!
//! Every shipped app workload (matrix powers, sums of powers, OLS on a
//! rectangular 4×1 grid, bounded-hop reachability, PageRank steps) runs
//! the drill on both frame backends: `ThreadedBackend` (a worker thread is
//! killed) and `SocketBackend` (a self-hosted socket worker is killed and
//! a fresh empty process takes over its address). Streams are Zipf-skewed
//! and multi-input — round-robined over *every* dynamic input — so the
//! replay log carries joint shapes, not just a single hot input.

use linview::apps::powers::powers_program;
use linview::apps::sums::sums_program;
use linview::dist::{spawn_local_grid, SocketConfig, WorkerServer};
use linview::prelude::*;
use linview::runtime::{
    ExecBackend, FlushPolicy, MaintenanceEngine, RuntimeError, SocketBackend, ThreadedBackend,
};

const SEED: u64 = 90210;
const ZIPF_S: f64 = 1.2;

struct Case {
    name: &'static str,
    program: Program,
    inputs: Vec<(&'static str, Matrix)>,
    grid: (usize, usize),
    scale: f64,
    events: usize,
    kill_at: usize,
    batch: usize,
}

fn chain_adjacency(n: usize, damping: f64) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n - 1 {
        a.set(i, i + 1, damping);
    }
    a.set(n - 1, 0, damping);
    a
}

fn cases() -> Vec<Case> {
    let n = 12;
    let mut out = Vec::new();

    let (program, _) = powers_program(IterModel::Exponential, 4);
    out.push(Case {
        name: "powers",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 7, 0.8))],
        grid: (2, 2),
        scale: 0.01,
        events: 16,
        kill_at: 7,
        batch: 3,
    });

    let (program, _) = sums_program(IterModel::Linear, 4, n);
    out.push(Case {
        name: "sums",
        program,
        inputs: vec![("A", Matrix::random_spectral(n, 8, 0.8))],
        grid: (2, 2),
        scale: 0.01,
        events: 16,
        kill_at: 10,
        batch: 2,
    });

    // OLS exercises the rectangular grid plus a *multi-input* stream: the
    // crash lands between X and Y firings, so replay interleaves inputs.
    out.push(Case {
        name: "ols",
        program: parse_program("beta := inv(X' * X) * X' * Y;").unwrap(),
        inputs: vec![
            ("X", Matrix::random_diag_dominant(n, 9)),
            ("Y", Matrix::random_col(n, 10)),
        ],
        grid: (4, 1),
        scale: 0.001,
        events: 14,
        kill_at: 7,
        batch: 3,
    });

    let (sums, final_sum) = sums_program(IterModel::Exponential, 4, n);
    let mut program = Program::new();
    for stmt in sums.statements() {
        program.assign(stmt.target.clone(), stmt.expr.clone());
    }
    program.assign("R", Expr::var("A") * Expr::var(final_sum));
    out.push(Case {
        name: "reach",
        program,
        inputs: vec![("A", chain_adjacency(n, 0.5))],
        grid: (2, 2),
        scale: 0.1,
        events: 16,
        kill_at: 5,
        batch: 3,
    });

    let m = Matrix::random_stochastic(n, 11).transpose().scale(0.85);
    let r0 = Matrix::filled(n, 1, 1.0 / n as f64);
    out.push(Case {
        name: "pagerank-step",
        program: parse_program("R1 := M * R0; R2 := M * R1; R3 := M * R2;").unwrap(),
        inputs: vec![("M", m), ("R0", r0)],
        grid: (3, 1),
        scale: 0.005,
        events: 16,
        kill_at: 9,
        batch: 2,
    });

    out
}

fn catalog(case: &Case) -> Catalog {
    let mut cat = Catalog::new();
    for (name, m) in &case.inputs {
        cat.declare(*name, m.rows(), m.cols());
    }
    cat
}

/// Inputs plus the normalized program's targets (inverse hoisting may
/// introduce auxiliary views) — everything a backend materializes.
fn view_names(case: &Case) -> Vec<String> {
    let dynamic: Vec<&str> = case.inputs.iter().map(|(n, _)| *n).collect();
    let normalized = case.program.hoist_inverses(&dynamic);
    let mut views: Vec<String> = dynamic.iter().map(|s| s.to_string()).collect();
    views.extend(normalized.statements().iter().map(|s| s.target.clone()));
    views
}

fn build_engine<B: ExecBackend>(backend: B, case: &Case) -> MaintenanceEngine<B> {
    let inputs: Vec<(&str, Matrix)> = case
        .inputs
        .iter()
        .map(|(name, m)| (*name, m.clone()))
        .collect();
    let view = IncrementalView::build_on(backend, &case.program, &inputs, &catalog(case))
        .unwrap_or_else(|e| panic!("{}: build failed: {e}", case.name));
    MaintenanceEngine::new(view, FlushPolicy::Count(case.batch))
}

/// Round-robins a Zipf-skewed multi-input stream through the engine,
/// running the crash-recovery protocol whenever a firing fails: recover
/// from the checkpoint, then re-flush only the *failed* input so batch
/// boundaries (and therefore every later frame) stay identical to an
/// undisturbed run.
fn drive<B: ExecBackend>(
    engine: &mut MaintenanceEngine<B>,
    case: &Case,
    on_event: &mut dyn FnMut(usize, &mut MaintenanceEngine<B>),
) {
    let mut streams: Vec<UpdateStream> = case
        .inputs
        .iter()
        .map(|(_, m)| UpdateStream::new(m.rows(), m.cols(), case.scale, SEED))
        .collect();
    for i in 0..case.events {
        on_event(i, engine);
        let k = i % case.inputs.len();
        let input = case.inputs[k].0;
        let upd = streams[k].next_rank_one_zipf(ZIPF_S);
        if let Err(e) = engine.ingest(input, upd) {
            assert!(
                matches!(e, RuntimeError::Transport(_)),
                "{}: crash surfaced as {e:?}, not a transport error",
                case.name
            );
            engine
                .recover()
                .unwrap_or_else(|e| panic!("{}: recovery after event {i} failed: {e}", case.name));
            engine
                .flush(input)
                .unwrap_or_else(|e| panic!("{}: post-recovery retry failed: {e}", case.name));
        }
    }
    if engine.flush_all().is_err() {
        engine.recover().unwrap();
        engine.flush_all().unwrap();
    }
}

/// The shared oracle: a disturbed engine must match the undisturbed one
/// (and the single-node reference) bit for bit, with its extra traffic
/// exactly equal to the recovery overhead.
fn assert_recovered<B: ExecBackend>(
    case: &Case,
    disturbed: &MaintenanceEngine<B>,
    undisturbed: &MaintenanceEngine<B>,
    reference: &MaintenanceEngine,
) {
    let rec = disturbed.recovery_stats();
    assert!(
        rec.recoveries >= 1,
        "{}: the injected crash never forced a recovery",
        case.name
    );
    assert!(rec.checkpoints >= 1 && rec.logged_firings >= 1);
    for view in view_names(case) {
        let want = undisturbed.get(&view).unwrap();
        assert_eq!(
            reference.get(&view).unwrap(),
            want,
            "{}: undisturbed {view} diverged from the local reference",
            case.name
        );
        assert_eq!(
            disturbed.get(&view).unwrap(),
            want,
            "{}: view {view} is not bit-identical after recovery",
            case.name
        );
    }
    let d = disturbed.comm();
    let u = undisturbed.comm();
    assert_eq!(
        d.total_bytes(),
        u.total_bytes() + rec.overhead_bytes(),
        "{}: recovered byte traffic does not reconcile (overhead {:?})",
        case.name,
        rec
    );
    assert_eq!(
        d.total_msgs(),
        u.total_msgs() + rec.overhead_msgs(),
        "{}: recovered message count does not reconcile",
        case.name
    );
}

/// Worker-owned partitions must equal the mirror exactly after recovery.
fn assert_partitions_match<T: linview::dist::Transport>(
    case: &Case,
    engine: &MaintenanceEngine<linview::runtime::FrameBackend<T>>,
) {
    for view in view_names(case) {
        assert_eq!(
            &engine.view().backend().view(&view).unwrap(),
            engine.get(&view).unwrap(),
            "{}: worker-owned blocks of {view} diverged from the mirror",
            case.name
        );
    }
}

#[test]
fn kill_and_recover_is_bit_identical_on_threaded_across_apps() {
    for case in cases() {
        let mut reference = build_engine(linview::runtime::LocalBackend, &case);
        drive(&mut reference, &case, &mut |_, _| {});

        let undisturbed_grid = Cluster::with_grid(case.grid.0, case.grid.1);
        let mut undisturbed = build_engine(ThreadedBackend::with_cluster(undisturbed_grid), &case);
        drive(&mut undisturbed, &case, &mut |_, _| {});

        let disturbed_grid = Cluster::with_grid(case.grid.0, case.grid.1);
        let mut disturbed = build_engine(ThreadedBackend::with_cluster(disturbed_grid), &case);
        disturbed.enable_checkpointing(2).unwrap();
        let victim = case.grid.0 * case.grid.1 - 1;
        drive(&mut disturbed, &case, &mut |i, engine| {
            if i == case.kill_at {
                engine
                    .view_mut()
                    .backend_mut()
                    .pool_mut()
                    .kill_worker(victim);
            }
        });

        assert_recovered(&case, &disturbed, &undisturbed, &reference);
        assert_partitions_match(&case, &disturbed);
    }
}

#[test]
fn kill_and_recover_is_bit_identical_on_sockets_across_apps() {
    for case in cases() {
        let mut reference = build_engine(linview::runtime::LocalBackend, &case);
        drive(&mut reference, &case, &mut |_, _| {});

        let (gr, gc) = case.grid;
        let tag_u = format!("ft-{}-u", case.name);
        let (_servers_u, addrs_u) = spawn_local_grid(gr, gc, &tag_u).unwrap();
        let backend_u = SocketBackend::connect_with_cluster(
            Cluster::with_grid(gr, gc),
            addrs_u,
            SocketConfig::default(),
        )
        .unwrap();
        let mut undisturbed = build_engine(backend_u, &case);
        drive(&mut undisturbed, &case, &mut |_, _| {});

        let tag_d = format!("ft-{}-d", case.name);
        let (mut servers, addrs_d) = spawn_local_grid(gr, gc, &tag_d).unwrap();
        let backend_d = SocketBackend::connect_with_cluster(
            Cluster::with_grid(gr, gc),
            addrs_d,
            SocketConfig::default(),
        )
        .unwrap();
        let mut disturbed = build_engine(backend_d, &case);
        disturbed.enable_checkpointing(2).unwrap();
        // SIGKILL-equivalent: the victim's connection is reset mid-protocol
        // and a *fresh, empty* worker takes over the same socket address —
        // recovery must revive-reconnect and reinstall it from scratch.
        drive(&mut disturbed, &case, &mut |i, _| {
            if i == case.kill_at {
                let victim = servers.len() - 1;
                let old = servers.remove(victim);
                let addr = old.addr().clone();
                old.kill();
                servers.push(WorkerServer::spawn(&addr).unwrap());
            }
        });

        assert_recovered(&case, &disturbed, &undisturbed, &reference);
        assert_partitions_match(&case, &disturbed);
    }
}

/// A crash *between* checkpoints replays only the firings logged since the
/// last snapshot — the log is rolled at the cadence, so the replayed rank
/// stays bounded no matter how long the stream ran before the crash.
#[test]
fn replay_is_bounded_by_the_checkpoint_cadence() {
    let cases = cases();
    let case = &cases[0]; // powers
    let grid = Cluster::with_grid(2, 2);
    let mut engine = build_engine(ThreadedBackend::with_cluster(grid), case);
    engine.enable_checkpointing(2).unwrap();
    drive(&mut engine, case, &mut |i, engine| {
        if i == case.kill_at {
            engine.view_mut().backend_mut().pool_mut().kill_worker(0);
        }
    });
    let rec = engine.recovery_stats();
    assert_eq!(rec.recoveries, 1);
    assert!(
        rec.replayed_firings < 2,
        "cadence 2 should leave at most 1 logged firing to replay, got {}",
        rec.replayed_firings
    );
    assert!(rec.checkpoints > 1, "the cadence never rolled the snapshot");
}
