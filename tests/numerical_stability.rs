//! Long-stream numerical-drift tests: incremental maintenance accumulates
//! floating-point error relative to re-evaluation; these tests bound that
//! drift over hundreds of updates on preconditioned inputs (mirroring the
//! paper's "preconditioned appropriately for numerical stability").

use linview::apps::general::{GeneralForm, Strategy};
use linview::apps::ols::{CholOls, IncrOls, ReevalOls};
use linview::apps::powers::{IncrPowers, ReevalPowers};
use linview::prelude::*;

#[test]
fn powers_drift_stays_bounded_over_200_updates() {
    let n = 20;
    let k = 16;
    let a = Matrix::random_spectral(n, 3, 0.7);
    let mut reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, k).unwrap();
    let mut incr = IncrPowers::new(a, IterModel::Exponential, k).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.005, 5);
    for i in 0..200 {
        let upd = stream.next_rank_one();
        reeval.apply(&upd).unwrap();
        incr.apply(&upd).unwrap();
        if i % 50 == 49 {
            let drift = incr.result().rel_diff(reeval.result());
            assert!(drift < 1e-6, "drift {drift} at update {i}");
        }
    }
}

#[test]
fn ols_sherman_morrison_drift_over_150_updates() {
    let n = 16;
    let x = Matrix::random_diag_dominant(n, 7);
    let y = Matrix::random_col(n, 8);
    let mut reeval = ReevalOls::new(x.clone(), y.clone()).unwrap();
    let mut incr = IncrOls::new(x, y).unwrap();
    let mut stream = UpdateStream::new(n, n, 0.0005, 9);
    for _ in 0..150 {
        let upd = stream.next_rank_one();
        reeval.apply(&upd).unwrap();
        incr.apply(&upd).unwrap();
    }
    let drift = incr.beta().rel_diff(reeval.beta());
    assert!(drift < 1e-5, "OLS drift {drift}");
}

#[test]
fn general_form_strategies_stay_mutually_consistent() {
    let n = 14;
    let p = 2;
    let k = 8;
    let a = Matrix::random_spectral(n, 11, 0.7);
    let b = Matrix::random_uniform(n, p, 12);
    let t0 = Matrix::random_uniform(n, p, 13);
    let mut views: Vec<GeneralForm> = [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid]
        .into_iter()
        .map(|s| {
            GeneralForm::new(a.clone(), b.clone(), t0.clone(), IterModel::Skip(2), k, s).unwrap()
        })
        .collect();
    let mut stream = UpdateStream::new(n, n, 0.005, 15);
    for _ in 0..100 {
        let upd = stream.next_rank_one();
        for v in &mut views {
            v.apply(&upd).unwrap();
        }
    }
    let reference = views[0].result().clone();
    for v in &views[1..] {
        assert!(v.result().rel_diff(&reference) < 1e-6);
    }
}

#[test]
fn cholesky_ols_drifts_no_worse_than_sherman_morrison() {
    // The CholOls extension exists for numerical robustness: over a long
    // stream it must stay at least as close to the ground truth (a fresh
    // direct solve) as the inverse-maintaining trigger.
    let n = 16;
    let x = Matrix::random_diag_dominant(n, 23);
    let y = Matrix::random_col(n, 24);
    let mut sm = IncrOls::new(x.clone(), y.clone()).unwrap();
    let mut ch = CholOls::new(x.clone(), y.clone()).unwrap();
    let mut x_ref = x;
    let mut stream = UpdateStream::new(n, n, 0.0005, 25);
    for _ in 0..300 {
        let upd = stream.next_rank_one();
        sm.apply(&upd).unwrap();
        ch.apply(&upd).unwrap();
        upd.apply_to(&mut x_ref).unwrap();
    }
    // Ground truth by direct solve from the final X.
    let z = x_ref.transpose().try_matmul(&x_ref).unwrap();
    let truth = z
        .inverse()
        .unwrap()
        .try_matmul(&x_ref.transpose().try_matmul(&y).unwrap())
        .unwrap();
    let sm_err = sm.beta().rel_diff(&truth);
    let ch_err = ch.beta().rel_diff(&truth);
    assert!(ch_err < 1e-6, "CholOls drift {ch_err}");
    assert!(
        ch_err <= sm_err * 10.0,
        "CholOls ({ch_err}) catastrophically worse than S-M ({sm_err})"
    );
}

#[test]
fn recompression_does_not_add_drift_over_long_streams() {
    // The SVD recompression pass must be numerically transparent: a view
    // maintained with it enabled tracks the plain incremental view to the
    // same tolerance over hundreds of updates.
    let n = 24;
    let program = parse_program("B := A * A; C := B * B;").unwrap();
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 29, 0.7);
    let mut plain = IncrementalView::build(&program, &[("A", a.clone())], &cat).unwrap();
    let mut compressed = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
    compressed.set_exec_options(ExecOptions {
        recompress_tol: Some(1e-12),
        ..ExecOptions::default()
    });
    let mut stream = UpdateStream::new(n, n, 0.005, 31);
    for _ in 0..100 {
        let batch = stream.next_batch_zipf(4, 2.0).unwrap();
        plain.apply_batch("A", &batch).unwrap();
        compressed.apply_batch("A", &batch).unwrap();
    }
    let drift = compressed
        .get("C")
        .unwrap()
        .rel_diff(plain.get("C").unwrap());
    assert!(drift < 1e-7, "recompression drift {drift}");
}

#[test]
fn convergent_iteration_horizon_is_stable_under_noise() {
    // Tiny updates must not cause the adaptive horizon to oscillate wildly
    // (a brittle stopping rule would thrash between extension/truncation).
    let n = 20;
    let m = Matrix::random_stochastic(n, 33).transpose();
    let a = m.scale(0.85);
    let b = Matrix::filled(n, 1, 0.15 / n as f64);
    let mut t0 = Matrix::zeros(n, 1);
    t0.set(0, 0, 1.0);
    let mut it = ConvergentIteration::new(a, b, t0, 1e-8, 10_000).unwrap();
    let k0 = it.iterations() as i64;
    let mut stream = UpdateStream::new(n, n, 1e-6, 35);
    for _ in 0..20 {
        it.apply(&stream.next_rank_one()).unwrap();
        let k = it.iterations() as i64;
        assert!((k - k0).abs() <= 2, "horizon jumped {k0} -> {k}");
    }
}

#[test]
fn zero_magnitude_update_is_identity() {
    // A zero delta must leave every view bit-for-bit unchanged up to the
    // additive identity (x + 0 = x exactly in IEEE).
    let n = 12;
    let a = Matrix::random_spectral(n, 17, 0.8);
    let mut incr = IncrPowers::new(a, IterModel::Exponential, 8).unwrap();
    let before = incr.result().clone();
    let zero = RankOneUpdate {
        u: Matrix::zeros(n, 1),
        v: Matrix::zeros(n, 1),
    };
    incr.apply(&zero).unwrap();
    assert_eq!(incr.result(), &before);
}

#[test]
fn large_single_update_still_tracks_reevaluation() {
    // Incremental maintenance is exact algebra — even a large (not small)
    // perturbation must be tracked, not just ε-sized ones.
    let n = 12;
    let a = Matrix::random_spectral(n, 19, 0.5);
    let mut reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, 8).unwrap();
    let mut incr = IncrPowers::new(a, IterModel::Exponential, 8).unwrap();
    let upd = RankOneUpdate::dense(n, n, 0.5, 21);
    reeval.apply(&upd).unwrap();
    incr.apply(&upd).unwrap();
    assert!(incr.result().approx_eq(reeval.result(), 1e-9));
}
