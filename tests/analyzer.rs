//! Static trigger-program analyzer: acceptance and mutation suite.
//!
//! Three contracts are locked here:
//!
//! 1. **Shipped programs are clean** — every trigger program the compiler
//!    produces for the shipped apps (powers / sums / OLS / reach /
//!    pagerank-step) passes all four analyzer passes with zero errors, and
//!    the analyzer's independently re-derived effect sets agree with the
//!    scheduler's on every statement.
//! 2. **Mutations are rejected** — deterministic corruptions of a valid
//!    program (swapped delta-block dims, a dangling view name, a WAW
//!    hazard injected into a parallel stage) each produce the expected
//!    error-severity diagnostic.
//! 3. **Random programs agree** — a proptest sweeps the same random
//!    straight-line generator as `tests/scheduler.rs` through compile +
//!    analyze: no errors, and `analyze::derive_effects` matches
//!    `schedule.rs` effect sets exactly.

use linview::compiler::{
    analyze_joint, analyze_program, compile_joint, derive_effects, verify_stages, AnalyzeOptions,
    AnalyzerPass, Severity, StmtDag, Trigger, TriggerProgram, TriggerStmt,
};
use linview::prelude::*;
use proptest::prelude::*;

/// The shipped app programs, mirroring `tests/scheduler.rs::cases()` (the
/// matrices are irrelevant here — the analyzer is static).
fn shipped() -> Vec<(&'static str, Program, Catalog, Vec<&'static str>)> {
    let n = 12;
    let square = |name: &str| {
        let mut cat = Catalog::new();
        cat.declare(name, n, n);
        cat
    };
    let mut out = Vec::new();

    let (program, _) = linview::apps::powers::powers_program(IterModel::Exponential, 4);
    out.push(("powers", program, square("A"), vec!["A"]));

    let (program, _) = linview::apps::sums::sums_program(IterModel::Linear, 4, n);
    out.push(("sums", program, square("A"), vec!["A"]));

    let mut cat = Catalog::new();
    cat.declare("X", n, 4);
    cat.declare("Y", n, 1);
    out.push((
        "ols",
        parse_program("beta := inv(X' * X) * X' * Y;").unwrap(),
        cat,
        vec!["X", "Y"],
    ));

    let (sums, final_sum) = linview::apps::sums::sums_program(IterModel::Exponential, 4, n);
    let mut program = Program::new();
    for stmt in sums.statements() {
        program.assign(stmt.target.clone(), stmt.expr.clone());
    }
    program.assign("R", Expr::var("A") * Expr::var(final_sum));
    out.push(("reach", program, square("A"), vec!["A"]));

    let mut cat = Catalog::new();
    cat.declare("M", n, n);
    cat.declare("R0", n, 1);
    out.push((
        "pagerank-step",
        parse_program("R1 := M * R0; R2 := M * R1; R3 := M * R2;").unwrap(),
        cat,
        vec!["M", "R0"],
    ));

    out
}

fn compile_app(program: &Program, cat: &Catalog, inputs: &[&str]) -> (Program, TriggerProgram) {
    let normalized = program.hoist_inverses(inputs);
    let tp = compile(&normalized, inputs, cat, &CompileOptions::default())
        .expect("shipped program compiles");
    (normalized, tp)
}

#[test]
fn every_shipped_program_passes_all_passes() {
    for (name, program, cat, inputs) in shipped() {
        let (normalized, tp) = compile_app(&program, &cat, &inputs);
        let report = analyze_program(
            &tp,
            &AnalyzeOptions {
                program: Some(&normalized),
                ..Default::default()
            },
        );
        assert!(
            !report.has_errors(),
            "{name}: expected a clean report, got:\n{report}"
        );
        assert_eq!(report.triggers.len(), tp.triggers.len(), "{name}");
        for fact in &report.triggers {
            assert!(fact.stages > 0, "{name}: no verified stages");
            assert!(fact.cost.flops > 0.0, "{name}: zero cost estimate");
            assert!(fact.cost.wire_bytes > 0, "{name}: zero wire bytes");
        }
    }
}

#[test]
fn analyzer_effect_sets_match_scheduler_on_shipped_programs() {
    for (name, program, cat, inputs) in shipped() {
        let (_, tp) = compile_app(&program, &cat, &inputs);
        for trigger in &tp.triggers {
            let dag = trigger.dag().expect("shipped trigger schedules");
            assert_eq!(
                derive_effects(&trigger.stmts),
                dag.effects().to_vec(),
                "{name}/{}: independent effect derivation disagrees with schedule.rs",
                trigger.input
            );
        }
    }
}

#[test]
fn joint_trigger_passes_all_passes() {
    let mut cat = Catalog::new();
    cat.declare("A", 8, 8);
    cat.declare("B", 8, 8);
    let program = parse_program("C := A * B; D := C * C;").unwrap();
    let joint = compile_joint(&program, &["A", "B"], &cat, &CompileOptions::default())
        .expect("joint compiles");
    let report = analyze_joint(
        &joint,
        &AnalyzeOptions {
            program: Some(&program),
            ..Default::default()
        },
    );
    assert!(!report.has_errors(), "{report}");
}

#[test]
fn swapped_delta_dims_are_rejected_with_a_shape_diagnostic() {
    let (_, program, cat, inputs) = shipped().remove(0); // powers
    let (_, mut tp) = compile_app(&program, &cat, &inputs);
    // Transpose the input delta block's declared dims (12x1 -> 1x12):
    // every GEMM and `+=` fold touching dU_A stops conforming.
    let d = tp.catalog.get("dU_A").unwrap();
    tp.catalog.declare("dU_A", d.cols, d.rows);
    let report = analyze_program(&tp, &AnalyzeOptions::default());
    let err = report.first_error().expect("swapped dims must be rejected");
    assert_eq!(err.pass, AnalyzerPass::Shape, "{err}");
    assert_eq!(err.severity, Severity::Error);
    assert!(err.stmt.is_some(), "diagnostic pins the statement: {err}");
    assert!(err.suggestion.is_some(), "diagnostic carries a hint: {err}");
}

#[test]
fn dangling_view_name_is_rejected_with_a_shape_diagnostic() {
    let (_, program, cat, inputs) = shipped().remove(0); // powers
    let (_, mut tp) = compile_app(&program, &cat, &inputs);
    // Corrupt the first compute statement to read an undeclared matrix.
    let stmt = tp.triggers[0]
        .stmts
        .iter_mut()
        .find_map(|s| match s {
            TriggerStmt::Assign { expr, .. } => Some(expr),
            _ => None,
        })
        .expect("powers trigger has an Assign");
    *stmt = Expr::var("ghost") * stmt.clone();
    let report = analyze_program(&tp, &AnalyzeOptions::default());
    let err = report
        .first_error()
        .expect("dangling name must be rejected");
    assert_eq!(err.pass, AnalyzerPass::Shape, "{err}");
    assert!(err.message.contains("ghost"), "{err}");
}

#[test]
fn waw_hazard_injected_into_a_stage_is_rejected() {
    // Two `+=` folds of the same view forced into one parallel stage by a
    // hand-built (empty-predecessor) DAG: the disjointness pass must
    // refuse what `apply_stage` would race on.
    let trigger = Trigger {
        input: "A".into(),
        update_rank: 1,
        stmts: vec![
            TriggerStmt::ApplyDelta {
                target: "V".into(),
                u: Expr::var("u1"),
                v: Expr::var("v1"),
            },
            TriggerStmt::ApplyDelta {
                target: "V".into(),
                u: Expr::var("u2"),
                v: Expr::var("v2"),
            },
        ],
    };
    let effects = derive_effects(&trigger.stmts);
    let dag = StmtDag::from_preds(effects, vec![vec![], vec![]]).unwrap();
    let diags = verify_stages(&trigger, &dag);
    assert!(
        diags.iter().any(|d| {
            d.severity == Severity::Error
                && d.pass == AnalyzerPass::Disjointness
                && d.message.contains("hazard")
        }),
        "expected a same-stage hazard error, got {diags:?}"
    );
}

#[test]
fn seeded_ill_formed_program_is_denied_at_compile_time() {
    // Deny-by-default: the analyzer runs inside `compile`, so a program
    // with a dimension-inconsistent sum never reaches a backend.
    let mut cat = Catalog::new();
    cat.declare("A", 4, 4);
    cat.declare("B", 5, 5);
    let program = parse_program("C := A + B;").unwrap();
    let err = compile(&program, &["A"], &cat, &CompileOptions::default())
        .expect_err("ill-formed program must be denied");
    let text = err.to_string();
    assert!(
        text.contains("dimension mismatch") || text.contains("static analysis"),
        "unexpected denial: {text}"
    );
}

/// The random straight-line generator from `tests/scheduler.rs`: each
/// statement multiplies two previously-available matrices.
fn random_program(shape: &[u8]) -> Program {
    let mut program = Program::new();
    let mut avail: Vec<String> = vec!["A".into()];
    for (i, &kind) in shape.iter().enumerate() {
        let target = format!("T{i}");
        let last = avail.last().unwrap().clone();
        let first = avail[0].clone();
        let expr = match kind % 3 {
            0 => Expr::var(&last) * Expr::var(&last),
            1 => Expr::var(&first) * Expr::var(&last),
            _ => Expr::var(&last) * Expr::var(&first),
        };
        program.assign(&target, expr);
        avail.push(target);
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_programs_analyze_clean_and_effects_agree(
        shape in proptest::collection::vec(0u8..3, 1..6),
        n in 4usize..16,
    ) {
        let program = random_program(&shape);
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
        let report = analyze_program(
            &tp,
            &AnalyzeOptions { program: Some(&program), ..Default::default() },
        );
        prop_assert!(!report.has_errors(), "random program flagged:\n{report}");
        for trigger in &tp.triggers {
            let dag = trigger.dag().unwrap();
            prop_assert_eq!(derive_effects(&trigger.stmts), dag.effects().to_vec());
        }
    }

    #[test]
    fn random_programs_with_swapped_delta_dims_are_rejected(
        shape in proptest::collection::vec(0u8..3, 1..6),
        n in 4usize..16,
    ) {
        let program = random_program(&shape);
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut tp = compile(&program, &["A"], &cat, &CompileOptions::default()).unwrap();
        // n x 1 -> 1 x n: no statement reading dU_A conforms any more.
        let d = tp.catalog.get("dU_A").unwrap();
        tp.catalog.declare("dU_A", d.cols, d.rows);
        let report = analyze_program(&tp, &AnalyzeOptions::default());
        let err = report.first_error();
        prop_assert!(err.is_some(), "swapped dims not caught");
        prop_assert_eq!(err.unwrap().pass, AnalyzerPass::Shape);
    }
}
