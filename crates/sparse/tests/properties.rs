//! Property-based tests for the sparse kernel: CSR algebra laws checked
//! against the dense substrate, and graph-delta consistency under random
//! mutation streams.

use linview_matrix::{ApproxEq, Matrix};
use linview_sparse::{CooBuilder, CsrMatrix, Graph};
use proptest::prelude::*;

/// Strategy: a small random triplet list plus a shape.
fn coo_entries() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (2usize..8, 2usize..8).prop_flat_map(|(r, c)| {
        let entry = (0..r, 0..c, -10.0f64..10.0);
        (Just(r), Just(c), proptest::collection::vec(entry, 0..30))
    })
}

fn build(r: usize, c: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut b = CooBuilder::new(r, c);
    for &(i, j, v) in entries {
        b.push(i, j, v).unwrap();
    }
    b.build()
}

proptest! {
    #[test]
    fn csr_matches_dense_accumulation((r, c, entries) in coo_entries()) {
        let sparse = build(r, c, &entries);
        let mut dense = Matrix::zeros(r, c);
        for &(i, j, v) in &entries {
            dense.set(i, j, dense.get(i, j) + v);
        }
        prop_assert!(sparse.to_dense().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn spmm_agrees_with_dense_matmul((r, c, entries) in coo_entries(), seed in 0u64..1000) {
        let sparse = build(r, c, &entries);
        let x = Matrix::random_uniform(c, 3, seed);
        let via_sparse = sparse.spmm(&x).unwrap();
        let via_dense = sparse.to_dense().try_matmul(&x).unwrap();
        prop_assert!(via_sparse.approx_eq(&via_dense, 1e-9));
    }

    #[test]
    fn transpose_involution((r, c, entries) in coo_entries()) {
        let m = build(r, c, &entries);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_spmv((r, c, entries) in coo_entries(), seed in 0u64..1000) {
        // (Mᵀx)ᵀ y == xᵀ (M y): adjointness against the dense kernel.
        let m = build(r, c, &entries);
        let x = Matrix::random_col(r, seed);
        let y = Matrix::random_col(c, seed + 1);
        let lhs = Matrix::dot(&m.transpose().spmv(&x).unwrap(), &y).unwrap();
        let rhs = Matrix::dot(&x, &m.spmv(&y).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn spgemm_agrees_with_dense((r, c, entries) in coo_entries(), seed in 0u64..1000) {
        let a = build(r, c, &entries);
        let b = CsrMatrix::from_dense(&Matrix::random_uniform(c, 4, seed), 0.5);
        let sparse = a.spgemm(&b).unwrap();
        let dense = a.to_dense().try_matmul(&b.to_dense()).unwrap();
        prop_assert!(sparse.to_dense().approx_eq(&dense, 1e-9));
    }

    #[test]
    fn spgemm_is_associative((n, seed) in (2usize..7, 0u64..1000)) {
        // (A·B)·C == A·(B·C) on small random sparse squares.
        let a = CsrMatrix::from_dense(&Matrix::random_uniform(n, n, seed), 0.6);
        let b = CsrMatrix::from_dense(&Matrix::random_uniform(n, n, seed + 1), 0.6);
        let c = CsrMatrix::from_dense(&Matrix::random_uniform(n, n, seed + 2), 0.6);
        let left = a.spgemm(&b).unwrap().spgemm(&c).unwrap();
        let right = a.spgemm(&b.spgemm(&c).unwrap()).unwrap();
        prop_assert!(left.to_dense().approx_eq(&right.to_dense(), 1e-9));
    }

    #[test]
    fn from_dense_roundtrips((r, c, entries) in coo_entries()) {
        let m = build(r, c, &entries);
        let back = CsrMatrix::from_dense(&m.to_dense(), 0.0);
        prop_assert!(back.to_dense().approx_eq(&m.to_dense(), 1e-12));
    }

    #[test]
    fn row_normalization_preserves_support((r, c, entries) in coo_entries()) {
        let m = build(r, c, &entries);
        let norm = m.row_normalized();
        prop_assert_eq!(norm.nnz(), m.nnz());
        for row in 0..r {
            let s = m.row_sum(row);
            if s != 0.0 {
                prop_assert!((norm.row_sum(row) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn graph_mutation_deltas_reconstruct_transition(
        seed in 0u64..500,
        ops in proptest::collection::vec((0usize..8, 0usize..8), 1..25)
    ) {
        let mut g = Graph::random(8, 2, seed);
        let mut p = g.transition().to_dense();
        for (s, t) in ops {
            if s == t {
                continue;
            }
            let delta = if g.has_edge(s, t) {
                g.remove_edge(s, t).unwrap()
            } else {
                g.insert_edge(s, t).unwrap()
            };
            p.add_assign_from(&delta.to_dense()).unwrap();
        }
        prop_assert!(p.approx_eq(&g.transition().to_dense(), 1e-9));
    }
}
