//! Coordinate-format builder: the ingestion side of the sparse kernel.

use crate::csr::CsrMatrix;
use crate::{Result, SparseError};

/// An append-only triplet accumulator that finalizes into CSR.
///
/// Duplicate coordinates are *summed* on [`CooBuilder::build`] — the natural
/// semantics for accumulating deltas and edge weights.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// An empty builder for an `rows×cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Queues a triplet; duplicates are summed at build time.
    pub fn push(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(SparseError::OutOfBounds {
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((r, c, v));
        Ok(())
    }

    /// Number of queued triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into CSR: sorts triplets, sums duplicates, drops explicit
    /// zeros. `O(nnz · log nnz)`.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut current_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, _) = self.entries[i];
            // Merge the run of duplicates at (r, c).
            let mut sum = 0.0;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                sum += self.entries[i].2;
                i += 1;
            }
            if sum == 0.0 {
                continue;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            vals.push(sum);
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix::from_parts(self.rows, self.cols, row_ptr, col_idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut b = CooBuilder::new(3, 3);
        b.push(2, 0, 5.0).unwrap();
        b.push(0, 1, 1.0).unwrap();
        b.push(0, 0, 2.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.push(1, 1, 1.5).unwrap();
        b.push(1, 1, 2.5).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn cancelling_duplicates_vanish() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 3.0).unwrap();
        b.push(0, 1, -3.0).unwrap();
        let m = b.build();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut b = CooBuilder::new(2, 2);
        assert!(b.push(2, 0, 1.0).is_err());
        assert!(b.push(0, 2, 1.0).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn empty_builder_gives_empty_matrix() {
        let m = CooBuilder::new(4, 5).build();
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn trailing_empty_rows_are_represented() {
        let mut b = CooBuilder::new(5, 5);
        b.push(1, 2, 1.0).unwrap();
        let m = b.build();
        assert_eq!(m.row_entries(4).count(), 0);
        assert_eq!(m.row_entries(1).count(), 1);
    }
}
