//! Damped PageRank power iteration over the sparse transition matrix.
//!
//! This is the *exact re-evaluation baseline* for the evolving-graph
//! experiments: `O(nnz)` per iteration, dangling mass redistributed
//! uniformly, and either a fixed iteration count (the paper's model — §3.1
//! fixes the number of iteration steps for a fair REEVAL/INCR comparison)
//! or a convergence threshold (the §3.1 "future work" mode, exercised by
//! the convergence-tracking application).

use linview_matrix::Matrix;

use crate::csr::CsrMatrix;
use crate::{Result, SparseError};

/// PageRank solver options.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Damping factor `d` (teleport probability `1 − d`).
    pub damping: f64,
    /// L1 convergence threshold between successive iterates.
    pub tol: f64,
    /// Iteration cap (also the exact count when `fixed_iterations`).
    pub max_iterations: usize,
    /// When true, runs exactly `max_iterations` steps and ignores `tol`
    /// (the paper's fixed-iteration model).
    pub fixed_iterations: bool,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            tol: 1e-10,
            max_iterations: 100,
            fixed_iterations: false,
        }
    }
}

/// The result of a PageRank computation.
#[derive(Debug, Clone)]
pub struct PageRank {
    scores: Vec<f64>,
    iterations: usize,
    residual: f64,
}

impl PageRank {
    /// The score vector (sums to 1).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final L1 residual between the last two iterates.
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// The scores as an `n×1` column matrix.
    pub fn as_column(&self) -> Matrix {
        Matrix::col_vector(&self.scores)
    }

    /// Vertices sorted by descending score, ties broken by index.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        idx
    }

    /// The top-`k` vertices by score.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut r = self.ranking();
        r.truncate(k);
        r
    }
}

/// Runs damped power iteration on a row-stochastic transition matrix `p`
/// (as produced by [`crate::Graph::transition`]; dangling rows all-zero).
///
/// Iterates `xᵀ ← d·xᵀP + d·(dangling mass)/n·1ᵀ + (1−d)/n·1ᵀ` until the L1
/// change drops below `tol` (or for exactly `max_iterations` steps in
/// fixed mode). Returns [`SparseError::DidNotConverge`] if the threshold
/// mode exhausts its budget.
pub fn pagerank(p: &CsrMatrix, opts: &PageRankOptions) -> Result<PageRank> {
    pagerank_from(p, opts, None)
}

/// As [`pagerank`], but warm-started from a previous solution — the
/// incremental strategy for threshold-terminated iteration: after a small
/// graph mutation, the old scores are near the new fixed point, so far
/// fewer iterations are needed than from the uniform cold start (the §3.1
/// varying-iteration-count regime, realized on the sparse substrate).
pub fn pagerank_warm(
    p: &CsrMatrix,
    opts: &PageRankOptions,
    previous: &PageRank,
) -> Result<PageRank> {
    if previous.scores.len() != p.rows() {
        return Err(SparseError::DimMismatch {
            op: "pagerank_warm",
            lhs: (previous.scores.len(), 1),
            rhs: p.shape(),
        });
    }
    pagerank_from(p, opts, Some(&previous.scores))
}

fn pagerank_from(p: &CsrMatrix, opts: &PageRankOptions, start: Option<&[f64]>) -> Result<PageRank> {
    if p.rows() != p.cols() {
        return Err(SparseError::DimMismatch {
            op: "pagerank",
            lhs: p.shape(),
            rhs: p.shape(),
        });
    }
    assert!(
        (0.0..1.0).contains(&opts.damping),
        "damping must be in [0, 1)"
    );
    let n = p.rows();
    if n == 0 {
        return Ok(PageRank {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
        });
    }
    // x starts uniform (or from the warm start); iterate on the transpose
    // so each step is one spmv.
    let pt = p.transpose();
    let dangling: Vec<bool> = (0..n).map(|r| p.row_sum(r) == 0.0).collect();
    let mut x = match start {
        Some(s) => Matrix::col_vector(s),
        None => Matrix::filled(n, 1, 1.0 / n as f64),
    };
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        let mut next = pt.spmv(&x)?;
        let dangling_mass: f64 = dangling
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| x.get(i, 0))
            .sum();
        let teleport = (1.0 - opts.damping) / n as f64 + opts.damping * dangling_mass / n as f64;
        next.map_inplace(|v| opts.damping * v + teleport);
        residual = (0..n).map(|i| (next.get(i, 0) - x.get(i, 0)).abs()).sum();
        x = next;
        iterations += 1;
        if !opts.fixed_iterations && residual < opts.tol {
            return Ok(PageRank {
                scores: x.into_vec(),
                iterations,
                residual,
            });
        }
    }
    if opts.fixed_iterations {
        Ok(PageRank {
            scores: x.into_vec(),
            iterations,
            residual,
        })
    } else {
        Err(SparseError::DidNotConverge {
            iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn opts() -> PageRankOptions {
        PageRankOptions::default()
    }

    #[test]
    fn scores_sum_to_one() {
        let g = Graph::random(30, 4, 1);
        let pr = pagerank(&g.transition(), &opts()).unwrap();
        assert!((pr.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr.scores().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn cycle_graph_is_uniform() {
        let n = 6;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.insert_edge(v, (v + 1) % n).unwrap();
        }
        let pr = pagerank(&g.transition(), &opts()).unwrap();
        for &s in pr.scores() {
            assert!((s - 1.0 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_attracts_mass() {
        // Star graph: everyone points at vertex 0.
        let n = 10;
        let mut g = Graph::new(n);
        for v in 1..n {
            g.insert_edge(v, 0).unwrap();
        }
        let pr = pagerank(&g.transition(), &opts()).unwrap();
        assert_eq!(pr.ranking()[0], 0);
        assert!(pr.scores()[0] > 0.4);
        assert_eq!(pr.top_k(1), vec![0]);
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 -> 1, and 1 dangles: mass must not leak.
        let mut g = Graph::new(3);
        g.insert_edge(0, 1).unwrap();
        let pr = pagerank(&g.transition(), &opts()).unwrap();
        assert!((pr.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr.scores()[1] > pr.scores()[2]);
    }

    #[test]
    fn fixed_iteration_mode_runs_exactly_k_steps() {
        let g = Graph::random(20, 3, 2);
        let o = PageRankOptions {
            fixed_iterations: true,
            max_iterations: 7,
            ..opts()
        };
        let pr = pagerank(&g.transition(), &o).unwrap();
        assert_eq!(pr.iterations(), 7);
    }

    #[test]
    fn threshold_mode_errors_when_budget_exhausted() {
        let g = Graph::random(20, 3, 3);
        let o = PageRankOptions {
            tol: 0.0, // unreachable
            max_iterations: 5,
            ..opts()
        };
        assert!(matches!(
            pagerank(&g.transition(), &o),
            Err(SparseError::DidNotConverge { iterations: 5, .. })
        ));
    }

    #[test]
    fn converged_result_is_a_fixed_point() {
        let g = Graph::random(25, 4, 4);
        let p = g.transition();
        let pr = pagerank(&p, &opts()).unwrap();
        // One more damped step barely moves the solution.
        let x = pr.as_column();
        let n = 25;
        let mut next = p.transpose().spmv(&x).unwrap();
        next.map_inplace(|v| opts().damping * v + (1.0 - opts().damping) / n as f64);
        let drift: f64 = (0..n).map(|i| (next.get(i, 0) - x.get(i, 0)).abs()).sum();
        assert!(drift < 1e-8);
    }

    #[test]
    fn warm_start_converges_faster_after_small_mutation() {
        let mut g = Graph::random(60, 4, 9);
        let cold_opts = PageRankOptions {
            tol: 1e-10,
            max_iterations: 500,
            ..opts()
        };
        let before = pagerank(&g.transition(), &cold_opts).unwrap();
        // One edge flips; warm restart from the old scores.
        g.insert_edge(3, 41).unwrap();
        let p_new = g.transition();
        let cold = pagerank(&p_new, &cold_opts).unwrap();
        let warm = pagerank_warm(&p_new, &cold_opts, &before).unwrap();
        assert!(
            warm.iterations() < cold.iterations(),
            "warm {} !< cold {}",
            warm.iterations(),
            cold.iterations()
        );
        // Same answer.
        for (a, b) in warm.scores().iter().zip(cold.scores()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn warm_start_rejects_mismatched_sizes() {
        let g1 = Graph::random(10, 2, 1);
        let g2 = Graph::random(12, 2, 2);
        let pr = pagerank(&g1.transition(), &opts()).unwrap();
        assert!(pagerank_warm(&g2.transition(), &opts(), &pr).is_err());
    }

    #[test]
    fn empty_graph_gives_empty_result() {
        let pr = pagerank(&CsrMatrix::zeros(0, 0), &opts()).unwrap();
        assert!(pr.scores().is_empty());
    }

    #[test]
    fn rejects_rectangular_input() {
        assert!(pagerank(&CsrMatrix::zeros(2, 3), &opts()).is_err());
    }
}
