//! An evolving directed graph whose mutations become factored rank-1
//! updates of its transition matrix.
//!
//! This is the bridge between the paper's update model and real graph
//! streams: inserting or deleting the edge `s → t` changes only row `s` of
//! the row-stochastic transition matrix `P`, so the change is exactly
//! `ΔP = e_s · (row_new − row_old)ᵀ` — a rank-1 row update of the kind §7's
//! workload generates ("each update affects one row of an input matrix").

use linview_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

use crate::csr::CsrMatrix;
use crate::{CooBuilder, Result, SparseError};

/// A factored rank-1 delta `ΔP = u · vᵀ` of the transition matrix produced
/// by one edge mutation.
#[derive(Debug, Clone)]
pub struct EdgeDelta {
    /// Left factor: the basis vector `e_s` (`n×1`).
    pub u: Matrix,
    /// Right factor: the row change (`n×1`).
    pub v: Matrix,
    /// The mutated source vertex.
    pub src: usize,
}

impl EdgeDelta {
    /// Materializes the dense `ΔP` (tests / re-evaluation baselines).
    pub fn to_dense(&self) -> Matrix {
        Matrix::outer(&self.u, &self.v).expect("factors are column vectors")
    }
}

/// A mutable directed graph over vertices `0..n` with unweighted edges.
#[derive(Debug, Clone)]
pub struct Graph {
    out: Vec<BTreeSet<usize>>,
    edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            out: vec![BTreeSet::new(); n],
            edges: 0,
        }
    }

    /// A random graph: each vertex receives `avg_out_degree` out-edges to
    /// uniformly random distinct targets (self-loops excluded).
    pub fn random(n: usize, avg_out_degree: usize, seed: u64) -> Self {
        assert!(n >= 2, "random graph needs at least 2 vertices");
        let mut g = Graph::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..n {
            let deg = avg_out_degree.min(n - 1);
            while g.out[s].len() < deg {
                let t = rng.random_range(0..n);
                if t != s && g.out[s].insert(t) {
                    g.edges += 1;
                }
            }
        }
        g
    }

    /// A preferential-attachment ("rich get richer") random graph: each new
    /// vertex links to `m` earlier vertices chosen proportionally to their
    /// current in-degree (plus one). In-degrees follow the power law typical
    /// of web graphs — the workload PageRank and the paper's Zipf-skewed
    /// update model (§7 Table 4) assume.
    pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Self {
        assert!(n >= 2 && m >= 1, "need n >= 2 vertices and m >= 1 links");
        let mut g = Graph::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        // Repeated-target list: vertex v appears once per in-link + once
        // baseline, so sampling uniformly from it is degree-proportional.
        let mut targets: Vec<usize> = vec![0];
        for s in 1..n {
            let links = m.min(s);
            let mut chosen = BTreeSet::new();
            while chosen.len() < links {
                let t = targets[rng.random_range(0..targets.len())];
                if t != s {
                    chosen.insert(t);
                }
            }
            for &t in &chosen {
                g.out[s].insert(t);
                g.edges += 1;
                targets.push(t);
            }
            targets.push(s);
        }
        g
    }

    /// In-degree of `v` (O(E); diagnostics and tests).
    pub fn in_degree(&self, v: usize) -> usize {
        self.out.iter().filter(|o| o.contains(&v)).count()
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out[v].len()
    }

    /// True when the edge `s → t` exists.
    pub fn has_edge(&self, s: usize, t: usize) -> bool {
        self.out.get(s).is_some_and(|o| o.contains(&t))
    }

    /// The row-stochastic transition matrix `P` (`P[s][t] = 1/outdeg(s)`),
    /// with all-zero rows for dangling vertices.
    pub fn transition(&self) -> CsrMatrix {
        let n = self.vertices();
        let mut b = CooBuilder::new(n, n);
        for (s, targets) in self.out.iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let w = 1.0 / targets.len() as f64;
            for &t in targets {
                b.push(s, t, w).expect("edge indices in bounds");
            }
        }
        b.build()
    }

    /// The unweighted adjacency matrix.
    pub fn adjacency(&self) -> CsrMatrix {
        let n = self.vertices();
        let mut b = CooBuilder::new(n, n);
        for (s, targets) in self.out.iter().enumerate() {
            for &t in targets {
                b.push(s, t, 1.0).expect("edge indices in bounds");
            }
        }
        b.build()
    }

    /// Inserts the edge `s → t`, returning the factored rank-1 delta of the
    /// transition matrix. Errors on duplicates, self-loops, and
    /// out-of-range vertices.
    pub fn insert_edge(&mut self, s: usize, t: usize) -> Result<EdgeDelta> {
        self.check(s, t)?;
        if self.out[s].contains(&t) {
            return Err(SparseError::EdgeConflict {
                src: s,
                dst: t,
                existed: true,
            });
        }
        let before = self.row_of(s);
        self.out[s].insert(t);
        self.edges += 1;
        Ok(self.delta_for(s, before))
    }

    /// Removes the edge `s → t`, returning the factored rank-1 delta of the
    /// transition matrix.
    pub fn remove_edge(&mut self, s: usize, t: usize) -> Result<EdgeDelta> {
        self.check(s, t)?;
        if !self.out[s].remove(&t) {
            return Err(SparseError::EdgeConflict {
                src: s,
                dst: t,
                existed: false,
            });
        }
        self.edges -= 1;
        let mut before = self.row_of(s);
        // `before` must be the *pre-removal* row: add the removed edge back
        // at the old degree.
        let old_deg = self.out[s].len() + 1;
        for x in before.as_mut_slice() {
            *x *= self.out[s].len() as f64 / old_deg as f64;
        }
        before.set(t, 0, 1.0 / old_deg as f64);
        Ok(self.delta_for(s, before))
    }

    fn check(&self, s: usize, t: usize) -> Result<()> {
        let n = self.vertices();
        if s >= n || t >= n {
            return Err(SparseError::OutOfBounds {
                index: (s, t),
                shape: (n, n),
            });
        }
        if s == t {
            return Err(SparseError::SelfLoop(s));
        }
        Ok(())
    }

    /// Current transition row of `s` as an `n×1` column.
    fn row_of(&self, s: usize) -> Matrix {
        let n = self.vertices();
        let mut row = Matrix::zeros(n, 1);
        let deg = self.out[s].len();
        if deg > 0 {
            let w = 1.0 / deg as f64;
            for &t in &self.out[s] {
                row.set(t, 0, w);
            }
        }
        row
    }

    /// Packages `ΔP = e_s (row_new − row_old)ᵀ`.
    fn delta_for(&self, s: usize, before: Matrix) -> EdgeDelta {
        let n = self.vertices();
        let mut u = Matrix::zeros(n, 1);
        u.set(s, 0, 1.0);
        let after = self.row_of(s);
        let v = after.try_sub(&before).expect("same shape");
        EdgeDelta { u, v, src: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;

    #[test]
    fn insert_updates_transition_by_delta() {
        let mut g = Graph::new(5);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(0, 2).unwrap();
        let p_before = g.transition().to_dense();
        let delta = g.insert_edge(0, 4).unwrap();
        let p_after = g.transition().to_dense();
        let rebuilt = p_before.try_add(&delta.to_dense()).unwrap();
        assert!(rebuilt.approx_eq(&p_after, 1e-12));
        assert_eq!(delta.src, 0);
    }

    #[test]
    fn remove_updates_transition_by_delta() {
        let mut g = Graph::random(8, 3, 1);
        let (s, t) = {
            let s = 2;
            let t = *g.out[s].iter().next().unwrap();
            (s, t)
        };
        let p_before = g.transition().to_dense();
        let delta = g.remove_edge(s, t).unwrap();
        let p_after = g.transition().to_dense();
        let rebuilt = p_before.try_add(&delta.to_dense()).unwrap();
        assert!(rebuilt.approx_eq(&p_after, 1e-12));
    }

    #[test]
    fn removing_last_edge_leaves_dangling_row() {
        let mut g = Graph::new(3);
        g.insert_edge(1, 0).unwrap();
        let delta = g.remove_edge(1, 0).unwrap();
        assert_eq!(g.out_degree(1), 0);
        let p = g.transition();
        assert_eq!(p.row_sum(1), 0.0);
        // The delta is exactly minus the old row.
        assert_eq!(delta.to_dense().get(1, 0), -1.0);
    }

    #[test]
    fn first_edge_of_dangling_row_is_pure_insertion() {
        let mut g = Graph::new(3);
        let delta = g.insert_edge(2, 1).unwrap();
        assert_eq!(delta.to_dense().get(2, 1), 1.0);
        assert!((g.transition().row_sum(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_conflicts_self_loops_and_bounds() {
        let mut g = Graph::new(3);
        g.insert_edge(0, 1).unwrap();
        assert!(matches!(
            g.insert_edge(0, 1),
            Err(SparseError::EdgeConflict { existed: true, .. })
        ));
        assert!(matches!(
            g.remove_edge(1, 2),
            Err(SparseError::EdgeConflict { existed: false, .. })
        ));
        assert!(matches!(g.insert_edge(1, 1), Err(SparseError::SelfLoop(1))));
        assert!(g.insert_edge(0, 9).is_err());
        assert_eq!(g.edges(), 1);
    }

    #[test]
    fn random_graph_hits_requested_degree() {
        let g = Graph::random(20, 4, 7);
        for v in 0..20 {
            assert_eq!(g.out_degree(v), 4);
            assert!(!g.has_edge(v, v));
        }
        assert_eq!(g.edges(), 80);
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let n = 300;
        let g = Graph::preferential_attachment(n, 3, 5);
        // Every non-root vertex has out-degree min(3, index).
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.out_degree(1), 1);
        for v in 3..n {
            assert_eq!(g.out_degree(v), 3);
        }
        // Skew: the max in-degree dwarfs the mean (power-law tail).
        let max_in = (0..n).map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.edges() as f64 / n as f64;
        assert!(
            max_in as f64 > 5.0 * mean_in,
            "max {max_in} vs mean {mean_in:.1} — not skewed"
        );
    }

    #[test]
    fn preferential_attachment_feeds_pagerank() {
        let g = Graph::preferential_attachment(120, 2, 9);
        let pr = crate::pagerank(&g.transition(), &crate::PageRankOptions::default()).unwrap();
        // The top-ranked vertex is one of the early (high in-degree) ones.
        assert!(pr.top_k(1)[0] < 20);
    }

    #[test]
    fn transition_rows_sum_to_one_or_zero() {
        let g = Graph::random(12, 3, 3);
        let p = g.transition();
        for r in 0..12 {
            let s = p.row_sum(r);
            assert!((s - 1.0).abs() < 1e-12 || s == 0.0);
        }
    }

    #[test]
    fn adjacency_counts_edges() {
        let g = Graph::random(10, 2, 5);
        assert_eq!(g.adjacency().nnz(), g.edges());
    }

    #[test]
    fn long_mutation_stream_stays_consistent() {
        // Deltas accumulated over a random insert/remove stream rebuild the
        // final transition matrix exactly.
        let mut g = Graph::random(10, 2, 11);
        let mut p = g.transition().to_dense();
        let mut rng = StdRng::seed_from_u64(13);
        let mut applied = 0;
        while applied < 40 {
            let s = rng.random_range(0..10usize);
            let t = rng.random_range(0..10usize);
            if s == t {
                continue;
            }
            let delta = if g.has_edge(s, t) {
                g.remove_edge(s, t).unwrap()
            } else {
                g.insert_edge(s, t).unwrap()
            };
            p.add_assign_from(&delta.to_dense()).unwrap();
            applied += 1;
        }
        assert!(p.approx_eq(&g.transition().to_dense(), 1e-10));
    }
}
