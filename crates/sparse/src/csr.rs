//! Compressed-sparse-row matrix kernel.

use linview_matrix::{flops, Matrix};

use crate::coo::CooBuilder;
use crate::{Result, SparseError};

/// An immutable CSR matrix over `f64`.
///
/// Mutation happens at the [`crate::Graph`] level (or by rebuilding through
/// [`CooBuilder`]); the CSR itself is a read-optimized snapshot, which
/// matches its role here: the *re-evaluation baseline* operand that
/// incremental maintenance is compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from raw parts (used by [`CooBuilder`]).
    ///
    /// Invariants (`row_ptr` monotone, indices sorted in-row and in bounds)
    /// are the builder's responsibility and asserted in debug builds.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), vals.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(col_idx.iter().all(|&c| c < cols));
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// An all-zero `rows×cols` sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `n×n` sparse identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Converts a dense matrix, keeping entries with `|x| > tol`.
    pub fn from_dense(m: &Matrix, tol: f64) -> Self {
        let mut b = CooBuilder::new(m.rows(), m.cols());
        for (r, c, v) in m.iter() {
            if v.abs() > tol {
                b.push(r, c, v).expect("iter stays in bounds");
            }
        }
        b.build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Density `nnz / (rows·cols)` (0 for an empty shape).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Reads entry `(r, c)` — `O(log nnz(row))`; zero for absent entries.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(i) => self.vals[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Iterates the stored `(col, value)` pairs of row `r`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Iterates all stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_entries(r).map(move |(c, v)| (r, c, v)))
    }

    /// Sparse × dense product `self · x` for `x : (cols×p)`, `O(nnz·p)`.
    ///
    /// This is the PageRank workhorse: the per-iteration cost is `O(nnz)`
    /// rather than the dense `O(n²)`. Explicitly-stored zeros (which an
    /// update stream can legitimately leave behind) are skipped — they
    /// contribute nothing and would only burn FLOPs.
    pub fn spmm(&self, x: &Matrix) -> Result<Matrix> {
        if x.rows() != self.cols {
            return Err(SparseError::DimMismatch {
                op: "spmm",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let p = x.cols();
        let mut out = Matrix::zeros(self.rows, p);
        let mut work = 0usize;
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let out_row = out.row_mut(r);
            for i in lo..hi {
                let v = self.vals[i];
                if v == 0.0 {
                    continue;
                }
                work += 1;
                let x_row = x.row(self.col_idx[i]);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        flops::add((2 * work * p) as u64);
        Ok(out)
    }

    /// Accumulating sparse × dense product: `out += self · x`.
    ///
    /// This is the shape an `ApplyDelta` fold actually needs — it avoids
    /// materializing an `n×p` temporary and paying a second elementwise
    /// add per fold. Each output row is accumulated into a scratch row
    /// first (stored entries in column order) and added into `out` with a
    /// single `+=` per element, so the result is bit-identical to
    /// [`spmm`](Self::spmm) followed by an elementwise add. Rows of `self`
    /// with no (nonzero) stored entries are skipped entirely.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        if x.rows() != self.cols {
            return Err(SparseError::DimMismatch {
                op: "spmm_into",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        if out.shape() != (self.rows, x.cols()) {
            return Err(SparseError::DimMismatch {
                op: "spmm_into",
                lhs: (self.rows, x.cols()),
                rhs: out.shape(),
            });
        }
        let p = x.cols();
        let mut scratch = vec![0.0f64; p];
        let mut work = 0usize;
        let mut rows_touched = 0usize;
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            if self.vals[lo..hi].iter().all(|&v| v == 0.0) {
                continue;
            }
            rows_touched += 1;
            scratch.iter_mut().for_each(|s| *s = 0.0);
            for i in lo..hi {
                let v = self.vals[i];
                if v == 0.0 {
                    continue;
                }
                work += 1;
                let x_row = x.row(self.col_idx[i]);
                for (s, &xv) in scratch.iter_mut().zip(x_row) {
                    *s += v * xv;
                }
            }
            for (o, &s) in out.row_mut(r).iter_mut().zip(&scratch) {
                *o += s;
            }
        }
        flops::add((2 * work * p + rows_touched * p) as u64);
        Ok(())
    }

    /// Sparse matrix–vector product with a column vector (`cols×1`).
    pub fn spmv(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != 1 {
            return Err(SparseError::DimMismatch {
                op: "spmv",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        self.spmm(x)
    }

    /// Sparse × sparse product (Gustavson's row-wise algorithm),
    /// `O(Σ_i Σ_{j ∈ row i} nnz(row j of rhs))` — the substrate for sparse
    /// reachability/adjacency powers where densification is unaffordable.
    pub fn spgemm(&self, rhs: &CsrMatrix) -> Result<CsrMatrix> {
        if rhs.rows != self.cols {
            return Err(SparseError::DimMismatch {
                op: "spgemm",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        // Dense accumulator + touched list per output row. A separate seen
        // flag (not `acc == 0`) so intermediate cancellations don't register
        // a column twice.
        let mut acc = vec![0.0f64; rhs.cols];
        let mut seen = vec![false; rhs.cols];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            for (k, v) in self.row_entries(r) {
                for (c, w) in rhs.row_entries(k) {
                    if !seen[c] {
                        seen[c] = true;
                        touched.push(c);
                    }
                    acc[c] += v * w;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                if acc[c] != 0.0 {
                    col_idx.push(c);
                    vals.push(acc[c]);
                }
                acc[c] = 0.0;
                seen[c] = false;
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        flops::add(2 * vals.len() as u64);
        Ok(CsrMatrix::from_parts(
            self.rows, rhs.cols, row_ptr, col_idx, vals,
        ))
    }

    /// Transpose, `O(nnz + rows + cols)` (counting sort by column).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = counts;
        for (r, c, v) in self.iter() {
            let slot = next[c];
            col_idx[slot] = r;
            vals[slot] = v;
            next[c] += 1;
        }
        CsrMatrix::from_parts(self.cols, self.rows, row_ptr, col_idx, vals)
    }

    /// Materializes as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m.set(r, c, v);
        }
        m
    }

    /// Scales every entry by `lambda`.
    pub fn scale(&self, lambda: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.vals {
            *v *= lambda;
        }
        out
    }

    /// Normalizes each row to sum 1, leaving all-zero rows untouched
    /// (dangling vertices are handled at the PageRank level). Returns the
    /// row-stochastic matrix.
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let lo = out.row_ptr[r];
            let hi = out.row_ptr[r + 1];
            let sum: f64 = out.vals[lo..hi].iter().sum();
            if sum != 0.0 {
                for v in &mut out.vals[lo..hi] {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Sum of the stored entries in row `r`.
    pub fn row_sum(&self, r: usize) -> f64 {
        self.row_entries(r).map(|(_, v)| v).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut b = CooBuilder::new(3, 3);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)] {
            b.push(r, c, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn get_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Matrix::random_uniform(3, 2, 1);
        let sparse = m.spmm(&x).unwrap();
        let dense = m.to_dense().try_matmul(&x).unwrap();
        assert!(sparse.approx_eq(&dense, 1e-12));
        assert!(m.spmm(&Matrix::zeros(4, 1)).is_err());
    }

    #[test]
    fn spmm_skips_explicitly_stored_zeros() {
        // `CooBuilder` drops zeros, so assemble the stored zero directly.
        let m = CsrMatrix::from_parts(2, 2, vec![0, 2, 2], vec![0, 1], vec![0.0, 2.0]);
        assert_eq!(m.nnz(), 2); // structurally stored, numerically one zero
        let x = Matrix::random_uniform(2, 3, 8);
        let before = flops::read();
        let got = m.spmm(&x).unwrap();
        // Only the single nonzero entry is charged: 2 flops × p columns.
        assert_eq!(flops::read() - before, 2 * 3);
        assert!(got.approx_eq(&m.to_dense().try_matmul(&x).unwrap(), 1e-12));
    }

    #[test]
    fn spmm_into_is_bit_identical_to_spmm_plus_add() {
        let m = sample();
        let x = Matrix::random_uniform(3, 4, 5);
        let base = Matrix::random_uniform(3, 4, 6);
        let mut accumulated = base.clone();
        m.spmm_into(&x, &mut accumulated).unwrap();
        let mut reference = base.clone();
        reference
            .add_assign_from(&m.spmm(&x).unwrap())
            .expect("shapes agree");
        assert_eq!(accumulated, reference);
        // Row 1 of `sample` is empty: it must be left untouched (bitwise).
        assert_eq!(accumulated.row(1), base.row(1));
    }

    #[test]
    fn spmm_into_rejects_bad_shapes() {
        let m = sample();
        let x = Matrix::zeros(3, 2);
        assert!(m
            .spmm_into(&Matrix::zeros(4, 2), &mut Matrix::zeros(3, 2))
            .is_err());
        assert!(m.spmm_into(&x, &mut Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn spmv_requires_column_vector() {
        let m = sample();
        assert!(m.spmv(&Matrix::zeros(3, 2)).is_err());
        let x = Matrix::col_vector(&[1.0, 1.0, 1.0]);
        let y = m.spmv(&x).unwrap();
        assert_eq!(y.get(0, 0), 3.0);
        assert_eq!(y.get(2, 0), 7.0);
    }

    #[test]
    fn spgemm_matches_dense_matmul() {
        let m = sample();
        let t = m.transpose();
        let prod = m.spgemm(&t).unwrap();
        let expected = m.to_dense().try_matmul(&t.to_dense()).unwrap();
        assert!(prod.to_dense().approx_eq(&expected, 1e-12));
        assert!(m.spgemm(&CsrMatrix::zeros(4, 4)).is_err());
    }

    #[test]
    fn spgemm_identity_is_neutral() {
        let m = sample();
        let i = CsrMatrix::identity(3);
        assert_eq!(m.spgemm(&i).unwrap(), m);
        assert_eq!(i.spgemm(&m).unwrap(), m);
    }

    #[test]
    fn spgemm_drops_cancelled_entries() {
        // [1 1] · [ 1]  = [0] — exact cancellation must not produce a
        //         [-1]
        // stored zero (and must not double-register the column).
        let mut b1 = CooBuilder::new(1, 2);
        b1.push(0, 0, 1.0).unwrap();
        b1.push(0, 1, 1.0).unwrap();
        let a = b1.build();
        let mut b2 = CooBuilder::new(2, 1);
        b2.push(0, 0, 1.0).unwrap();
        b2.push(1, 0, -1.0).unwrap();
        let b = b2.build();
        let prod = a.spgemm(&b).unwrap();
        assert_eq!(prod.nnz(), 0);
        assert_eq!(prod.shape(), (1, 1));
    }

    #[test]
    fn spgemm_powers_track_graph_walks() {
        // (adjacency²)[i][j] counts length-2 paths.
        let mut b = CooBuilder::new(3, 3);
        for &(r, c) in &[(0usize, 1usize), (1, 2), (2, 0), (0, 2)] {
            b.push(r, c, 1.0).unwrap();
        }
        let adj = b.build();
        let two = adj.spgemm(&adj).unwrap();
        // Paths of length 2 from 0: 0->1->2 and 0->2->0.
        assert_eq!(two.get(0, 2), 1.0);
        assert_eq!(two.get(0, 0), 1.0);
        assert_eq!(two.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert!(t.to_dense().approx_eq(&m.to_dense().transpose(), 1e-12));
        // Double transpose is the identity.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = Matrix::random_uniform(5, 4, 2);
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert!(s.to_dense().approx_eq(&d, 1e-15));
        // Thresholding drops small entries.
        let s2 = CsrMatrix::from_dense(&Matrix::filled(2, 2, 1e-12), 1e-9);
        assert_eq!(s2.nnz(), 0);
    }

    #[test]
    fn row_normalized_is_stochastic_except_dangling() {
        let m = sample().row_normalized();
        assert!((m.row_sum(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.row_sum(1), 0.0); // dangling row untouched
        assert!((m.row_sum(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_and_scale() {
        let i = CsrMatrix::identity(4);
        let x = Matrix::random_uniform(4, 3, 3);
        assert!(i.spmm(&x).unwrap().approx_eq(&x, 1e-15));
        let half = i.scale(0.5);
        assert_eq!(half.get(2, 2), 0.5);
    }

    #[test]
    fn memory_scales_with_nnz() {
        let small = sample();
        let big = CsrMatrix::identity(100);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
