//! # linview-sparse
//!
//! Sparse matrix and evolving-graph substrate for the LINVIEW reproduction.
//!
//! The paper's motivating workloads — PageRank, reachability, Markov
//! chains — run over *link matrices* of graphs, and its update model ("the
//! Internet activity of a single user … represents only a tiny portion of
//! the collected data") is exactly the evolving-graph setting: an edge
//! insertion changes one row of the transition matrix, i.e. a rank-1
//! update. This crate provides:
//!
//! * [`CooBuilder`] / [`CsrMatrix`] — a compressed-sparse-row kernel with
//!   the operations the PageRank baseline needs (`spmv`, transpose,
//!   row-stochastic normalization);
//! * [`Graph`] — an evolving directed graph whose mutations are exposed
//!   **as factored rank-1 deltas of its transition matrix**, the bridge
//!   between graph streams and the paper's `ΔA = u·vᵀ` update model;
//! * [`pagerank`] — damped power iteration over the sparse transition
//!   matrix, the exact re-evaluation baseline the incremental PageRank
//!   views are validated against.
//!
//! ```
//! use linview_sparse::{Graph, pagerank, PageRankOptions};
//! let mut g = Graph::new(4);
//! for &(s, t) in &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)] {
//!     g.insert_edge(s, t).unwrap();
//! }
//! let pr = pagerank(&g.transition(), &PageRankOptions::default()).unwrap();
//! assert!((pr.scores().iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csr;
mod error;
mod graph;
mod rank;

pub use coo::CooBuilder;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use graph::{EdgeDelta, Graph};
pub use rank::{pagerank, pagerank_warm, PageRank, PageRankOptions};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
