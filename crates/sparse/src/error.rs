use std::fmt;

/// Errors from sparse construction, arithmetic, and graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An index exceeded the declared shape.
    OutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// Declared shape.
        shape: (usize, usize),
    },
    /// Two operands had incompatible shapes.
    DimMismatch {
        /// Operation name.
        op: &'static str,
        /// Left shape.
        lhs: (usize, usize),
        /// Right shape.
        rhs: (usize, usize),
    },
    /// An edge insertion that already exists / removal of a missing edge.
    EdgeConflict {
        /// Source vertex.
        src: usize,
        /// Target vertex.
        dst: usize,
        /// True if the edge was already present on insert.
        existed: bool,
    },
    /// Self-loops are not representable in the PageRank transition model.
    SelfLoop(usize),
    /// An iterative solver exhausted its iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// A dense-kernel error surfaced through the sparse layer.
    Matrix(linview_matrix::MatrixError),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for ({}x{})",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: ({}x{}) vs ({}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::EdgeConflict { src, dst, existed } => {
                if *existed {
                    write!(f, "edge {src} -> {dst} already exists")
                } else {
                    write!(f, "edge {src} -> {dst} does not exist")
                }
            }
            SparseError::SelfLoop(v) => write!(f, "self-loop at vertex {v} is not allowed"),
            SparseError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SparseError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linview_matrix::MatrixError> for SparseError {
    fn from(e: linview_matrix::MatrixError) -> Self {
        SparseError::Matrix(e)
    }
}
