//! Adversarial hardening for the crash-recovery codecs.
//!
//! Checkpoint snapshots and WAL firing records are read back from storage
//! after a crash — exactly the moment the bytes are least trustworthy.
//! These properties pin the contract of [`checkpoint::restore`] and
//! [`FiringRecord::decode`]: **any** input — random garbage, hostile
//! headers, or a valid buffer with bytes flipped, truncated, or appended —
//! yields `Ok` or a typed `RuntimeError::Checkpoint`. Never a panic,
//! arithmetic overflow, or attacker-controlled allocation.

use bytes::{BufMut, Bytes, BytesMut};
use linview_matrix::Matrix;
use linview_runtime::{checkpoint, Env, FiringRecord, RuntimeError};
use proptest::prelude::*;

fn sample_env() -> Env {
    let mut env = Env::new();
    env.bind("A", Matrix::random_uniform(6, 6, 1));
    env.bind("B2", Matrix::random_uniform(6, 2, 2));
    env.bind("beta", Matrix::random_col(6, 3));
    env
}

fn sample_record() -> FiringRecord {
    FiringRecord::joint(vec![
        (
            "A".to_string(),
            Matrix::random_uniform(6, 2, 4),
            Matrix::random_uniform(6, 2, 5),
        ),
        (
            "Y".to_string(),
            Matrix::random_col(6, 6),
            Matrix::random_col(6, 7),
        ),
    ])
}

/// Applies byte flips, a truncation (`cut % (len + 1)`, so a full-length
/// cut is a no-op), and appended garbage to a valid buffer.
fn mutate(base: &Bytes, flips: &[(usize, u32)], cut: usize, tail: &[u8]) -> Bytes {
    let mut buf: Vec<u8> = base[..].to_vec();
    for &(idx, x) in flips {
        let i = idx % buf.len().max(1);
        if i < buf.len() {
            buf[i] ^= x as u8;
        }
    }
    buf.truncate(cut % (buf.len() + 1));
    buf.extend_from_slice(tail);
    Bytes::from(buf)
}

fn assert_typed(err: RuntimeError) {
    assert!(
        matches!(err, RuntimeError::Checkpoint(_)),
        "corruption must surface as a checkpoint error, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the snapshot decoder.
    #[test]
    fn restore_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(0u8..255, 0..256)) {
        if let Err(e) = checkpoint::restore(Bytes::from(data)) {
            assert_typed(e);
        }
    }

    /// Mutations of a *valid* snapshot — the realistic corruption model —
    /// never panic, and either fail typed or decode some environment.
    #[test]
    fn restore_survives_mutated_valid_snapshots(
        flips in proptest::collection::vec((0usize..4096, 1u32..256), 0..6),
        cut in 0usize..4096,
        tail in proptest::collection::vec(0u8..255, 0..16),
    ) {
        let good = checkpoint::save(&sample_env()).unwrap();
        let mutated = mutate(&good, &flips, cut, &tail);
        match checkpoint::restore(mutated) {
            Ok(env) => prop_assert!(env.len() <= sample_env().len()),
            Err(e) => assert_typed(e),
        }
    }

    /// Arbitrary bytes never panic the WAL record decoder.
    #[test]
    fn wal_decode_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(0u8..255, 0..256)) {
        if let Err(e) = FiringRecord::decode(Bytes::from(data)) {
            assert_typed(e);
        }
    }

    /// Mutations of a valid firing record never panic the decoder.
    #[test]
    fn wal_decode_survives_mutated_valid_records(
        flips in proptest::collection::vec((0usize..4096, 1u32..256), 0..6),
        cut in 0usize..4096,
        tail in proptest::collection::vec(0u8..255, 0..16),
    ) {
        let good = sample_record().encode();
        let mutated = mutate(&good, &flips, cut, &tail);
        match FiringRecord::decode(mutated) {
            Ok(rec) => prop_assert!(rec.updates.len() <= 2),
            Err(e) => assert_typed(e),
        }
    }

    /// Hostile length headers (count / name length / huge shapes) must be
    /// rejected by bounds checks before any allocation is sized by them.
    #[test]
    fn restore_rejects_hostile_headers_without_allocating(
        count in 1u32..u32::MAX,
        name_len in 0u32..u32::MAX,
        rows in 0u64..u64::MAX,
        cols in 0u64..u64::MAX,
    ) {
        let mut buf = BytesMut::new();
        buf.put_slice(b"LNVW");
        buf.put_u32_le(1);
        buf.put_u32_le(count);
        buf.put_u32_le(name_len);
        buf.put_slice(b"A");
        buf.put_u64_le(rows);
        buf.put_u64_le(cols);
        if let Err(e) = checkpoint::restore(buf.freeze()) {
            assert_typed(e);
        }
    }
}

/// Round-trip sanity anchoring the properties: untouched buffers decode to
/// exactly what was saved.
#[test]
fn untouched_snapshots_and_records_round_trip() {
    let env = sample_env();
    let back = checkpoint::restore(checkpoint::save(&env).unwrap()).unwrap();
    assert_eq!(back.len(), env.len());
    for (name, m) in env.iter() {
        assert_eq!(back.get(name).unwrap(), m);
    }
    let rec = sample_record();
    assert_eq!(FiringRecord::decode(rec.encode()).unwrap(), rec);
}
