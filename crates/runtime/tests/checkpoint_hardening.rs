//! Adversarial hardening for the crash-recovery codecs.
//!
//! Checkpoint snapshots and WAL firing records are read back from storage
//! after a crash — exactly the moment the bytes are least trustworthy.
//! These properties pin the contract of [`checkpoint::restore`] and
//! [`FiringRecord::decode`]: **any** input — random garbage, hostile
//! headers, or a valid buffer with bytes flipped, truncated, or appended —
//! yields `Ok` or a typed `RuntimeError::Checkpoint`. Never a panic,
//! arithmetic overflow, or attacker-controlled allocation.

use bytes::{BufMut, Bytes, BytesMut};
use linview_matrix::Matrix;
use linview_runtime::{checkpoint, Env, FiringRecord, RuntimeError};
use proptest::prelude::*;

fn sample_env() -> Env {
    let mut env = Env::new();
    env.bind("A", Matrix::random_uniform(6, 6, 1));
    env.bind("B2", Matrix::random_uniform(6, 2, 2));
    env.bind("beta", Matrix::random_col(6, 3));
    env
}

fn sample_record() -> FiringRecord {
    FiringRecord::joint(vec![
        (
            "A".to_string(),
            Matrix::random_uniform(6, 2, 4),
            Matrix::random_uniform(6, 2, 5),
        ),
        (
            "Y".to_string(),
            Matrix::random_col(6, 6),
            Matrix::random_col(6, 7),
        ),
    ])
}

/// Applies byte flips, a truncation (`cut % (len + 1)`, so a full-length
/// cut is a no-op), and appended garbage to a valid buffer.
fn mutate(base: &Bytes, flips: &[(usize, u32)], cut: usize, tail: &[u8]) -> Bytes {
    let mut buf: Vec<u8> = base[..].to_vec();
    for &(idx, x) in flips {
        let i = idx % buf.len().max(1);
        if i < buf.len() {
            buf[i] ^= x as u8;
        }
    }
    buf.truncate(cut % (buf.len() + 1));
    buf.extend_from_slice(tail);
    Bytes::from(buf)
}

fn assert_typed(err: RuntimeError) {
    assert!(
        matches!(err, RuntimeError::Checkpoint(_)),
        "corruption must surface as a checkpoint error, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the snapshot decoder.
    #[test]
    fn restore_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(0u8..255, 0..256)) {
        if let Err(e) = checkpoint::restore(Bytes::from(data)) {
            assert_typed(e);
        }
    }

    /// Mutations of a *valid* snapshot — the realistic corruption model —
    /// never panic, and either fail typed or decode some environment.
    #[test]
    fn restore_survives_mutated_valid_snapshots(
        flips in proptest::collection::vec((0usize..4096, 1u32..256), 0..6),
        cut in 0usize..4096,
        tail in proptest::collection::vec(0u8..255, 0..16),
    ) {
        let good = checkpoint::save(&sample_env()).unwrap();
        let mutated = mutate(&good, &flips, cut, &tail);
        match checkpoint::restore(mutated) {
            Ok(env) => prop_assert!(env.len() <= sample_env().len()),
            Err(e) => assert_typed(e),
        }
    }

    /// Arbitrary bytes never panic the WAL record decoder.
    #[test]
    fn wal_decode_never_panics_on_arbitrary_bytes(data in proptest::collection::vec(0u8..255, 0..256)) {
        if let Err(e) = FiringRecord::decode(Bytes::from(data)) {
            assert_typed(e);
        }
    }

    /// Mutations of a valid firing record never panic the decoder.
    #[test]
    fn wal_decode_survives_mutated_valid_records(
        flips in proptest::collection::vec((0usize..4096, 1u32..256), 0..6),
        cut in 0usize..4096,
        tail in proptest::collection::vec(0u8..255, 0..16),
    ) {
        let good = sample_record().encode();
        let mutated = mutate(&good, &flips, cut, &tail);
        match FiringRecord::decode(mutated) {
            Ok(rec) => prop_assert!(rec.updates.len() <= 2),
            Err(e) => assert_typed(e),
        }
    }

    /// Hostile length headers (count / name length / huge shapes) must be
    /// rejected by bounds checks before any allocation is sized by them.
    #[test]
    fn restore_rejects_hostile_headers_without_allocating(
        count in 1u32..u32::MAX,
        name_len in 0u32..u32::MAX,
        rows in 0u64..u64::MAX,
        cols in 0u64..u64::MAX,
    ) {
        let mut buf = BytesMut::new();
        buf.put_slice(b"LNVW");
        buf.put_u32_le(1);
        buf.put_u32_le(count);
        buf.put_u32_le(name_len);
        buf.put_slice(b"A");
        buf.put_u64_le(rows);
        buf.put_u64_le(cols);
        if let Err(e) = checkpoint::restore(buf.freeze()) {
            assert_typed(e);
        }
    }
}

/// Round-trip sanity anchoring the properties: untouched buffers decode to
/// exactly what was saved.
#[test]
fn untouched_snapshots_and_records_round_trip() {
    let env = sample_env();
    let back = checkpoint::restore(checkpoint::save(&env).unwrap()).unwrap();
    assert_eq!(back.len(), env.len());
    for (name, m) in env.iter() {
        assert_eq!(back.get(name).unwrap(), m);
    }
    let rec = sample_record();
    assert_eq!(FiringRecord::decode(rec.encode()).unwrap(), rec);
}

// ---------------------------------------------------------------------------
// Durable checkpoint + WAL: engine-level crash-restart hardening.
// ---------------------------------------------------------------------------

mod durable {
    use linview_compiler::parse::parse_program;
    use linview_expr::Catalog;
    use linview_matrix::Matrix;
    use linview_runtime::{
        DiskRecovery, FlushPolicy, IncrementalView, MaintenanceEngine, RuntimeError, UpdateStream,
    };
    use std::fs::OpenOptions;
    use std::io::{Read, Seek, SeekFrom, Write};
    use std::path::{Path, PathBuf};

    const N: usize = 8;
    const VIEWS: [&str; 4] = ["A", "B", "C", "D"];

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lv-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_engine() -> MaintenanceEngine<linview_runtime::LocalBackend> {
        let program = parse_program("C := A * B; D := C * C;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", N, N);
        cat.declare("B", N, N);
        let a = Matrix::random_spectral(N, 7, 0.8);
        let b = Matrix::random_spectral(N, 8, 0.8);
        let view = IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap();
        MaintenanceEngine::new(view, FlushPolicy::Count(2))
    }

    fn views_of(engine: &MaintenanceEngine<linview_runtime::LocalBackend>) -> Vec<Matrix> {
        VIEWS
            .iter()
            .map(|v| engine.get(v).unwrap().clone())
            .collect()
    }

    /// Drives `events` rank-1 updates, returning the engine state (all
    /// four matrices) keyed by the WAL length after each firing.
    fn drive_recording_boundaries(
        engine: &mut MaintenanceEngine<linview_runtime::LocalBackend>,
        events: usize,
    ) -> Vec<(u64, Vec<Matrix>)> {
        let mut stream = UpdateStream::new(N, N, 0.01, 71);
        let mut boundaries = vec![(0u64, views_of(engine))];
        for i in 0..events {
            let input = if i % 2 == 0 { "A" } else { "B" };
            engine.ingest(input, stream.next_rank_one()).unwrap();
            // Re-query the path each time: checkpoint rolls start a fresh
            // WAL generation under a new name.
            let wal = engine.durable_wal_path().expect("durable WAL enabled");
            let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
            if len != boundaries.last().unwrap().0 {
                boundaries.push((len, views_of(engine)));
            }
        }
        boundaries
    }

    fn chop(path: &Path, to: u64) {
        let f = OpenOptions::new().write(true).open(path).unwrap();
        f.set_len(to).unwrap();
    }

    /// A crash that cut the WAL tail mid-record loses exactly the torn
    /// record: restart recovers the checkpoint plus every *complete*
    /// record, bit-identical to the pre-crash engine at that boundary.
    #[test]
    fn torn_wal_tail_recovers_last_complete_prefix_bit_identically() {
        let dir = temp_dir("torn");
        let mut engine = fresh_engine();
        // Cadence larger than the run: everything stays in one WAL.
        engine.enable_durable_checkpointing(100, &dir).unwrap();
        let boundaries = drive_recording_boundaries(&mut engine, 16);
        assert!(
            boundaries.len() >= 4,
            "need several firings to make the test meaningful"
        );
        let wal = engine.durable_wal_path().unwrap();
        drop(engine);

        // Tear 3 bytes into the record after the middle boundary.
        let (cut_at, expected) = &boundaries[boundaries.len() / 2];
        chop(&wal, cut_at + 3);

        let mut restarted = fresh_engine();
        let rec = restarted.recover_from_disk(100, &dir).unwrap();
        assert_eq!(rec.torn_tail_bytes, 3, "torn bytes miscounted");
        assert_eq!(
            rec.replayed_firings as usize,
            boundaries.len() / 2,
            "wrong number of surviving records replayed"
        );
        for (name, matrix) in VIEWS.iter().zip(expected) {
            assert_eq!(
                restarted.get(name).unwrap(),
                matrix,
                "{name} diverged from the pre-crash state at the cut"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unharmed directory restores the exact final state, and recovery
    /// rolls a fresh generation so a second restart never replays twice.
    #[test]
    fn crash_restart_roundtrip_is_bit_identical_and_rolls_generation() {
        let dir = temp_dir("roundtrip");
        let mut engine = fresh_engine();
        engine.enable_durable_checkpointing(3, &dir).unwrap();
        drive_recording_boundaries(&mut engine, 14);
        let final_state = views_of(&engine);
        drop(engine);

        let mut restarted = fresh_engine();
        let rec = restarted.recover_from_disk(3, &dir).unwrap();
        assert_eq!(rec.torn_tail_bytes, 0);
        for (name, matrix) in VIEWS.iter().zip(&final_state) {
            assert_eq!(restarted.get(name).unwrap(), matrix, "{name} diverged");
        }

        // The recovered engine keeps maintaining + logging normally into
        // the fresh generation rolled at recovery.
        let mut stream = UpdateStream::new(N, N, 0.01, 99);
        for i in 0..4 {
            let input = if i % 2 == 0 { "A" } else { "B" };
            restarted.ingest(input, stream.next_rank_one()).unwrap();
        }
        let continued_state = views_of(&restarted);
        drop(restarted);

        // A second restart replays exactly the post-recovery firings (4
        // events at batch 2 = 2 firings, below the roll cadence of 3) on
        // top of the rolled checkpoint, landing on the continued state —
        // replay is never paid twice for pre-recovery history.
        let mut again = fresh_engine();
        let rec2 = again.recover_from_disk(3, &dir).unwrap();
        assert_eq!(
            rec2,
            DiskRecovery {
                replayed_firings: 2,
                torn_tail_bytes: 0
            },
            "second restart must replay only the post-recovery WAL"
        );
        for (name, matrix) in VIEWS.iter().zip(&continued_state) {
            assert_eq!(again.get(name).unwrap(), matrix, "{name} diverged twice");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Mid-file corruption (a *complete* record that fails to decode) is
    /// a typed checkpoint error at the engine level — recovery refuses to
    /// guess, and the file is left intact for forensics.
    #[test]
    fn mid_file_wal_corruption_is_a_typed_error() {
        let dir = temp_dir("midfile");
        let mut engine = fresh_engine();
        engine.enable_durable_checkpointing(100, &dir).unwrap();
        let boundaries = drive_recording_boundaries(&mut engine, 12);
        assert!(boundaries.len() >= 3);
        let wal = engine.durable_wal_path().unwrap();
        drop(engine);

        // Flip a byte *inside* the first record's payload (offset 6: past
        // the 4-byte length prefix, inside the record header).
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&wal)
            .unwrap();
        let mut byte = [0u8; 1];
        f.seek(SeekFrom::Start(6)).unwrap();
        f.read_exact(&mut byte).unwrap();
        byte[0] ^= 0xFF;
        f.seek(SeekFrom::Start(6)).unwrap();
        f.write_all(&byte).unwrap();
        drop(f);
        let len_before = std::fs::metadata(&wal).unwrap().len();

        let mut restarted = fresh_engine();
        match restarted.recover_from_disk(100, &dir) {
            Err(RuntimeError::Checkpoint(_)) => {}
            other => panic!("expected a typed checkpoint error, got {other:?}"),
        }
        assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            len_before,
            "corrupt WAL must be preserved for forensics, not truncated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
