//! Versioned view snapshots: the wait-free read path under live maintenance.
//!
//! The paper maintains views so they can be *read*; this module is the
//! CQRS-style separation between the write path (trigger firings inside
//! [`IncrementalView`](crate::IncrementalView) /
//! [`MaintenanceEngine`](crate::MaintenanceEngine)) and a read path that
//! never blocks it. Every flush round the maintainer finishes, it builds an
//! immutable epoch-stamped [`ViewSnapshot`] of all maintained matrices
//! *outside* any lock and swaps it in with a single pointer-width store.
//! Readers go through a cloneable [`ViewHandle`]: acquiring a snapshot is
//! one `Arc` clone under a read lock whose critical section contains no
//! allocation, no copying, and no matrix work — readers are wait-free in
//! practice and can never hold up a trigger firing, and every snapshot is
//! round-consistent (a reader observes a state the engine actually passed
//! through, never a torn mid-stage mixture).
//!
//! Epochs count state-changing events on the maintained view — trigger
//! firings and checkpoint restores — since serving was enabled. A handle's
//! [`ViewHandle::staleness`] is `rounds − published_epoch`: how many rounds
//! the published snapshot trails the live view, which is bounded by the
//! publish cadence (`every − 1` in steady state).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use linview_matrix::{Matrix, MatrixError};

use crate::{Env, Result, RuntimeError};

/// One immutable, epoch-stamped copy of every maintained matrix (inputs
/// and views) as of a completed flush round.
///
/// Snapshots are shared via `Arc` and never mutated after publication, so
/// any number of readers can hold one at zero coordination cost while the
/// engine keeps firing triggers against the live environment.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSnapshot {
    epoch: u64,
    views: BTreeMap<String, Matrix>,
}

impl ViewSnapshot {
    fn capture(epoch: u64, env: &Env) -> ViewSnapshot {
        let views = env
            .iter()
            .map(|(name, m)| (name.to_string(), m.clone()))
            .collect();
        ViewSnapshot { epoch, views }
    }

    fn empty() -> ViewSnapshot {
        ViewSnapshot {
            epoch: 0,
            views: BTreeMap::new(),
        }
    }

    /// The round count this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Names of the matrices in the snapshot, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// A whole maintained matrix.
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.views
            .get(name)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// Point read `view[r][c]`, bounds-checked.
    pub fn point(&self, name: &str, r: usize, c: usize) -> Result<f64> {
        Ok(self.get(name)?.try_get(r, c)?)
    }

    /// Borrow of row `r`, bounds-checked.
    pub fn row(&self, name: &str, r: usize) -> Result<&[f64]> {
        let m = self.get(name)?;
        if r >= m.rows() {
            return Err(MatrixError::OutOfBounds {
                index: (r, 0),
                shape: m.shape(),
            }
            .into());
        }
        Ok(m.row(r))
    }

    /// Copy of the `h × w` block at `(r0, c0)`, bounds-checked.
    pub fn submatrix(
        &self,
        name: &str,
        r0: usize,
        c0: usize,
        h: usize,
        w: usize,
    ) -> Result<Matrix> {
        Ok(self.get(name)?.submatrix(r0, c0, h, w)?)
    }
}

/// State shared between the maintainer-side publisher and every handle.
#[derive(Debug)]
struct Shared {
    /// The latest published snapshot. The lock guards only the `Arc`
    /// pointer: readers clone it, the publisher swaps it — the snapshot
    /// itself is built outside the lock.
    current: RwLock<Arc<ViewSnapshot>>,
    /// Epoch of the snapshot in `current`, mirrored for lock-free
    /// `epoch()` / `staleness()` queries.
    published: AtomicU64,
    /// Rounds (firings + restores) applied to the live view so far.
    rounds: AtomicU64,
}

/// The maintainer-side half of the serving layer: owned by
/// [`IncrementalView`](crate::IncrementalView), it counts flush rounds and
/// publishes a fresh [`ViewSnapshot`] every `every` rounds.
///
/// Cloning shares the published state (clones of a serving view publish to
/// the same readers).
#[derive(Debug, Clone)]
pub struct SnapshotPublisher {
    shared: Arc<Shared>,
    every: u64,
}

impl SnapshotPublisher {
    /// A publisher that re-publishes every `every` completed rounds
    /// (`0` behaves like `1`: publish after every round). The initial
    /// snapshot is empty until the first [`SnapshotPublisher::publish`].
    pub fn new(every: u64) -> SnapshotPublisher {
        SnapshotPublisher {
            shared: Arc::new(Shared {
                current: RwLock::new(Arc::new(ViewSnapshot::empty())),
                published: AtomicU64::new(0),
                rounds: AtomicU64::new(0),
            }),
            every: every.max(1),
        }
    }

    /// A reader handle onto the published snapshots. Cheap; clone freely
    /// across threads.
    pub fn handle(&self) -> ViewHandle {
        ViewHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The publish cadence in rounds.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Builds a snapshot of `env` at the current round count and swaps it
    /// in. The copy happens before the lock is taken; the write lock is
    /// held only for the pointer swap.
    pub fn publish(&self, env: &Env) {
        let epoch = self.shared.rounds.load(Ordering::Acquire);
        let snap = Arc::new(ViewSnapshot::capture(epoch, env));
        let mut slot = self
            .shared
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = snap;
        self.shared.published.store(epoch, Ordering::Release);
    }

    /// Records one completed flush round and republishes when the cadence
    /// (or `force`, e.g. after a restore) says so.
    pub fn round_completed(&self, env: &Env, force: bool) {
        let rounds = self.shared.rounds.fetch_add(1, Ordering::AcqRel) + 1;
        let published = self.shared.published.load(Ordering::Acquire);
        if force || rounds - published >= self.every {
            self.publish(env);
        }
    }
}

/// A cloneable, thread-safe reader onto the published snapshots of one
/// maintained view.
///
/// All reads are against the latest *published* snapshot; use
/// [`ViewHandle::staleness`] to see how far it trails the live view.
#[derive(Debug, Clone)]
pub struct ViewHandle {
    shared: Arc<Shared>,
}

impl ViewHandle {
    /// The latest published snapshot. One `Arc` clone under a read lock —
    /// no copying, no allocation — so this never blocks maintenance.
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        Arc::clone(
            &self
                .shared
                .current
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Epoch of the latest published snapshot (lock-free).
    pub fn epoch(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }

    /// Rounds the live view has completed (lock-free).
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Acquire)
    }

    /// How many rounds the published snapshot trails the live view, in
    /// rounds-behind. Bounded by `publish cadence − 1` in steady state.
    pub fn staleness(&self) -> u64 {
        let rounds = self.rounds();
        rounds.saturating_sub(self.epoch())
    }

    /// Point read against the latest snapshot.
    pub fn point(&self, name: &str, r: usize, c: usize) -> Result<f64> {
        self.snapshot().point(name, r, c)
    }

    /// Row copy against the latest snapshot.
    pub fn row(&self, name: &str, r: usize) -> Result<Vec<f64>> {
        Ok(self.snapshot().row(name, r)?.to_vec())
    }

    /// Submatrix copy against the latest snapshot.
    pub fn submatrix(
        &self,
        name: &str,
        r0: usize,
        c0: usize,
        h: usize,
        w: usize,
    ) -> Result<Matrix> {
        self.snapshot().submatrix(name, r0, c0, h, w)
    }
}

/// What one closed-loop reader observed: read counts, sampled latencies,
/// the worst staleness it saw, and whether epochs were monotone.
#[derive(Debug, Clone, Default)]
pub struct ReaderReport {
    /// Snapshot reads performed (each read = acquire snapshot + one
    /// point/row/submatrix access).
    pub reads: u64,
    /// Worst `staleness()` observed across all reads.
    pub max_staleness: u64,
    /// Whether every observed epoch was ≥ the previous one. Snapshots are
    /// swapped atomically, so a non-monotone sequence is a serving bug.
    pub epochs_monotone: bool,
    /// Sampled per-read latencies in nanoseconds (every read up to 65 536
    /// samples, then every 32nd).
    pub latencies_ns: Vec<u64>,
}

impl ReaderReport {
    /// Folds another reader's report into this one.
    pub fn merge(&mut self, other: &ReaderReport) {
        self.reads += other.reads;
        self.max_staleness = self.max_staleness.max(other.max_staleness);
        self.epochs_monotone &= other.epochs_monotone;
        self.latencies_ns.extend_from_slice(&other.latencies_ns);
    }
}

/// The `p`-th percentile (0–100) of `samples`, in place; 0 when empty.
pub fn percentile_ns(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// Cap on per-reader latency samples before decimation kicks in.
const LATENCY_SAMPLE_CAP: usize = 65_536;

/// A closed-loop population of reader threads hammering one
/// [`ViewHandle`] with a rotating point/row/submatrix mix until stopped.
///
/// Shared by `linview serve`, the serving bench table, and the stress
/// tests, so all three measure the same read loop.
#[derive(Debug)]
pub struct ReaderPool {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<ReaderReport>>,
}

impl ReaderPool {
    /// Spawns `readers` threads over clones of `handle`. Each thread reads
    /// the views named in `views` (when empty, whatever the first observed
    /// snapshot contains) in a deterministic rotation of point, row, and
    /// submatrix accesses.
    pub fn spawn(handle: &ViewHandle, readers: usize, views: &[String]) -> ReaderPool {
        let stop = Arc::new(AtomicBool::new(false));
        let threads = (0..readers)
            .map(|id| {
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                let views = views.to_vec();
                std::thread::spawn(move || reader_loop(id, &handle, &stop, views))
            })
            .collect();
        ReaderPool { stop, threads }
    }

    /// Signals every reader to finish and collects their reports. Readers
    /// whose thread panicked yield a report with `epochs_monotone: false`.
    pub fn stop(self) -> Vec<ReaderReport> {
        self.stop.store(true, Ordering::Release);
        self.threads
            .into_iter()
            .map(|t| {
                t.join().unwrap_or(ReaderReport {
                    reads: 0,
                    max_staleness: 0,
                    epochs_monotone: false,
                    latencies_ns: Vec::new(),
                })
            })
            .collect()
    }
}

fn reader_loop(
    id: usize,
    handle: &ViewHandle,
    stop: &AtomicBool,
    mut views: Vec<String>,
) -> ReaderReport {
    let mut report = ReaderReport {
        epochs_monotone: true,
        ..ReaderReport::default()
    };
    let mut last_epoch = 0u64;
    let mut i = id as u64; // desynchronize the rotation across readers
    while !stop.load(Ordering::Acquire) {
        let start = Instant::now();
        let snap = handle.snapshot();
        if views.is_empty() {
            views = snap.names().iter().map(|s| s.to_string()).collect();
            if views.is_empty() {
                continue; // nothing published yet
            }
        }
        let name = &views[(i % views.len() as u64) as usize];
        if let Ok(m) = snap.get(name) {
            let (rows, cols) = m.shape();
            if rows > 0 && cols > 0 {
                let r = (i % rows as u64) as usize;
                let c = (i % cols as u64) as usize;
                let touched = match i % 3 {
                    0 => m.get(r, c),
                    1 => m.row(r).iter().sum::<f64>(),
                    _ => {
                        let h = 4.min(rows - r);
                        let w = 4.min(cols - c);
                        m.submatrix(r, c, h, w)
                            .map(|b| b.as_slice().iter().sum::<f64>())
                            .unwrap_or(0.0)
                    }
                };
                std::hint::black_box(touched);
            }
        }
        let epoch = snap.epoch();
        if epoch < last_epoch {
            report.epochs_monotone = false;
        }
        last_epoch = epoch;
        report.max_staleness = report.max_staleness.max(handle.staleness());
        report.reads += 1;
        let lat = start.elapsed().as_nanos() as u64;
        if report.latencies_ns.len() < LATENCY_SAMPLE_CAP || report.reads.is_multiple_of(32) {
            if report.latencies_ns.len() < LATENCY_SAMPLE_CAP {
                report.latencies_ns.push(lat);
            } else {
                let slot = (report.reads % LATENCY_SAMPLE_CAP as u64) as usize;
                report.latencies_ns[slot] = lat;
            }
        }
        i += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(n: usize, seed: u64) -> Env {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(n, n, seed));
        env.bind("B", Matrix::random_uniform(n, n, seed + 1));
        env
    }

    #[test]
    fn snapshots_are_immutable_and_epoch_stamped() {
        let publisher = SnapshotPublisher::new(1);
        let handle = publisher.handle();
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.staleness(), 0);

        let env = env_with(4, 1);
        publisher.publish(&env);
        let first = handle.snapshot();
        assert_eq!(first.epoch(), 0);
        assert_eq!(first.get("A").unwrap(), env.get("A").unwrap());

        let env2 = env_with(4, 9);
        publisher.round_completed(&env2, false);
        let second = handle.snapshot();
        assert_eq!(second.epoch(), 1);
        assert_eq!(handle.epoch(), 1);
        // The old snapshot is untouched by the new publication.
        assert_eq!(first.get("A").unwrap(), env.get("A").unwrap());
        assert_eq!(second.get("A").unwrap(), env2.get("A").unwrap());
    }

    #[test]
    fn cadence_bounds_staleness() {
        let publisher = SnapshotPublisher::new(3);
        let handle = publisher.handle();
        let env = env_with(3, 2);
        publisher.publish(&env);
        for round in 1..=7 {
            publisher.round_completed(&env, false);
            assert!(
                handle.staleness() < 3,
                "staleness {} at round {round} exceeds cadence",
                handle.staleness()
            );
        }
        // Rounds 3 and 6 published; round 7 is one behind.
        assert_eq!(handle.epoch(), 6);
        assert_eq!(handle.staleness(), 1);
    }

    #[test]
    fn reads_are_bounds_checked_and_named() {
        let publisher = SnapshotPublisher::new(1);
        let env = env_with(4, 3);
        publisher.publish(&env);
        let handle = publisher.handle();
        assert_eq!(
            handle.point("A", 1, 2).unwrap(),
            env.get("A").unwrap().get(1, 2)
        );
        assert_eq!(handle.row("B", 3).unwrap(), env.get("B").unwrap().row(3));
        let block = handle.submatrix("A", 1, 1, 2, 2).unwrap();
        assert_eq!(block.get(0, 0), env.get("A").unwrap().get(1, 1));
        assert!(handle.point("A", 9, 0).is_err());
        assert!(handle.row("A", 9).is_err());
        assert!(handle.submatrix("A", 3, 3, 4, 4).is_err());
        assert!(matches!(
            handle.point("nope", 0, 0),
            Err(RuntimeError::Unbound(_))
        ));
        assert_eq!(handle.snapshot().names(), vec!["A", "B"]);
    }

    #[test]
    fn reader_pool_reads_and_observes_monotone_epochs() {
        let publisher = SnapshotPublisher::new(1);
        let env = env_with(8, 4);
        publisher.publish(&env);
        let handle = publisher.handle();
        let pool = ReaderPool::spawn(&handle, 3, &["A".to_string(), "B".to_string()]);
        for _ in 0..50 {
            publisher.round_completed(&env, false);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let reports = pool.stop();
        assert_eq!(reports.len(), 3);
        let mut total = ReaderReport {
            epochs_monotone: true,
            ..ReaderReport::default()
        };
        for r in &reports {
            total.merge(r);
        }
        assert!(total.reads > 0, "readers must make progress");
        assert!(total.epochs_monotone, "epochs regressed");
        assert!(!total.latencies_ns.is_empty());
        let p50 = percentile_ns(&mut total.latencies_ns.clone(), 50.0);
        let p99 = percentile_ns(&mut total.latencies_ns, 99.0);
        assert!(p99 >= p50);
    }

    #[test]
    fn percentiles_handle_edges() {
        assert_eq!(percentile_ns(&mut [], 50.0), 0);
        assert_eq!(percentile_ns(&mut [7], 99.0), 7);
        let mut xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&mut xs, 0.0), 1);
        assert_eq!(percentile_ns(&mut xs, 100.0), 100);
    }
}
