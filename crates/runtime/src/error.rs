use linview_dist::ClusterError;
use linview_expr::ExprError;
use linview_matrix::MatrixError;
use std::fmt;

use crate::checkpoint::CheckpointError;

/// Errors produced while executing programs and triggers.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A matrix kernel failed (shape mismatch, singular matrix, …).
    Matrix(MatrixError),
    /// Symbolic analysis failed (unknown variable, non-conforming dims, …).
    Expr(ExprError),
    /// A variable was read before being bound in the environment.
    Unbound(String),
    /// The Sherman–Morrison denominator `1 + vᵀ W u` vanished — the updated
    /// matrix is (numerically) singular and the inverse view cannot be
    /// maintained incrementally for this update.
    ShermanMorrisonSingular {
        /// Which rank-1 step failed.
        step: usize,
        /// The offending denominator value.
        denominator: f64,
    },
    /// An update's shape does not match the target matrix.
    UpdateShape {
        /// Target matrix shape.
        target: (usize, usize),
        /// Update factor shapes `(u, v)`.
        update: ((usize, usize), (usize, usize)),
    },
    /// The threaded backend's message-passing transport failed (a worker
    /// thread died, or a reply frame was malformed).
    Transport(String),
    /// A checkpoint could not be saved, or a snapshot failed its integrity
    /// checks on restore.
    Checkpoint(CheckpointError),
    /// A worker count could not form the square cluster grid.
    Cluster(ClusterError),
    /// A convergence-threshold iteration exhausted its iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Wrapper variants print a short label only; the wrapped error
            // is exposed via `source()` so chain-walking renderers (the
            // CLI's `render_error`) print it exactly once as a cause.
            RuntimeError::Matrix(_) => write!(f, "matrix kernel error"),
            RuntimeError::Expr(_) => write!(f, "expression error"),
            RuntimeError::Unbound(v) => write!(f, "unbound matrix variable '{v}'"),
            RuntimeError::ShermanMorrisonSingular { step, denominator } => write!(
                f,
                "Sherman-Morrison step {step} hit a singular update (denominator {denominator:e})"
            ),
            RuntimeError::UpdateShape { target, update } => write!(
                f,
                "update factors {:?} do not conform to target ({}x{})",
                update, target.0, target.1
            ),
            RuntimeError::Transport(what) => write!(f, "transport error: {what}"),
            RuntimeError::Checkpoint(_) => write!(f, "checkpoint error"),
            RuntimeError::Cluster(_) => write!(f, "cluster layout error"),
            RuntimeError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Matrix(e) => Some(e),
            RuntimeError::Expr(e) => Some(e),
            RuntimeError::Checkpoint(e) => Some(e),
            RuntimeError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for RuntimeError {
    fn from(e: CheckpointError) -> Self {
        RuntimeError::Checkpoint(e)
    }
}

impl From<ClusterError> for RuntimeError {
    fn from(e: ClusterError) -> Self {
        RuntimeError::Cluster(e)
    }
}

impl From<MatrixError> for RuntimeError {
    fn from(e: MatrixError) -> Self {
        RuntimeError::Matrix(e)
    }
}

impl From<ExprError> for RuntimeError {
    fn from(e: ExprError) -> Self {
        RuntimeError::Expr(e)
    }
}
