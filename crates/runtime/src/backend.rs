//! Pluggable trigger-execution backends.
//!
//! The paper's central claim is that one compiled trigger program can drive
//! view maintenance *anywhere* — in-process (§4/§5) or on a cluster with
//! bounded communication (§6). [`ExecBackend`] is that claim as a trait:
//! the statement interpreter in `exec` is shared verbatim by every backend,
//! and only the final "fold `ΔX = U Vᵀ` into the view" step — the one
//! operation whose *locality* differs between deployments — is virtual.
//!
//! * [`LocalBackend`] — dense in-process views; a delta is a rank-k GEMM
//!   into the environment's matrix.
//! * [`DistBackend`] — grid-partitioned views over the `linview-dist`
//!   simulated cluster; a delta broadcasts its skinny factors to the
//!   workers (metered) while a coordinator mirror stays in sync for the
//!   trigger's subsequent block evaluations.
//! * [`ThreadedBackend`] — the same grid partitioning with **real**
//!   message passing: one long-lived worker thread per partition owns its
//!   blocks, and every factor broadcast is serialized into a byte frame
//!   and moved over a channel. `CommStats` counts the frames actually
//!   sent, not analytical estimates.
//! * [`SocketBackend`] — the same frame protocol over TCP or Unix
//!   sockets to out-of-process `linview worker` peers; both are
//!   instantiations of the transport-generic [`FrameBackend`].

use std::collections::BTreeMap;

use linview_compiler::{JointTrigger, Trigger};
use linview_dist::{
    delta_frame, dist_add_low_rank_sparse, factor_prefers_sparse, factor_wire_bytes,
    sparse_delta_frame, transport::TransportError, ChannelTransport, Cluster, CommSnapshot,
    DistMatrix, FramePool, PeerAddr, SocketConfig, SocketTransport, Transport, WorkerPool,
};
use linview_matrix::{fold_low_rank, Matrix};

use crate::exec::{FiringReport, SparseStats, StageDelta};
use crate::{Env, Evaluator, ExecOptions, Result, RuntimeError};

/// Scheduling telemetry a backend accumulates while executing stages.
///
/// Only the *distribution* backends keep counters (the stage structure
/// itself is reported per firing through
/// [`FiringReport`](crate::FiringReport)); `overlapped` is the
/// acceptance metric for coordinator-side pipelining — broadcasts that
/// left the coordinator while an earlier broadcast of the same stage was
/// still in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// `apply_stage` rounds that folded ≥ 2 independent deltas at once.
    pub merged_rounds: u64,
    /// Deltas whose broadcast (or GEMM) overlapped an earlier one in the
    /// same stage: `Σ max(stage deltas − 1, 0)`.
    pub overlapped: u64,
}

/// Where (and how) compiled triggers execute.
///
/// Implementors supply the backend-specific delta application; trigger and
/// joint-trigger firing are provided methods that route through the single
/// shared statement interpreter, so the compute phase (block evaluation,
/// Sherman–Morrison, recompression) cannot diverge between backends.
pub trait ExecBackend: std::fmt::Debug {
    /// Short human-readable backend name (reports, CLI output).
    fn name(&self) -> &'static str;

    /// Called once after the view environment is fully materialized — and
    /// again after a checkpoint restore — so the backend can mirror the
    /// state it needs (e.g. partition every view across the cluster).
    fn materialize(&mut self, env: &Env) -> Result<()>;

    /// Folds the factored delta `ΔX = U Vᵀ` into view `target` — the
    /// single-delta backend-specific step of trigger execution. With
    /// `sparse` set, folds route through the density cost model (and
    /// distributed factor broadcasts may go out compressed); either way the
    /// result is bit-identical. Returns the fold-path and wire accounting
    /// of the application; rank-0 deltas are uncounted no-ops.
    fn apply_delta(
        &mut self,
        env: &mut Env,
        target: &str,
        u: &Matrix,
        v: &Matrix,
        sparse: bool,
    ) -> Result<SparseStats>;

    /// Folds one **stage** of provably independent deltas (pairwise
    /// distinct targets, guaranteed by the compile-time DAG). The default
    /// applies them one at a time in statement order; backends override to
    /// exploit the independence — threaded GEMMs into disjoint slots,
    /// merged broadcast rounds, pipelined frames. Every override must stay
    /// bit-identical to the sequential fold.
    fn apply_stage(
        &mut self,
        env: &mut Env,
        deltas: &[StageDelta],
        sparse: bool,
    ) -> Result<SparseStats> {
        let mut stats = SparseStats::default();
        for d in deltas {
            stats.merge(self.apply_delta(env, &d.target, &d.u, &d.v, sparse)?);
        }
        Ok(stats)
    }

    /// Fires `trigger` for the factored input update `ΔX = du · dvᵀ`
    /// through the shared (staged) statement interpreter, reporting the
    /// stage structure the firing executed.
    fn fire_trigger(
        &mut self,
        env: &mut Env,
        evaluator: &Evaluator,
        trigger: &Trigger,
        du: &Matrix,
        dv: &Matrix,
        opts: &ExecOptions,
    ) -> Result<FiringReport> {
        crate::exec::fire_trigger_on(self, env, evaluator, trigger, du, dv, opts)
    }

    /// Fires a joint trigger for simultaneous factored updates to all of
    /// its inputs (§4.4), again through the shared interpreter.
    fn fire_joint_trigger(
        &mut self,
        env: &mut Env,
        evaluator: &Evaluator,
        joint: &JointTrigger,
        updates: &[(&str, &Matrix, &Matrix)],
        opts: &ExecOptions,
    ) -> Result<FiringReport> {
        crate::exec::fire_joint_trigger_on(self, env, evaluator, joint, updates, opts)
    }

    /// Cumulative stage-scheduling counters (merged rounds, overlapped
    /// broadcasts). Zero for backends that keep none.
    fn sched(&self) -> SchedSnapshot {
        SchedSnapshot::default()
    }

    /// Zeroes the scheduling counters, returning the prior snapshot.
    fn reset_sched(&mut self) -> SchedSnapshot {
        SchedSnapshot::default()
    }

    /// Bytes the backend holds *beyond* the coordinator environment
    /// (partitioned replicas, caches); zero for purely local execution.
    fn extra_memory_bytes(&self) -> usize {
        0
    }

    /// Cumulative communication since construction or the last reset.
    /// Local execution moves no bytes.
    fn comm(&self) -> CommSnapshot {
        CommSnapshot::default()
    }

    /// Zeroes the communication counters, returning the prior snapshot.
    fn reset_comm(&self) -> CommSnapshot {
        CommSnapshot::default()
    }
}

/// In-process execution: views are dense matrices in the [`Env`], and a
/// delta is a rank-k GEMM (`X += U Vᵀ`, `O(k·|X|)`) routed — like every
/// dense product in the system — through the process-wide
/// [`GemmKernel`](linview_matrix::GemmKernel) dispatch (packed
/// register-blocked microkernel by default, `LINVIEW_GEMM` /
/// `LINVIEW_THREADS` overridable). Skinny delta products with
/// `k ≤` [`linview_matrix::RANK_K_MAX_K`] take the matrix crate's
/// dedicated rank-k fast path, which skips the packing pipeline entirely
/// while staying bit-identical to the general nest.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalBackend;

impl ExecBackend for LocalBackend {
    fn name(&self) -> &'static str {
        "local"
    }

    fn materialize(&mut self, _env: &Env) -> Result<()> {
        Ok(())
    }

    fn apply_delta(
        &mut self,
        env: &mut Env,
        target: &str,
        u: &Matrix,
        v: &Matrix,
        sparse: bool,
    ) -> Result<SparseStats> {
        if u.cols() == 0 {
            env.get_mut(target)?; // target must still exist
            return Ok(SparseStats::default()); // rank-0: uncounted no-op
        }
        let path = fold_low_rank(env.get_mut(target)?, u, v, sparse)?;
        Ok(SparseStats::from_path(path))
    }

    /// A multi-delta stage folds every rank-k GEMM concurrently: the
    /// targets are pairwise distinct, so [`Env::get_many_mut`] hands one
    /// worker thread exclusive access to each view. Disjoint memory means
    /// the result is bit-identical to the sequential fold regardless of
    /// scheduling. Small stages (every target under the parallel
    /// threshold) fold inline — spawn overhead would dominate.
    fn apply_stage(
        &mut self,
        env: &mut Env,
        deltas: &[StageDelta],
        sparse: bool,
    ) -> Result<SparseStats> {
        let heavy = crate::exec::multi_core()
            && deltas.iter().any(|d| {
                env.get(&d.target)
                    .is_ok_and(|m| m.len() >= crate::exec::PARALLEL_MIN_ELEMS)
            });
        if deltas.len() < 2 || !heavy {
            let mut stats = SparseStats::default();
            for d in deltas {
                stats.merge(self.apply_delta(env, &d.target, &d.u, &d.v, sparse)?);
            }
            return Ok(stats);
        }
        let names: Vec<&str> = deltas.iter().map(|d| d.target.as_str()).collect();
        let slots = env.get_many_mut(&names)?;
        let results: Vec<Result<SparseStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .into_iter()
                .zip(deltas)
                .map(|(slot, d)| {
                    scope.spawn(move || -> Result<SparseStats> {
                        if d.u.cols() == 0 {
                            return Ok(SparseStats::default());
                        }
                        let path = fold_low_rank(slot, &d.u, &d.v, sparse)?;
                        Ok(SparseStats::from_path(path))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stage delta thread panicked"))
                .collect()
        });
        let mut stats = SparseStats::default();
        for r in results {
            stats.merge(r?);
        }
        Ok(stats)
    }
}

/// Distributed execution over the simulated cluster (§6).
///
/// Every materialized view is grid-partitioned into a [`DistMatrix`]. The
/// trigger's compute phase runs on the coordinator against a dense mirror
/// (factors are `O(kn)`-sized); each delta then broadcasts its factors so
/// workers update their own blocks with **no shuffle**, and the mirror is
/// folded forward so later statements of the same firing see post-delta
/// state. Every byte moved is metered on the cluster's `CommStats`.
#[derive(Debug)]
pub struct DistBackend {
    cluster: Cluster,
    views: BTreeMap<String, DistMatrix>,
    sched: SchedSnapshot,
}

impl DistBackend {
    /// A backend over a square grid of `workers` (must be a perfect
    /// square; every partitioned dimension must divide the grid side).
    pub fn new(workers: usize) -> Result<Self> {
        Ok(Self::with_cluster(
            Cluster::try_new(workers).map_err(RuntimeError::Cluster)?,
        ))
    }

    /// A backend over an existing (possibly rectangular) cluster.
    pub fn with_cluster(cluster: Cluster) -> Self {
        DistBackend {
            cluster,
            views: BTreeMap::new(),
            sched: SchedSnapshot::default(),
        }
    }

    /// Gathers a partitioned view back to a dense matrix.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        self.views
            .get(name)
            .map(DistMatrix::to_dense)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// The partitioned form of a view.
    pub fn dist_view(&self, name: &str) -> Option<&DistMatrix> {
        self.views.get(name)
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl ExecBackend for DistBackend {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn materialize(&mut self, env: &Env) -> Result<()> {
        // Build the full partition set before committing, so a failure
        // (e.g. an indivisible dimension) leaves the previous partitions —
        // and therefore the owning view — untouched.
        let mut views = BTreeMap::new();
        for (name, m) in env.iter() {
            let dm =
                DistMatrix::from_dense_grid(m, self.cluster.grid_rows(), self.cluster.grid_cols())
                    .map_err(RuntimeError::Matrix)?;
            views.insert(name.to_string(), dm);
        }
        self.views = views;
        Ok(())
    }

    fn apply_delta(
        &mut self,
        env: &mut Env,
        target: &str,
        u: &Matrix,
        v: &Matrix,
        sparse: bool,
    ) -> Result<SparseStats> {
        let dm = self
            .views
            .get_mut(target)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{target}'")))?;
        // Broadcast + block-local worker updates (metered; compressed
        // factor payloads when sparse execution is on). Shape checks run
        // even for rank-0 deltas, which are otherwise uncounted no-ops.
        dist_add_low_rank_sparse(dm, u, v, &self.cluster, sparse, sparse)
            .map_err(RuntimeError::Matrix)?;
        if u.cols() == 0 {
            env.get_mut(target)?;
            return Ok(SparseStats::default());
        }
        // Keep the coordinator mirror in sync for subsequent statements;
        // the mirror fold is the one coordinator-visible fold this apply
        // counts.
        let path = fold_low_rank(env.get_mut(target)?, u, v, sparse)?;
        let mut stats = SparseStats::from_path(path);
        // Wire accounting against the dense analytic model, mirroring the
        // compression predicate `factor_wire_bytes` applied per factor.
        if sparse && (factor_prefers_sparse(u) || factor_prefers_sparse(v)) {
            let dense = 8 * (u.len() + v.len()) as u64;
            let wire = factor_wire_bytes(u, true) + factor_wire_bytes(v, true);
            stats.compressed_frames = 1;
            stats.bytes_saved = self.cluster.workers() as u64 * (dense - wire);
        }
        Ok(stats)
    }

    /// A stage is **one merged broadcast round**: every factor pair of the
    /// stage is metered as part of the same round (same bytes and message
    /// counts as sequential — the merge buys latency, not volume), and the
    /// simulated workers fold the deltas in statement order so partitions
    /// stay bit-identical to the sequential path. Only rank-positive
    /// deltas that actually applied count toward the round — mirroring
    /// what [`ThreadedBackend`] counts as sent frames, so the two
    /// backends' [`SchedSnapshot`]s stay comparable.
    fn apply_stage(
        &mut self,
        env: &mut Env,
        deltas: &[StageDelta],
        sparse: bool,
    ) -> Result<SparseStats> {
        let mut sent = 0u64;
        let mut stats = SparseStats::default();
        for d in deltas {
            stats.merge(self.apply_delta(env, &d.target, &d.u, &d.v, sparse)?);
            if d.u.cols() > 0 {
                sent += 1;
            }
        }
        if sent >= 2 {
            self.sched.merged_rounds += 1;
            self.sched.overlapped += sent - 1;
        }
        Ok(stats)
    }

    fn extra_memory_bytes(&self) -> usize {
        self.views
            .values()
            .map(|dm| dm.rows() * dm.cols() * std::mem::size_of::<f64>())
            .sum()
    }

    fn comm(&self) -> CommSnapshot {
        self.cluster.comm().snapshot()
    }

    fn reset_comm(&self) -> CommSnapshot {
        self.cluster.comm().reset()
    }

    fn sched(&self) -> SchedSnapshot {
        self.sched
    }

    fn reset_sched(&mut self) -> SchedSnapshot {
        std::mem::take(&mut self.sched)
    }
}

/// Distributed execution over **real** message passing (§6, without the
/// simulation shortcut), generic over *where the frames go*.
///
/// Like [`DistBackend`], every materialized view is grid-partitioned and
/// the trigger's compute phase runs on the coordinator against a dense
/// mirror. Unlike it, the partitions live behind a [`Transport`]: every
/// delta application serializes the factored update into a byte frame and
/// broadcasts it to one worker per grid cell. Workers decode, slice their
/// own rows, and fold the update into the blocks they own; nothing is
/// shared. `CommStats` therefore counts the exact length of every frame
/// moved.
///
/// The two shipped instantiations are
///
/// * [`ThreadedBackend`] — [`ChannelTransport`]: long-lived worker
///   *threads* in this process, frames moved over bounded channels;
/// * [`SocketBackend`] — [`SocketTransport`]: worker *processes* reached
///   over TCP or Unix sockets (`linview worker`), frames length-prefixed
///   on the wire.
///
/// Reads of worker state ([`FrameBackend::view`]) gather the blocks
/// back over the same transport and double as a barrier: FIFO frame order
/// guarantees all previously broadcast deltas are applied first.
#[derive(Debug)]
pub struct FrameBackend<T: Transport> {
    cluster: Cluster,
    pool: FramePool<T>,
    /// Coordinator-side shapes of the partitioned views, for validation
    /// and gather-side assembly.
    shapes: BTreeMap<String, (usize, usize)>,
    sched: SchedSnapshot,
}

/// [`FrameBackend`] over in-process worker threads and channels.
pub type ThreadedBackend = FrameBackend<ChannelTransport>;

/// [`FrameBackend`] over out-of-process workers on TCP/Unix sockets.
pub type SocketBackend = FrameBackend<SocketTransport>;

fn transport_err(e: TransportError) -> RuntimeError {
    RuntimeError::Transport(e.to_string())
}

impl ThreadedBackend {
    /// A backend over a square grid of `workers` threads (must be a
    /// perfect square; every partitioned dimension must divide the side).
    pub fn new(workers: usize) -> Result<Self> {
        Ok(Self::with_cluster(
            Cluster::try_new(workers).map_err(RuntimeError::Cluster)?,
        ))
    }

    /// A backend over an existing (possibly rectangular) cluster geometry;
    /// spawns the worker threads immediately.
    pub fn with_cluster(cluster: Cluster) -> Self {
        let pool = WorkerPool::spawn(cluster.grid_rows(), cluster.grid_cols());
        FrameBackend {
            cluster,
            pool,
            shapes: BTreeMap::new(),
            sched: SchedSnapshot::default(),
        }
    }
}

impl SocketBackend {
    /// Connects to worker processes at `addrs`, arranged row-major over a
    /// square grid (`addrs.len()` must be a perfect square).
    pub fn connect(addrs: Vec<PeerAddr>, config: SocketConfig) -> Result<Self> {
        let cluster = Cluster::try_new(addrs.len()).map_err(RuntimeError::Cluster)?;
        Self::connect_with_cluster(cluster, addrs, config)
    }

    /// Connects to worker processes at `addrs` over an explicit (possibly
    /// rectangular) cluster geometry.
    pub fn connect_with_cluster(
        cluster: Cluster,
        addrs: Vec<PeerAddr>,
        config: SocketConfig,
    ) -> Result<Self> {
        let transport =
            SocketTransport::connect(cluster.grid_rows(), cluster.grid_cols(), addrs, config)
                .map_err(transport_err)?;
        let pool = FramePool::from_transport(cluster.grid_rows(), cluster.grid_cols(), transport)
            .map_err(transport_err)?;
        Ok(FrameBackend {
            cluster,
            pool,
            shapes: BTreeMap::new(),
            sched: SchedSnapshot::default(),
        })
    }
}

impl<T: Transport> FrameBackend<T> {
    /// The frame pool driving the transport (worker-state reads, tests).
    pub fn pool(&self) -> &FramePool<T> {
        &self.pool
    }

    /// Mutable pool access — fault injection (killing a worker) and
    /// transport-level reconfiguration.
    pub fn pool_mut(&mut self) -> &mut FramePool<T> {
        &mut self.pool
    }

    /// Gathers a partitioned view back from the workers into a dense
    /// matrix. Acts as a barrier: all previously broadcast deltas are
    /// folded in before the workers reply.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        let &(rows, cols) = self
            .shapes
            .get(name)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{name}'")))?;
        let blocks = self.pool.gather(name).map_err(transport_err)?;
        let (gr, gc) = (self.pool.grid_rows(), self.pool.grid_cols());
        let (bh, bw) = (rows / gr, cols / gc);
        let mut out = Matrix::zeros(rows, cols);
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / gc, idx % gc);
            out.set_submatrix(br * bh, bc * bw, block)?;
        }
        Ok(out)
    }

    /// The cluster geometry (and communication meter).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Names of the views currently partitioned across the workers.
    pub fn partitioned_views(&self) -> impl Iterator<Item = &str> {
        self.shapes.keys().map(String::as_str)
    }
}

impl<T: Transport> ExecBackend for FrameBackend<T> {
    fn name(&self) -> &'static str {
        self.pool.label()
    }

    fn materialize(&mut self, env: &Env) -> Result<()> {
        // Partition everything *before* touching worker state, so a
        // failure (an indivisible dimension) leaves the previous
        // partitions — and the owning view — untouched.
        let mut parts = Vec::new();
        for (name, m) in env.iter() {
            let dm =
                DistMatrix::from_dense_grid(m, self.cluster.grid_rows(), self.cluster.grid_cols())
                    .map_err(RuntimeError::Matrix)?;
            parts.push((name.to_string(), dm));
        }
        // Materialize is the recovery entry point: bring dead peers back
        // (a no-op on a healthy pool) before re-installing state.
        self.pool.revive().map_err(transport_err)?;
        self.pool.reset().map_err(transport_err)?;
        let mut shapes = BTreeMap::new();
        for (name, dm) in &parts {
            let frame_len = self.pool.install(name, dm).map_err(transport_err)?;
            // Initial placement moves real bytes too; meter every frame.
            for _ in 0..self.pool.workers() {
                self.cluster.comm().record_broadcast(frame_len);
            }
            shapes.insert(name.clone(), dm.shape());
        }
        self.shapes = shapes;
        Ok(())
    }

    fn apply_delta(
        &mut self,
        env: &mut Env,
        target: &str,
        u: &Matrix,
        v: &Matrix,
        sparse: bool,
    ) -> Result<SparseStats> {
        let &(rows, cols) = self
            .shapes
            .get(target)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{target}'")))?;
        if u.rows() != rows || v.rows() != cols || u.cols() != v.cols() {
            return Err(RuntimeError::UpdateShape {
                target: (rows, cols),
                update: (u.shape(), v.shape()),
            });
        }
        if u.cols() == 0 {
            return Ok(SparseStats::default()); // rank-0: nothing moves
        }
        // One serialized frame per worker; meter exactly what was sent.
        // The compressed frame is only engaged when at least one factor's
        // triplet form is shorter — a flag-prefixed all-dense frame would
        // be strictly *longer* than the plain dense frame.
        let compress = sparse && (factor_prefers_sparse(u) || factor_prefers_sparse(v));
        let frame_len = if compress {
            self.pool
                .broadcast_delta_sparse(target, u, v)
                .map_err(transport_err)?
        } else {
            self.pool
                .broadcast_delta(target, u, v)
                .map_err(transport_err)?
        };
        for _ in 0..self.pool.workers() {
            self.cluster.comm().record_broadcast(frame_len);
        }
        // Keep the coordinator mirror in sync for subsequent statements;
        // this mirror fold is the apply's one counted fold.
        let path = fold_low_rank(env.get_mut(target)?, u, v, sparse)?;
        let mut stats = SparseStats::from_path(path);
        if compress {
            // What the same broadcast would have cost dense: the exact
            // TAG_DELTA frame length, computed without serializing it.
            let dense_len = (1 + 4 + target.len() + 16 + 8 * (u.len() + v.len())) as u64;
            stats.compressed_frames = 1;
            stats.bytes_saved = self.pool.workers() as u64 * (dense_len - frame_len);
        }
        Ok(stats)
    }

    /// Pipelines a stage's factor broadcasts through the transport: every
    /// frame of the stage is serialized up front and shipped to each
    /// worker as one batch (a single coalesced write on wire transports)
    /// before any coordinator-mirror fold, so independent broadcasts
    /// overlap on the wire while the workers drain their FIFO streams.
    /// The per-frame byte metering is identical to the sequential path
    /// (same frames, same order per worker); the stage barrier is the
    /// workers' FIFO order, exactly as for single-delta applies.
    ///
    /// Failure model: the batch send is *continue-on-error* per worker —
    /// a dead peer never starves the survivors of their frames, so every
    /// live worker and the coordinator mirror hold the complete stage.
    /// The first failure is still surfaced (after the folds) for the
    /// engine's checkpoint/replay recovery to act on.
    fn apply_stage(
        &mut self,
        env: &mut Env,
        deltas: &[StageDelta],
        sparse: bool,
    ) -> Result<SparseStats> {
        if deltas.len() < 2 {
            let mut stats = SparseStats::default();
            for d in deltas {
                stats.merge(self.apply_delta(env, &d.target, &d.u, &d.v, sparse)?);
            }
            return Ok(stats);
        }
        // Validate the whole stage up front: a shape error after a partial
        // send would leave worker state ahead of the coordinator mirror.
        for d in deltas {
            let &(rows, cols) = self
                .shapes
                .get(&d.target)
                .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{}'", d.target)))?;
            env.get(&d.target)?;
            if d.u.rows() != rows || d.v.rows() != cols || d.u.cols() != d.v.cols() {
                return Err(RuntimeError::UpdateShape {
                    target: (rows, cols),
                    update: (d.u.shape(), d.v.shape()),
                });
            }
        }
        let mut stats = SparseStats::default();
        let live: Vec<&StageDelta> = deltas.iter().filter(|d| d.u.cols() > 0).collect();
        // Serialize the whole stage first; per-frame compression decisions
        // are identical to the single-delta path.
        let mut frames = Vec::with_capacity(live.len());
        let mut compressed = Vec::with_capacity(live.len());
        for d in &live {
            let compress = sparse && (factor_prefers_sparse(&d.u) || factor_prefers_sparse(&d.v));
            let frame = if compress {
                sparse_delta_frame(&d.target, &d.u, &d.v)
            } else {
                delta_frame(&d.target, &d.u, &d.v)
            };
            compressed.push(compress);
            frames.push(frame);
        }
        // One batch per worker, continue-on-error: a dead peer does not
        // keep the survivors from receiving (and applying) the full stage.
        let outcomes = self.pool.broadcast_frames(&frames);
        let delivered = outcomes.iter().filter(|r| r.is_ok()).count() as u64;
        let send_err = outcomes
            .into_iter()
            .find_map(|r| r.err())
            .map(transport_err);
        // Meter exactly what moved: every frame, to every worker that
        // accepted the batch.
        for frame in &frames {
            for _ in 0..delivered {
                self.cluster.comm().record_broadcast(frame.len() as u64);
            }
        }
        for ((d, frame), compress) in live.iter().zip(&frames).zip(&compressed) {
            if *compress {
                let dense_len = (1 + 4 + d.target.len() + 16 + 8 * (d.u.len() + d.v.len())) as u64;
                stats.compressed_frames += 1;
                stats.bytes_saved += delivered * (dense_len - frame.len() as u64);
            }
        }
        if delivered > 0 && frames.len() >= 2 {
            self.sched.merged_rounds += 1;
            self.sched.overlapped += (frames.len() - 1) as u64;
        }
        // Every live worker holds the full stage; fold the coordinator
        // mirror to match while they apply their own copies. Shapes were
        // validated above, so the folds cannot fail and leave mirror and
        // workers out of step.
        for d in &live {
            let path = fold_low_rank(env.get_mut(&d.target)?, &d.u, &d.v, sparse)?;
            stats.merge(SparseStats::from_path(path));
        }
        match send_err {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    fn extra_memory_bytes(&self) -> usize {
        self.shapes
            .values()
            .map(|&(r, c)| r * c * std::mem::size_of::<f64>())
            .sum()
    }

    fn comm(&self) -> CommSnapshot {
        self.cluster.comm().snapshot()
    }

    fn reset_comm(&self) -> CommSnapshot {
        self.cluster.comm().reset()
    }

    fn sched(&self) -> SchedSnapshot {
        self.sched
    }

    fn reset_sched(&mut self) -> SchedSnapshot {
        std::mem::take(&mut self.sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_backend_reports_no_comm_or_extra_memory() {
        let mut b = LocalBackend;
        assert_eq!(b.name(), "local");
        assert_eq!(b.comm(), CommSnapshot::default());
        assert_eq!(b.reset_comm(), CommSnapshot::default());
        assert_eq!(b.extra_memory_bytes(), 0);
        let env = Env::new();
        b.materialize(&env).unwrap();
    }

    #[test]
    fn local_apply_delta_is_a_rank_k_gemm() {
        let mut env = Env::new();
        env.bind("X", Matrix::zeros(4, 4));
        let u = Matrix::random_uniform(4, 2, 1);
        let v = Matrix::random_uniform(4, 2, 2);
        LocalBackend
            .apply_delta(&mut env, "X", &u, &v, false)
            .unwrap();
        let expected = u.try_matmul(&v.transpose()).unwrap();
        assert_eq!(env.get("X").unwrap(), &expected);
    }

    #[test]
    fn dist_backend_partitions_every_binding_and_meters_broadcasts() {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(8, 8, 3));
        env.bind("B", Matrix::random_uniform(8, 8, 4));
        let mut backend = DistBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        assert!(backend.dist_view("A").is_some());
        assert!(backend.extra_memory_bytes() >= 2 * 8 * 8 * 8);

        let u = Matrix::random_col(8, 5);
        let v = Matrix::random_col(8, 6);
        backend.apply_delta(&mut env, "A", &u, &v, true).unwrap();
        let comm = backend.comm();
        assert!(comm.broadcast_bytes > 0);
        assert_eq!(comm.shuffle_bytes, 0);
        // Mirror and partitions agree exactly: both fold u·vᵀ blockwise
        // over the same entries.
        let gathered = backend.view("A").unwrap();
        assert_eq!(&gathered, env.get("A").unwrap());
    }

    #[test]
    fn threaded_backend_moves_exact_frames_and_matches_the_mirror() {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(8, 8, 3));
        env.bind("B", Matrix::random_uniform(8, 8, 4));
        let mut backend = ThreadedBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        assert_eq!(backend.extra_memory_bytes(), 2 * 8 * 8 * 8);
        backend.reset_comm(); // drop the initial-placement traffic

        let u = Matrix::random_col(8, 5);
        let v = Matrix::random_col(8, 6);
        backend.apply_delta(&mut env, "A", &u, &v, true).unwrap();
        let comm = backend.comm();
        // Byte counts recomputed from the same serialization the workers
        // received — exact, not an estimate.
        let frame = linview_dist::delta_frame("A", &u, &v);
        assert_eq!(comm.broadcast_bytes, 4 * frame.len() as u64);
        assert_eq!(comm.broadcast_msgs, 4);
        assert_eq!(comm.shuffle_bytes, 0);
        // Worker-owned state and the coordinator mirror agree exactly.
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        assert_eq!(&backend.view("B").unwrap(), env.get("B").unwrap());
    }

    #[test]
    fn threaded_backend_rejects_unknown_targets_bad_grids_and_bad_shapes() {
        assert!(ThreadedBackend::new(8).is_err()); // not a perfect square
        let mut backend = ThreadedBackend::new(4).unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(8, 8));
        backend.materialize(&env).unwrap();
        let u = Matrix::zeros(8, 1);
        assert!(backend.apply_delta(&mut env, "Z", &u, &u, true).is_err());
        assert!(matches!(
            backend.apply_delta(&mut env, "A", &Matrix::zeros(6, 1), &u, true),
            Err(RuntimeError::UpdateShape { .. })
        ));
        // Indivisible dimension fails materialize but leaves the previous
        // partitions (and the worker threads) intact.
        env.bind("Odd", Matrix::zeros(7, 7));
        assert!(backend.materialize(&env).is_err());
        assert!(backend.view("A").is_ok());
        assert!(backend.view("Odd").is_err());
    }

    #[test]
    fn threaded_backend_rematerialize_replaces_worker_state() {
        let mut backend = ThreadedBackend::with_cluster(Cluster::with_grid(2, 1));
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(6, 6, 7));
        backend.materialize(&env).unwrap();
        env.bind("A", Matrix::random_uniform(6, 6, 8));
        backend.materialize(&env).unwrap();
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        assert_eq!(backend.partitioned_views().count(), 1);
    }

    fn stage(deltas: &[(&str, u64, u64)]) -> Vec<StageDelta> {
        deltas
            .iter()
            .map(|&(t, su, sv)| StageDelta {
                target: t.to_string(),
                u: Matrix::random_col(8, su),
                v: Matrix::random_col(8, sv),
            })
            .collect()
    }

    fn two_view_env() -> Env {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(8, 8, 1));
        env.bind("B", Matrix::random_uniform(8, 8, 2));
        env
    }

    #[test]
    fn local_apply_stage_matches_sequential_fold_bitwise() {
        // Small views take the inline path; 200×200 views cross the
        // parallel threshold and fold on worker threads. Both must be
        // bit-identical to the sequential fold.
        for n in [8usize, 200] {
            let build = || {
                let mut env = Env::new();
                env.bind("A", Matrix::random_uniform(n, n, 1));
                env.bind("B", Matrix::random_uniform(n, n, 2));
                env
            };
            let deltas: Vec<StageDelta> = [("A", 3u64, 4u64), ("B", 5, 6)]
                .iter()
                .map(|&(t, su, sv)| StageDelta {
                    target: t.to_string(),
                    u: Matrix::random_col(n, su),
                    v: Matrix::random_col(n, sv),
                })
                .collect();
            let mut staged = build();
            LocalBackend
                .apply_stage(&mut staged, &deltas, true)
                .unwrap();
            let mut seq = build();
            for d in &deltas {
                LocalBackend
                    .apply_delta(&mut seq, &d.target, &d.u, &d.v, true)
                    .unwrap();
            }
            assert_eq!(staged.get("A").unwrap(), seq.get("A").unwrap(), "n={n}");
            assert_eq!(staged.get("B").unwrap(), seq.get("B").unwrap(), "n={n}");
            // Error path. The threaded (heavy) fold pre-validates every
            // slot, so an unknown target aborts before touching anything;
            // the inline fold keeps the usual sequential partial-failure
            // semantics (deltas before the failing one are applied).
            let mut bad = deltas.clone();
            bad[1].target = "Z".into();
            let before = staged.get("A").unwrap().clone();
            assert!(LocalBackend.apply_stage(&mut staged, &bad, true).is_err());
            if n >= 200 && crate::exec::multi_core() {
                assert_eq!(staged.get("A").unwrap(), &before);
            } else {
                let mut expect = before.clone();
                expect
                    .add_assign_from(&bad[0].u.try_matmul(&bad[0].v.transpose()).unwrap())
                    .unwrap();
                assert_eq!(staged.get("A").unwrap(), &expect);
            }
        }
    }

    #[test]
    fn dist_apply_stage_meters_one_merged_round() {
        let mut env = two_view_env();
        let mut backend = DistBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        backend.reset_comm();
        assert_eq!(backend.sched(), SchedSnapshot::default());

        let deltas = stage(&[("A", 3, 4), ("B", 5, 6)]);
        backend.apply_stage(&mut env, &deltas, true).unwrap();
        let sched = backend.sched();
        assert_eq!(sched.merged_rounds, 1);
        assert_eq!(sched.overlapped, 1);
        // Volume is unchanged vs two sequential applies on a fresh twin.
        let staged_comm = backend.reset_comm();
        let mut twin_env = two_view_env();
        let mut twin = DistBackend::new(4).unwrap();
        twin.materialize(&twin_env).unwrap();
        twin.reset_comm();
        for d in &deltas {
            twin.apply_delta(&mut twin_env, &d.target, &d.u, &d.v, true)
                .unwrap();
        }
        assert_eq!(staged_comm, twin.comm());
        assert_eq!(twin.sched(), SchedSnapshot::default());
        // Partitions and mirror agree after the merged round.
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        // Single-delta stages are not merged rounds.
        backend
            .apply_stage(&mut env, &stage(&[("A", 9, 10)]), true)
            .unwrap();
        assert_eq!(backend.sched().merged_rounds, 1);
        assert_eq!(backend.reset_sched().overlapped, 1);
        assert_eq!(backend.sched(), SchedSnapshot::default());
    }

    #[test]
    fn dist_and_threaded_sched_counters_agree_on_rank_zero_stages() {
        // Rank-0 members of a stage move nothing on either backend, so
        // neither may count them toward merged rounds / overlap — the
        // conformance suite asserts the two snapshots are equal.
        let rank0 = |t: &str| StageDelta {
            target: t.to_string(),
            u: Matrix::zeros(8, 0),
            v: Matrix::zeros(8, 0),
        };
        let mut denv = two_view_env();
        let mut dist = DistBackend::new(4).unwrap();
        dist.materialize(&denv).unwrap();
        let mut tenv = two_view_env();
        let mut threaded = ThreadedBackend::new(4).unwrap();
        threaded.materialize(&tenv).unwrap();

        // One real delta + one cancelled one: a single frame moves — no
        // overlap on either backend.
        let mut mixed = stage(&[("A", 3, 4)]);
        mixed.push(rank0("B"));
        dist.apply_stage(&mut denv, &mixed, true).unwrap();
        threaded.apply_stage(&mut tenv, &mixed, true).unwrap();
        assert_eq!(dist.sched(), SchedSnapshot::default());
        assert_eq!(dist.sched(), threaded.sched());

        // Entirely cancelled stage: still nothing.
        dist.apply_stage(&mut denv, &[rank0("A"), rank0("B")], true)
            .unwrap();
        threaded
            .apply_stage(&mut tenv, &[rank0("A"), rank0("B")], true)
            .unwrap();
        assert_eq!(dist.sched(), threaded.sched());
        assert_eq!(dist.sched().merged_rounds, 0);

        // Two live deltas: one merged round, one overlap, on both.
        let live = stage(&[("A", 5, 6), ("B", 7, 8)]);
        dist.apply_stage(&mut denv, &live, true).unwrap();
        threaded.apply_stage(&mut tenv, &live, true).unwrap();
        assert_eq!(dist.sched(), threaded.sched());
        assert_eq!(
            dist.sched(),
            SchedSnapshot {
                merged_rounds: 1,
                overlapped: 1
            }
        );
        assert_eq!(&threaded.view("A").unwrap(), tenv.get("A").unwrap());
        assert_eq!(denv.get("A").unwrap(), tenv.get("A").unwrap());
    }

    #[test]
    fn threaded_apply_stage_pipelines_frames_and_stays_exact() {
        let mut env = two_view_env();
        let mut backend = ThreadedBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        backend.reset_comm();

        let deltas = stage(&[("A", 3, 4), ("B", 5, 6)]);
        backend.apply_stage(&mut env, &deltas, true).unwrap();
        assert_eq!(backend.sched().merged_rounds, 1);
        assert_eq!(backend.sched().overlapped, 1);
        // Exact frame accounting: both frames to all 4 workers.
        let comm = backend.comm();
        let expected: u64 = deltas
            .iter()
            .map(|d| linview_dist::delta_frame(&d.target, &d.u, &d.v).len() as u64)
            .sum();
        assert_eq!(comm.broadcast_bytes, 4 * expected);
        assert_eq!(comm.broadcast_msgs, 8);
        // Worker-owned state caught up with the mirror at the barrier.
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        assert_eq!(&backend.view("B").unwrap(), env.get("B").unwrap());
        // A bad shape anywhere in the stage aborts before any send.
        backend.reset_comm();
        let mut bad = stage(&[("A", 7, 8)]);
        bad.push(StageDelta {
            target: "B".into(),
            u: Matrix::zeros(6, 1),
            v: Matrix::zeros(8, 1),
        });
        assert!(matches!(
            backend.apply_stage(&mut env, &bad, true),
            Err(RuntimeError::UpdateShape { .. })
        ));
        assert_eq!(backend.comm().broadcast_msgs, 0);
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        // Rank-0 members of a stage neither move bytes nor count overlap.
        let mut with_empty = stage(&[("A", 11, 12)]);
        with_empty.push(StageDelta {
            target: "B".into(),
            u: Matrix::zeros(8, 0),
            v: Matrix::zeros(8, 0),
        });
        backend.reset_sched();
        backend.apply_stage(&mut env, &with_empty, true).unwrap();
        assert_eq!(backend.sched().overlapped, 0);
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
    }

    #[test]
    fn dist_backend_rejects_unknown_targets_and_bad_grids() {
        assert!(DistBackend::new(8).is_err()); // not a perfect square
        let mut backend = DistBackend::new(4).unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(8, 8));
        backend.materialize(&env).unwrap();
        let u = Matrix::zeros(8, 1);
        assert!(backend.apply_delta(&mut env, "Z", &u, &u, true).is_err());
        // Indivisible dimension surfaces at materialize time — and the
        // failure leaves the previous partitions intact (restore() relies
        // on this to keep a view consistent after a bad checkpoint).
        env.bind("Odd", Matrix::zeros(7, 7));
        assert!(backend.materialize(&env).is_err());
        assert!(backend.dist_view("A").is_some());
        assert!(backend.dist_view("Odd").is_none());
    }
}
