//! Pluggable trigger-execution backends.
//!
//! The paper's central claim is that one compiled trigger program can drive
//! view maintenance *anywhere* — in-process (§4/§5) or on a cluster with
//! bounded communication (§6). [`ExecBackend`] is that claim as a trait:
//! the statement interpreter in `exec` is shared verbatim by every backend,
//! and only the final "fold `ΔX = U Vᵀ` into the view" step — the one
//! operation whose *locality* differs between deployments — is virtual.
//!
//! * [`LocalBackend`] — dense in-process views; a delta is a rank-k GEMM
//!   into the environment's matrix.
//! * [`DistBackend`] — grid-partitioned views over the `linview-dist`
//!   simulated cluster; a delta broadcasts its skinny factors to the
//!   workers (metered) while a coordinator mirror stays in sync for the
//!   trigger's subsequent block evaluations.
//! * [`ThreadedBackend`] — the same grid partitioning with **real**
//!   message passing: one long-lived worker thread per partition owns its
//!   blocks, and every factor broadcast is serialized into a byte frame
//!   and moved over a channel. `CommStats` counts the frames actually
//!   sent, not analytical estimates.

use std::collections::BTreeMap;

use linview_compiler::{JointTrigger, Trigger};
use linview_dist::{
    dist_add_low_rank, transport::TransportError, Cluster, CommSnapshot, DistMatrix, WorkerPool,
};
use linview_matrix::Matrix;

use crate::{Env, Evaluator, ExecOptions, Result, RuntimeError};

/// Where (and how) compiled triggers execute.
///
/// Implementors supply the backend-specific delta application; trigger and
/// joint-trigger firing are provided methods that route through the single
/// shared statement interpreter, so the compute phase (block evaluation,
/// Sherman–Morrison, recompression) cannot diverge between backends.
pub trait ExecBackend: std::fmt::Debug {
    /// Short human-readable backend name (reports, CLI output).
    fn name(&self) -> &'static str;

    /// Called once after the view environment is fully materialized — and
    /// again after a checkpoint restore — so the backend can mirror the
    /// state it needs (e.g. partition every view across the cluster).
    fn materialize(&mut self, env: &Env) -> Result<()>;

    /// Folds the factored delta `ΔX = U Vᵀ` into view `target` — the only
    /// backend-specific step of trigger execution.
    fn apply_delta(&mut self, env: &mut Env, target: &str, u: &Matrix, v: &Matrix) -> Result<()>;

    /// Fires `trigger` for the factored input update `ΔX = du · dvᵀ`
    /// through the shared statement interpreter.
    fn fire_trigger(
        &mut self,
        env: &mut Env,
        evaluator: &Evaluator,
        trigger: &Trigger,
        du: &Matrix,
        dv: &Matrix,
        opts: &ExecOptions,
    ) -> Result<()> {
        crate::exec::fire_trigger_on(self, env, evaluator, trigger, du, dv, opts)
    }

    /// Fires a joint trigger for simultaneous factored updates to all of
    /// its inputs (§4.4), again through the shared interpreter.
    fn fire_joint_trigger(
        &mut self,
        env: &mut Env,
        evaluator: &Evaluator,
        joint: &JointTrigger,
        updates: &[(&str, &Matrix, &Matrix)],
        opts: &ExecOptions,
    ) -> Result<()> {
        crate::exec::fire_joint_trigger_on(self, env, evaluator, joint, updates, opts)
    }

    /// Bytes the backend holds *beyond* the coordinator environment
    /// (partitioned replicas, caches); zero for purely local execution.
    fn extra_memory_bytes(&self) -> usize {
        0
    }

    /// Cumulative communication since construction or the last reset.
    /// Local execution moves no bytes.
    fn comm(&self) -> CommSnapshot {
        CommSnapshot::default()
    }

    /// Zeroes the communication counters, returning the prior snapshot.
    fn reset_comm(&self) -> CommSnapshot {
        CommSnapshot::default()
    }
}

/// In-process execution: views are dense matrices in the [`Env`], and a
/// delta is a rank-k GEMM (`X += U Vᵀ`, `O(k·|X|)`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalBackend;

impl ExecBackend for LocalBackend {
    fn name(&self) -> &'static str {
        "local"
    }

    fn materialize(&mut self, _env: &Env) -> Result<()> {
        Ok(())
    }

    fn apply_delta(&mut self, env: &mut Env, target: &str, u: &Matrix, v: &Matrix) -> Result<()> {
        let delta = u.try_matmul(&v.transpose())?;
        env.get_mut(target)?.add_assign_from(&delta)?;
        Ok(())
    }
}

/// Distributed execution over the simulated cluster (§6).
///
/// Every materialized view is grid-partitioned into a [`DistMatrix`]. The
/// trigger's compute phase runs on the coordinator against a dense mirror
/// (factors are `O(kn)`-sized); each delta then broadcasts its factors so
/// workers update their own blocks with **no shuffle**, and the mirror is
/// folded forward so later statements of the same firing see post-delta
/// state. Every byte moved is metered on the cluster's `CommStats`.
#[derive(Debug)]
pub struct DistBackend {
    cluster: Cluster,
    views: BTreeMap<String, DistMatrix>,
}

impl DistBackend {
    /// A backend over a square grid of `workers` (must be a perfect
    /// square; every partitioned dimension must divide the grid side).
    pub fn new(workers: usize) -> Result<Self> {
        Ok(DistBackend {
            cluster: Cluster::try_new(workers).map_err(RuntimeError::Matrix)?,
            views: BTreeMap::new(),
        })
    }

    /// A backend over an existing (possibly rectangular) cluster.
    pub fn with_cluster(cluster: Cluster) -> Self {
        DistBackend {
            cluster,
            views: BTreeMap::new(),
        }
    }

    /// Gathers a partitioned view back to a dense matrix.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        self.views
            .get(name)
            .map(DistMatrix::to_dense)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// The partitioned form of a view.
    pub fn dist_view(&self, name: &str) -> Option<&DistMatrix> {
        self.views.get(name)
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl ExecBackend for DistBackend {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn materialize(&mut self, env: &Env) -> Result<()> {
        // Build the full partition set before committing, so a failure
        // (e.g. an indivisible dimension) leaves the previous partitions —
        // and therefore the owning view — untouched.
        let mut views = BTreeMap::new();
        for (name, m) in env.iter() {
            let dm =
                DistMatrix::from_dense_grid(m, self.cluster.grid_rows(), self.cluster.grid_cols())
                    .map_err(RuntimeError::Matrix)?;
            views.insert(name.to_string(), dm);
        }
        self.views = views;
        Ok(())
    }

    fn apply_delta(&mut self, env: &mut Env, target: &str, u: &Matrix, v: &Matrix) -> Result<()> {
        let dm = self
            .views
            .get_mut(target)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{target}'")))?;
        // Broadcast + block-local worker updates (metered).
        dist_add_low_rank(dm, u, v, &self.cluster).map_err(RuntimeError::Matrix)?;
        // Keep the coordinator mirror in sync for subsequent statements.
        let delta = u.try_matmul(&v.transpose())?;
        env.get_mut(target)?.add_assign_from(&delta)?;
        Ok(())
    }

    fn extra_memory_bytes(&self) -> usize {
        self.views
            .values()
            .map(|dm| dm.rows() * dm.cols() * std::mem::size_of::<f64>())
            .sum()
    }

    fn comm(&self) -> CommSnapshot {
        self.cluster.comm().snapshot()
    }

    fn reset_comm(&self) -> CommSnapshot {
        self.cluster.comm().reset()
    }
}

/// Distributed execution over **real** worker threads (§6, without the
/// simulation shortcut).
///
/// Like [`DistBackend`], every materialized view is grid-partitioned and
/// the trigger's compute phase runs on the coordinator against a dense
/// mirror. Unlike it, the partitions live on long-lived worker threads —
/// one per grid cell, spawned at construction — and every delta
/// application serializes the factored update into a byte frame and
/// broadcasts it over per-worker channels. Workers decode, slice their own
/// rows, and fold the update into the blocks they own; nothing is shared.
/// `CommStats` therefore counts the exact length of every frame moved.
///
/// Reads of worker state ([`ThreadedBackend::view`]) gather the blocks
/// back over the same channels and double as a barrier: channel order
/// guarantees all previously broadcast deltas are applied first.
#[derive(Debug)]
pub struct ThreadedBackend {
    cluster: Cluster,
    pool: WorkerPool,
    /// Coordinator-side shapes of the partitioned views, for validation
    /// and gather-side assembly.
    shapes: BTreeMap<String, (usize, usize)>,
}

fn transport_err(e: TransportError) -> RuntimeError {
    RuntimeError::Transport(e.to_string())
}

impl ThreadedBackend {
    /// A backend over a square grid of `workers` threads (must be a
    /// perfect square; every partitioned dimension must divide the side).
    pub fn new(workers: usize) -> Result<Self> {
        Ok(Self::with_cluster(
            Cluster::try_new(workers).map_err(RuntimeError::Matrix)?,
        ))
    }

    /// A backend over an existing (possibly rectangular) cluster geometry;
    /// spawns the worker threads immediately.
    pub fn with_cluster(cluster: Cluster) -> Self {
        let pool = WorkerPool::spawn(cluster.grid_rows(), cluster.grid_cols());
        ThreadedBackend {
            cluster,
            pool,
            shapes: BTreeMap::new(),
        }
    }

    /// Gathers a partitioned view back from the worker threads into a
    /// dense matrix. Acts as a barrier: all previously broadcast deltas
    /// are folded in before the workers reply.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        let &(rows, cols) = self
            .shapes
            .get(name)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{name}'")))?;
        let blocks = self.pool.gather(name).map_err(transport_err)?;
        let (gr, gc) = (self.pool.grid_rows(), self.pool.grid_cols());
        let (bh, bw) = (rows / gr, cols / gc);
        let mut out = Matrix::zeros(rows, cols);
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / gc, idx % gc);
            out.set_submatrix(br * bh, bc * bw, block)?;
        }
        Ok(out)
    }

    /// The cluster geometry (and communication meter).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Names of the views currently partitioned across the workers.
    pub fn partitioned_views(&self) -> impl Iterator<Item = &str> {
        self.shapes.keys().map(String::as_str)
    }
}

impl ExecBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn materialize(&mut self, env: &Env) -> Result<()> {
        // Partition everything *before* touching worker state, so a
        // failure (an indivisible dimension) leaves the previous
        // partitions — and the owning view — untouched.
        let mut parts = Vec::new();
        for (name, m) in env.iter() {
            let dm =
                DistMatrix::from_dense_grid(m, self.cluster.grid_rows(), self.cluster.grid_cols())
                    .map_err(RuntimeError::Matrix)?;
            parts.push((name.to_string(), dm));
        }
        self.pool.reset().map_err(transport_err)?;
        let mut shapes = BTreeMap::new();
        for (name, dm) in &parts {
            let frame_len = self.pool.install(name, dm).map_err(transport_err)?;
            // Initial placement moves real bytes too; meter every frame.
            for _ in 0..self.pool.workers() {
                self.cluster.comm().record_broadcast(frame_len);
            }
            shapes.insert(name.clone(), dm.shape());
        }
        self.shapes = shapes;
        Ok(())
    }

    fn apply_delta(&mut self, env: &mut Env, target: &str, u: &Matrix, v: &Matrix) -> Result<()> {
        let &(rows, cols) = self
            .shapes
            .get(target)
            .ok_or_else(|| RuntimeError::Unbound(format!("partitioned view '{target}'")))?;
        if u.rows() != rows || v.rows() != cols || u.cols() != v.cols() {
            return Err(RuntimeError::UpdateShape {
                target: (rows, cols),
                update: (u.shape(), v.shape()),
            });
        }
        if u.cols() == 0 {
            return Ok(()); // rank-0 delta: nothing moves, nothing changes
        }
        // One serialized frame per worker; meter exactly what was sent.
        let frame_len = self
            .pool
            .broadcast_delta(target, u, v)
            .map_err(transport_err)?;
        for _ in 0..self.pool.workers() {
            self.cluster.comm().record_broadcast(frame_len);
        }
        // Keep the coordinator mirror in sync for subsequent statements.
        let delta = u.try_matmul(&v.transpose())?;
        env.get_mut(target)?.add_assign_from(&delta)?;
        Ok(())
    }

    fn extra_memory_bytes(&self) -> usize {
        self.shapes
            .values()
            .map(|&(r, c)| r * c * std::mem::size_of::<f64>())
            .sum()
    }

    fn comm(&self) -> CommSnapshot {
        self.cluster.comm().snapshot()
    }

    fn reset_comm(&self) -> CommSnapshot {
        self.cluster.comm().reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_backend_reports_no_comm_or_extra_memory() {
        let mut b = LocalBackend;
        assert_eq!(b.name(), "local");
        assert_eq!(b.comm(), CommSnapshot::default());
        assert_eq!(b.reset_comm(), CommSnapshot::default());
        assert_eq!(b.extra_memory_bytes(), 0);
        let env = Env::new();
        b.materialize(&env).unwrap();
    }

    #[test]
    fn local_apply_delta_is_a_rank_k_gemm() {
        let mut env = Env::new();
        env.bind("X", Matrix::zeros(4, 4));
        let u = Matrix::random_uniform(4, 2, 1);
        let v = Matrix::random_uniform(4, 2, 2);
        LocalBackend.apply_delta(&mut env, "X", &u, &v).unwrap();
        let expected = u.try_matmul(&v.transpose()).unwrap();
        assert_eq!(env.get("X").unwrap(), &expected);
    }

    #[test]
    fn dist_backend_partitions_every_binding_and_meters_broadcasts() {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(8, 8, 3));
        env.bind("B", Matrix::random_uniform(8, 8, 4));
        let mut backend = DistBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        assert!(backend.dist_view("A").is_some());
        assert!(backend.extra_memory_bytes() >= 2 * 8 * 8 * 8);

        let u = Matrix::random_col(8, 5);
        let v = Matrix::random_col(8, 6);
        backend.apply_delta(&mut env, "A", &u, &v).unwrap();
        let comm = backend.comm();
        assert!(comm.broadcast_bytes > 0);
        assert_eq!(comm.shuffle_bytes, 0);
        // Mirror and partitions agree exactly: both fold u·vᵀ blockwise
        // over the same entries.
        let gathered = backend.view("A").unwrap();
        assert_eq!(&gathered, env.get("A").unwrap());
    }

    #[test]
    fn threaded_backend_moves_exact_frames_and_matches_the_mirror() {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(8, 8, 3));
        env.bind("B", Matrix::random_uniform(8, 8, 4));
        let mut backend = ThreadedBackend::new(4).unwrap();
        backend.materialize(&env).unwrap();
        assert_eq!(backend.extra_memory_bytes(), 2 * 8 * 8 * 8);
        backend.reset_comm(); // drop the initial-placement traffic

        let u = Matrix::random_col(8, 5);
        let v = Matrix::random_col(8, 6);
        backend.apply_delta(&mut env, "A", &u, &v).unwrap();
        let comm = backend.comm();
        // Byte counts recomputed from the same serialization the workers
        // received — exact, not an estimate.
        let frame = linview_dist::delta_frame("A", &u, &v);
        assert_eq!(comm.broadcast_bytes, 4 * frame.len() as u64);
        assert_eq!(comm.broadcast_msgs, 4);
        assert_eq!(comm.shuffle_bytes, 0);
        // Worker-owned state and the coordinator mirror agree exactly.
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        assert_eq!(&backend.view("B").unwrap(), env.get("B").unwrap());
    }

    #[test]
    fn threaded_backend_rejects_unknown_targets_bad_grids_and_bad_shapes() {
        assert!(ThreadedBackend::new(8).is_err()); // not a perfect square
        let mut backend = ThreadedBackend::new(4).unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(8, 8));
        backend.materialize(&env).unwrap();
        let u = Matrix::zeros(8, 1);
        assert!(backend.apply_delta(&mut env, "Z", &u, &u).is_err());
        assert!(matches!(
            backend.apply_delta(&mut env, "A", &Matrix::zeros(6, 1), &u),
            Err(RuntimeError::UpdateShape { .. })
        ));
        // Indivisible dimension fails materialize but leaves the previous
        // partitions (and the worker threads) intact.
        env.bind("Odd", Matrix::zeros(7, 7));
        assert!(backend.materialize(&env).is_err());
        assert!(backend.view("A").is_ok());
        assert!(backend.view("Odd").is_err());
    }

    #[test]
    fn threaded_backend_rematerialize_replaces_worker_state() {
        let mut backend = ThreadedBackend::with_cluster(Cluster::with_grid(2, 1));
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(6, 6, 7));
        backend.materialize(&env).unwrap();
        env.bind("A", Matrix::random_uniform(6, 6, 8));
        backend.materialize(&env).unwrap();
        assert_eq!(&backend.view("A").unwrap(), env.get("A").unwrap());
        assert_eq!(backend.partitioned_views().count(), 1);
    }

    #[test]
    fn dist_backend_rejects_unknown_targets_and_bad_grids() {
        assert!(DistBackend::new(8).is_err()); // not a perfect square
        let mut backend = DistBackend::new(4).unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(8, 8));
        backend.materialize(&env).unwrap();
        let u = Matrix::zeros(8, 1);
        assert!(backend.apply_delta(&mut env, "Z", &u, &u).is_err());
        // Indivisible dimension surfaces at materialize time — and the
        // failure leaves the previous partitions intact (restore() relies
        // on this to keep a view consistent after a bad checkpoint).
        env.bind("Odd", Matrix::zeros(7, 7));
        assert!(backend.materialize(&env).is_err());
        assert!(backend.dist_view("A").is_some());
        assert!(backend.dist_view("Odd").is_none());
    }
}
