//! The named-matrix environment backing program and trigger execution.

use linview_matrix::Matrix;
use std::collections::BTreeMap;

use crate::{Result, RuntimeError};

/// A mutable binding of matrix names to values — the "database" of base
/// relations and materialized views.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: BTreeMap<String, Matrix>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) `name` to `value`.
    pub fn bind(&mut self, name: impl Into<String>, value: Matrix) {
        self.bindings.insert(name.into(), value);
    }

    /// Immutable lookup.
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.bindings
            .get(name)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Matrix> {
        self.bindings
            .get_mut(name)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// Simultaneous mutable access to several **distinct** bindings — the
    /// disjoint environment slots a staged delta application writes from
    /// worker threads. Returns the matrices in `names` order.
    ///
    /// Missing names error with [`RuntimeError::Unbound`]. Duplicate names
    /// panic: the stage scheduler's write-after-write edges guarantee a
    /// stage never folds two deltas into one view, so a duplicate here is
    /// an internal invariant violation, not a runtime condition.
    pub fn get_many_mut(&mut self, names: &[&str]) -> Result<Vec<&mut Matrix>> {
        for (i, name) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(name),
                "duplicate environment slot '{name}' requested in one stage"
            );
            if !self.bindings.contains_key(*name) {
                return Err(RuntimeError::Unbound(name.to_string()));
            }
        }
        let mut slots: Vec<Option<&mut Matrix>> = names.iter().map(|_| None).collect();
        for (key, value) in self.bindings.iter_mut() {
            if let Some(pos) = names.iter().position(|n| n == key) {
                slots[pos] = Some(value);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("presence checked above"))
            .collect())
    }

    /// Removes a binding, returning it if present.
    pub fn unbind(&mut self, name: &str) -> Option<Matrix> {
        self.bindings.remove(name)
    }

    /// True when `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound matrices.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Total heap footprint of all bound matrices, in bytes. This is the
    /// quantity Table 3 reports ("the memory requirements … of ReevalExp
    /// and IncrExp").
    pub fn memory_bytes(&self) -> usize {
        self.bindings.values().map(Matrix::memory_bytes).sum()
    }

    /// Names bound in this environment (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_roundtrip() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        assert_eq!(env.get("A").unwrap().shape(), (3, 3));
        assert!(matches!(env.get("B"), Err(RuntimeError::Unbound(_))));
    }

    #[test]
    fn rebind_replaces() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        env.bind("A", Matrix::zeros(2, 2));
        assert_eq!(env.get("A").unwrap().shape(), (2, 2));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn unbind_removes() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        assert!(env.unbind("A").is_some());
        assert!(env.unbind("A").is_none());
        assert!(env.is_empty());
    }

    #[test]
    fn memory_accounting_sums_views() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(10, 10)); // 800 B
        env.bind("B", Matrix::zeros(5, 4)); // 160 B
        assert_eq!(env.memory_bytes(), 960);
    }

    #[test]
    fn get_many_mut_returns_disjoint_slots_in_request_order() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(2, 2));
        env.bind("B", Matrix::zeros(3, 3));
        env.bind("C", Matrix::zeros(4, 4));
        let slots = env.get_many_mut(&["C", "A"]).unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].shape(), (4, 4));
        assert_eq!(slots[1].shape(), (2, 2));
        for s in slots {
            s.set(0, 0, 1.0);
        }
        assert_eq!(env.get("A").unwrap().get(0, 0), 1.0);
        assert_eq!(env.get("B").unwrap().get(0, 0), 0.0);
        assert!(matches!(
            env.get_many_mut(&["A", "nope"]),
            Err(RuntimeError::Unbound(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate environment slot")]
    fn get_many_mut_rejects_duplicates() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(2, 2));
        let _ = env.get_many_mut(&["A", "A"]);
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(2, 2));
        env.get_mut("A").unwrap().set(0, 0, 5.0);
        assert_eq!(env.get("A").unwrap().get(0, 0), 5.0);
    }
}
