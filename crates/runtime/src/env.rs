//! The named-matrix environment backing program and trigger execution.

use linview_matrix::Matrix;
use std::collections::BTreeMap;

use crate::{Result, RuntimeError};

/// A mutable binding of matrix names to values — the "database" of base
/// relations and materialized views.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: BTreeMap<String, Matrix>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) `name` to `value`.
    pub fn bind(&mut self, name: impl Into<String>, value: Matrix) {
        self.bindings.insert(name.into(), value);
    }

    /// Immutable lookup.
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.bindings
            .get(name)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Matrix> {
        self.bindings
            .get_mut(name)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// Removes a binding, returning it if present.
    pub fn unbind(&mut self, name: &str) -> Option<Matrix> {
        self.bindings.remove(name)
    }

    /// True when `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound matrices.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Total heap footprint of all bound matrices, in bytes. This is the
    /// quantity Table 3 reports ("the memory requirements … of ReevalExp
    /// and IncrExp").
    pub fn memory_bytes(&self) -> usize {
        self.bindings.values().map(Matrix::memory_bytes).sum()
    }

    /// Names bound in this environment (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.bindings.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_roundtrip() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        assert_eq!(env.get("A").unwrap().shape(), (3, 3));
        assert!(matches!(env.get("B"), Err(RuntimeError::Unbound(_))));
    }

    #[test]
    fn rebind_replaces() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        env.bind("A", Matrix::zeros(2, 2));
        assert_eq!(env.get("A").unwrap().shape(), (2, 2));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn unbind_removes() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        assert!(env.unbind("A").is_some());
        assert!(env.unbind("A").is_none());
        assert!(env.is_empty());
    }

    #[test]
    fn memory_accounting_sums_views() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(10, 10)); // 800 B
        env.bind("B", Matrix::zeros(5, 4)); // 160 B
        assert_eq!(env.memory_bytes(), 960);
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut env = Env::new();
        env.bind("A", Matrix::zeros(2, 2));
        env.get_mut("A").unwrap().set(0, 0, 5.0);
        assert_eq!(env.get("A").unwrap().get(0, 0), 5.0);
    }
}
