//! Streaming view maintenance: batched multi-input ingestion on top of any
//! execution backend.
//!
//! The paper's workload is "a continuous random stream of rank-1 updates"
//! (§7), and its Table 4 shows that firing one rank-`k` trigger per *batch*
//! beats `k` rank-1 firings whenever updates share structure (skewed row
//! distributions compact to far fewer distinct rows). [`MaintenanceEngine`]
//! operationalizes that: it ingests `(input, update)` events across
//! **multiple** dynamic inputs, buffers them per input, coalesces each
//! buffer into one [`BatchUpdate`] under a configurable [`FlushPolicy`],
//! and fires the compiled trigger through the view's
//! [`crate::ExecBackend`] — accumulating unified refresh
//! ([`RefreshStats`]) and communication ([`CommSnapshot`]) accounting as it
//! goes.
//!
//! Batched ingestion is *exact*: triggers are rank-generic, so one rank-`k`
//! firing folds the same delta as `k` sequential rank-1 firings (the
//! property the engine's tests assert against full re-evaluation).
//!
//! When a flush round covers every dynamic input, the engine goes one step
//! further and fires ONE *joint* trigger (§4.4) for all of them via
//! [`IncrementalView::apply_joint`] — saving `inputs − 1` firings per
//! round, with the savings reported in [`EngineStats::joint_rounds`] /
//! [`EngineStats::triggers_saved`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use linview_dist::CommSnapshot;
use linview_matrix::Matrix;

use crate::checkpoint::CheckpointError;
use crate::stats::{measure, RefreshStats, StatsAccumulator};
use crate::updates::{BatchUpdate, RankOneUpdate};
use crate::wal::{FiringRecord, WalFile};
use crate::{ExecBackend, IncrementalView, LocalBackend, Result, SparseStats};

/// Relative singular-value tolerance for the pre-flush rank compression
/// pass: components of a coalesced batch below `1e-12 · σ_max` are noise
/// at `f64` working precision and are dropped before the factors are
/// folded (and, on communicating backends, broadcast).
const RECOMPRESS_TOL: f64 = 1e-12;

/// When a per-input buffer of pending rank-1 events is coalesced and fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Fire on every ingested event (no batching; the §7 baseline).
    Immediate,
    /// Flush an input once it has buffered this many rank-1 events
    /// (values `< 1` behave like [`FlushPolicy::Immediate`]).
    Count(usize),
    /// Flush an input once the *effective rank* of its pending buffer —
    /// distinct rows touched by row updates, plus one per dense update —
    /// reaches this threshold. Under a skewed stream this admits long
    /// cheap batches (Table 4's regime) while bounding trigger cost.
    Rank(usize),
}

impl FlushPolicy {
    fn should_flush(&self, pending: &PendingBuffer) -> bool {
        match *self {
            FlushPolicy::Immediate => true,
            FlushPolicy::Count(c) => pending.len() >= c.max(1),
            FlushPolicy::Rank(r) => pending.effective_rank() >= r.max(1),
        }
    }
}

/// One input's buffered events, with the effective rank maintained
/// incrementally (O(n) per push via [`RankOneUpdate::basis_row`] — the
/// same classification `compact_rows` applies at flush time) so the
/// [`FlushPolicy::Rank`] check never rescans the buffer.
#[derive(Debug, Clone, Default)]
struct PendingBuffer {
    events: Vec<RankOneUpdate>,
    /// Distinct rows touched by row updates.
    rows: std::collections::BTreeSet<usize>,
    /// Dense (non-basis) updates, each contributing one rank.
    dense: usize,
}

impl PendingBuffer {
    fn push(&mut self, upd: RankOneUpdate) {
        match upd.basis_row() {
            Some(r) => {
                self.rows.insert(r);
            }
            None => self.dense += 1,
        }
        self.events.push(upd);
    }

    fn len(&self) -> usize {
        self.events.len()
    }

    fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Upper bound on the rank the buffer compacts to: distinct rows
    /// touched by row updates, plus one per dense update.
    fn effective_rank(&self) -> usize {
        self.rows.len() + self.dense
    }
}

/// Ingestion and firing counters, with per-firing refresh measurements.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Rank-1 events ingested (across all inputs).
    pub events: u64,
    /// Trigger firings performed (one per flushed non-empty buffer, and
    /// one per joint flush round).
    pub firings: u64,
    /// Total coalesced rank fired; `fired_rank < events` measures how much
    /// work row compaction saved.
    pub fired_rank: u64,
    /// Joint flush rounds performed: [`MaintenanceEngine::flush_all`]
    /// rounds where every joint-trigger input had pending events and ONE
    /// joint firing (§4.4) replaced the per-input sequence.
    pub joint_rounds: u64,
    /// Per-input trigger firings avoided by joint rounds (inputs covered
    /// minus one, summed over rounds) — the flush loop's §4.4 savings.
    pub triggers_saved: u64,
    /// Trigger statements executed across all firings.
    pub stmts: u64,
    /// Execution stages those statements were grouped into by the
    /// compile-time dependency DAG (equals `stmts` when running with
    /// [`ExecOptions::sequential`](crate::ExecOptions) or for
    /// chain-dependent triggers).
    pub stages: u64,
    /// View writes folded through stage barriers across all firings; in
    /// debug builds each was asserted against the statically-proved effect
    /// sets (see `FiringReport::writes`).
    pub writes: u64,
    /// Factor broadcasts that overlapped an earlier broadcast of the same
    /// stage on the wire (dist/threaded backends; always 0 on local).
    pub overlapped_broadcasts: u64,
    /// Sparse-execution counters accumulated across firings: fold-path
    /// choices, compressed broadcast frames and the bytes they saved, plus
    /// the rank shed by the engine's pre-flush recompression pass.
    pub sparse: SparseStats,
    /// Wall-time + FLOP samples, one per firing.
    pub refresh: StatsAccumulator,
}

impl EngineStats {
    /// Mean refresh cost per firing.
    pub fn mean_refresh(&self) -> RefreshStats {
        RefreshStats {
            wall: self.refresh.mean_wall(),
            flops: self.refresh.mean_flops() as u64,
        }
    }

    /// Statements that ran inside an already-open stage instead of
    /// lengthening the critical path — the staged scheduler's savings.
    pub fn stmts_saved(&self) -> u64 {
        self.stmts - self.stages
    }
}

/// Fault-tolerance counters: what checkpointing cost and what recovery
/// moved.
///
/// The communication triple (`aborted`/`reinstall`/`replay`) partitions
/// every byte a *disturbed* run sends beyond its undisturbed twin, so the
/// conformance suite can reconcile meters exactly:
/// `disturbed.comm == undisturbed.comm + aborted + reinstall + replay`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Snapshots taken (one at enable time, then every `N` firings).
    pub checkpoints: u64,
    /// Firings appended to the delta log since checkpointing was enabled.
    pub logged_firings: u64,
    /// [`MaintenanceEngine::recover`] invocations.
    pub recoveries: u64,
    /// Logged firings re-fired during recoveries.
    pub replayed_firings: u64,
    /// Total rank those replayed firings folded.
    pub replayed_rank: u64,
    /// Broadcast bytes spent on firings that failed and were rolled back.
    pub aborted_bytes: u64,
    /// Broadcast messages of those aborted firings.
    pub aborted_msgs: u64,
    /// Bytes moved re-installing the checkpoint snapshot on the workers.
    pub reinstall_bytes: u64,
    /// Messages of those re-installs.
    pub reinstall_msgs: u64,
    /// Bytes moved replaying the delta log after a re-install.
    pub replay_bytes: u64,
    /// Messages of those replays.
    pub replay_msgs: u64,
}

impl RecoveryStats {
    /// All recovery-attributable traffic: aborted + reinstall + replay.
    pub fn overhead_bytes(&self) -> u64 {
        self.aborted_bytes + self.reinstall_bytes + self.replay_bytes
    }

    /// All recovery-attributable messages.
    pub fn overhead_msgs(&self) -> u64 {
        self.aborted_msgs + self.reinstall_msgs + self.replay_msgs
    }
}

/// The engine's fault-tolerance state: the last environment snapshot plus
/// the delta log of every firing since (see [`crate::wal`]).
#[derive(Debug, Clone)]
struct CheckpointState {
    /// Take a fresh snapshot after this many logged firings.
    every: usize,
    /// Firings logged since the last snapshot.
    rounds_since: usize,
    /// The last full-environment snapshot ([`crate::checkpoint::save`]).
    snapshot: Bytes,
    /// Encoded [`FiringRecord`]s since `snapshot`, in firing order.
    log: Vec<Bytes>,
    /// Backend communication at the last *successful* firing (or
    /// snapshot); anything metered past this at recover time was spent on
    /// the aborted firing.
    comm_at_last_success: CommSnapshot,
    /// On-disk mirror of `snapshot` + `log`; `None` for in-memory-only
    /// checkpointing.
    durable: Option<DurableState>,
}

/// Disk persistence for the checkpoint story: a generation-stamped
/// snapshot file plus one append-only delta WAL per generation, mirroring
/// [`CheckpointState`].
///
/// Crash safety hinges on the roll order: a new generation's (empty) WAL
/// is created *before* the new snapshot is renamed into place, and the old
/// generation's WAL is deleted only *after*. The snapshot names the
/// generation it covers, so recovery always replays exactly the WAL that
/// belongs to the snapshot it restored — a crash at any point between the
/// steps leaves either (old snapshot, old WAL) or (new snapshot, empty new
/// WAL), both consistent; never a snapshot paired with already-folded
/// records.
#[derive(Debug, Clone)]
struct DurableState {
    dir: PathBuf,
    gen: u64,
    wal: WalFile,
}

/// File name of the environment snapshot inside a durable checkpoint
/// directory (`u64` LE generation header, then the
/// [`crate::checkpoint::save`] bytes).
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

fn ckpt_io(dir: &Path, what: &str, e: &std::io::Error) -> CheckpointError {
    CheckpointError::new(format!("durable checkpoint {what} {}: {e}", dir.display()))
}

impl DurableState {
    fn wal_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("wal-{gen}.bin"))
    }

    /// Starts generation `gen`: fresh empty WAL first, then the snapshot
    /// (temp file + atomic rename), then a sweep of stale-generation WALs.
    fn create(dir: &Path, gen: u64, snapshot: &Bytes) -> Result<DurableState> {
        let wal = WalFile::open(Self::wal_path(dir, gen))?;
        wal.truncate()?;
        let d = DurableState {
            dir: dir.to_path_buf(),
            gen,
            wal,
        };
        d.write_snapshot(snapshot)?;
        d.sweep_stale_wals();
        Ok(d)
    }

    fn write_snapshot(&self, snapshot: &Bytes) -> Result<()> {
        let final_path = self.dir.join(CHECKPOINT_FILE);
        let tmp_path = self.dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        let mut buf = Vec::with_capacity(8 + snapshot.len());
        buf.extend_from_slice(&self.gen.to_le_bytes());
        buf.extend_from_slice(snapshot);
        std::fs::write(&tmp_path, &buf).map_err(|e| ckpt_io(&self.dir, "write", &e))?;
        std::fs::rename(&tmp_path, &final_path).map_err(|e| ckpt_io(&self.dir, "rename", &e))?;
        Ok(())
    }

    /// Best-effort removal of WALs from other generations (left behind by
    /// a crash mid-roll).
    fn sweep_stale_wals(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let keep = Self::wal_path(&self.dir, self.gen);
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".bin") && path != keep {
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// Reads the snapshot header back: `(generation, env snapshot bytes)`.
    fn load_snapshot(dir: &Path) -> Result<(u64, Bytes)> {
        let raw = std::fs::read(dir.join(CHECKPOINT_FILE)).map_err(|e| ckpt_io(dir, "read", &e))?;
        if raw.len() < 8 {
            return Err(CheckpointError::new(format!(
                "durable checkpoint {}: truncated generation header",
                dir.display()
            ))
            .into());
        }
        let gen = u64::from_le_bytes(raw[..8].try_into().expect("8-byte slice"));
        let len = raw.len();
        Ok((gen, Bytes::from(raw).slice(8..len)))
    }
}

/// What [`MaintenanceEngine::recover_from_disk`] found and replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskRecovery {
    /// Complete WAL records replayed on top of the snapshot.
    pub replayed_firings: u64,
    /// Bytes of a cleanly torn WAL tail (a crash mid-append) that were
    /// detected, discarded, and truncated from the file. Zero for an
    /// intact log; callers should log a warning when nonzero.
    pub torn_tail_bytes: u64,
}

/// A streaming maintenance engine over an [`IncrementalView`].
///
/// Reads ([`MaintenanceEngine::get`]) observe only *flushed* state; call
/// [`MaintenanceEngine::flush_all`] (or use [`FlushPolicy::Immediate`])
/// before reading when every ingested event must be visible.
///
/// # Fault tolerance
///
/// With [`MaintenanceEngine::enable_checkpointing`] the engine snapshots
/// the full environment every `N` firings and logs the factored deltas of
/// every firing in between ([`crate::wal`]). After a backend failure — a
/// dead worker, a torn connection — [`MaintenanceEngine::recover`]
/// restores the snapshot (reviving dead transport peers) and replays the
/// log; because triggers are deterministic in the environment and the
/// update factors, the recovered state is **bit-identical** to the
/// pre-crash state, and the retried flush then proceeds exactly as an
/// undisturbed run would have.
#[derive(Debug, Clone)]
pub struct MaintenanceEngine<B: ExecBackend = LocalBackend> {
    view: IncrementalView<B>,
    policy: FlushPolicy,
    pending: BTreeMap<String, PendingBuffer>,
    stats: EngineStats,
    /// When set (the default), [`MaintenanceEngine::flush_all`] fires ONE
    /// joint trigger per flush round whenever every joint input has
    /// pending events, instead of one trigger per input.
    joint_flush: bool,
    /// Checkpoint + delta-log state; `None` until enabled.
    ckpt: Option<CheckpointState>,
    recovery: RecoveryStats,
}

impl<B: ExecBackend> MaintenanceEngine<B> {
    /// Wraps an already-built view. Joint flush rounds are enabled; see
    /// [`MaintenanceEngine::set_joint_flush`].
    pub fn new(view: IncrementalView<B>, policy: FlushPolicy) -> Self {
        MaintenanceEngine {
            view,
            policy,
            pending: BTreeMap::new(),
            stats: EngineStats::default(),
            joint_flush: true,
            ckpt: None,
            recovery: RecoveryStats::default(),
        }
    }

    /// Turns on checkpoint/replay fault tolerance: snapshots the current
    /// environment immediately, then re-snapshots after every `every`
    /// logged firings, keeping a delta log of the firings in between.
    /// `every = 0` behaves like `1` (snapshot after every firing).
    ///
    /// Call it *after* the view is materialized and before streaming; the
    /// snapshot taken here is the recovery floor.
    pub fn enable_checkpointing(&mut self, every: usize) -> Result<()> {
        let snapshot = self.view.checkpoint()?;
        self.install_ckpt(every, snapshot, None);
        Ok(())
    }

    /// As [`MaintenanceEngine::enable_checkpointing`], but also mirrors the
    /// snapshot and the delta log to disk under `dir` (created if absent):
    /// the snapshot as [`CHECKPOINT_FILE`] (generation header + bytes,
    /// written atomically via temp-file + rename) and the log as one
    /// append-only `wal-<generation>.bin` per checkpoint generation (see
    /// [`crate::wal::WalFile`]). After a *process* crash — not just a
    /// backend failure — a fresh engine built over the same program can
    /// resume bit-identically with [`MaintenanceEngine::recover_from_disk`].
    ///
    /// Any previous durable state under `dir` is overwritten; use
    /// [`MaintenanceEngine::recover_from_disk`] instead to resume from it.
    pub fn enable_durable_checkpointing(
        &mut self,
        every: usize,
        dir: impl AsRef<Path>,
    ) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| ckpt_io(dir, "mkdir", &e))?;
        let snapshot = self.view.checkpoint()?;
        let durable = DurableState::create(dir, 0, &snapshot)?;
        self.install_ckpt(every, snapshot, Some(durable));
        Ok(())
    }

    fn install_ckpt(&mut self, every: usize, snapshot: Bytes, durable: Option<DurableState>) {
        self.ckpt = Some(CheckpointState {
            every: every.max(1),
            rounds_since: 0,
            snapshot,
            log: Vec::new(),
            comm_at_last_success: self.view.comm(),
            durable,
        });
        self.recovery.checkpoints += 1;
    }

    /// Path of the live on-disk WAL, when durable checkpointing is on.
    pub fn durable_wal_path(&self) -> Option<PathBuf> {
        self.ckpt
            .as_ref()
            .and_then(|c| c.durable.as_ref())
            .map(|d| d.wal.path().to_path_buf())
    }

    /// Restores the newest on-disk checkpoint under `dir` and replays its
    /// WAL, then starts a fresh checkpoint generation (cadence `every`)
    /// covering the recovered state — the crash-restart counterpart of
    /// [`MaintenanceEngine::recover`], for when the whole process died.
    ///
    /// A *cleanly torn* WAL tail (a crash mid-append cut the final record
    /// short) is detected, dropped, and truncated away; recovery proceeds
    /// from the last complete record and reports the dropped bytes in
    /// [`DiskRecovery::torn_tail_bytes`] so the caller can log it.
    /// Mid-file corruption — a complete record that does not decode — is
    /// still a typed [`RuntimeError::Checkpoint`](crate::RuntimeError):
    /// silently skipping folded state would diverge the views.
    pub fn recover_from_disk(
        &mut self,
        every: usize,
        dir: impl AsRef<Path>,
    ) -> Result<DiskRecovery> {
        let dir = dir.as_ref();
        let (gen, snapshot) = DurableState::load_snapshot(dir)?;
        let wal = WalFile::open(DurableState::wal_path(dir, gen))?;
        let recovered = wal.read()?;
        self.view.restore(snapshot)?;
        for record in &recovered.records {
            self.apply_record(record)?;
            self.recovery.replayed_rank += record.rank();
        }
        let replayed_firings = recovered.records.len() as u64;
        self.recovery.recoveries += 1;
        self.recovery.replayed_firings += replayed_firings;
        // Roll a fresh generation covering the recovered state so the
        // replay work is never paid twice.
        let post = self.view.checkpoint()?;
        let durable = DurableState::create(dir, gen + 1, &post)?;
        self.install_ckpt(every, post, Some(durable));
        Ok(DiskRecovery {
            replayed_firings,
            torn_tail_bytes: recovered.torn_tail_bytes,
        })
    }

    /// Re-fires one logged record against the view (the replay primitive
    /// shared by in-memory and on-disk recovery).
    fn apply_record(&mut self, record: &FiringRecord) -> Result<()> {
        if record.joint {
            let updates: Vec<(&str, &Matrix, &Matrix)> = record
                .updates
                .iter()
                .map(|(name, u, v)| (name.as_str(), u, v))
                .collect();
            self.view.apply_joint(&updates)
        } else {
            for (input, u, v) in &record.updates {
                self.view.apply_factored(input, u, v)?;
            }
            Ok(())
        }
    }

    /// Whether checkpoint/replay fault tolerance is on.
    pub fn checkpointing_enabled(&self) -> bool {
        self.ckpt.is_some()
    }

    /// Checkpoint/recovery counters (all zero until
    /// [`MaintenanceEngine::enable_checkpointing`]).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Logs a successful firing and rolls the checkpoint when the cadence
    /// says so. Must be called *after* the firing succeeded — the log may
    /// only ever contain firings the view state actually reflects.
    fn note_firing(&mut self, record: &FiringRecord) -> Result<()> {
        let comm = self.view.comm();
        let Some(ckpt) = self.ckpt.as_mut() else {
            return Ok(());
        };
        ckpt.log.push(record.encode());
        if let Some(d) = &ckpt.durable {
            d.wal.append(record)?;
        }
        ckpt.rounds_since += 1;
        ckpt.comm_at_last_success = comm;
        self.recovery.logged_firings += 1;
        if ckpt.rounds_since >= ckpt.every {
            let snapshot = self.view.checkpoint()?;
            let Some(ckpt) = self.ckpt.as_mut() else {
                unreachable!("checkpoint state checked above");
            };
            if let Some(d) = ckpt.durable.clone() {
                // Roll the generation: the new WAL exists (empty) before
                // the new snapshot lands, and the old WAL outlives both, so
                // a crash at any point recovers consistently.
                ckpt.durable = Some(DurableState::create(&d.dir, d.gen + 1, &snapshot)?);
            }
            ckpt.snapshot = snapshot;
            ckpt.log.clear();
            ckpt.rounds_since = 0;
            self.recovery.checkpoints += 1;
        }
        Ok(())
    }

    /// Restores the last checkpoint and replays the delta log, returning
    /// the engine to the exact state after the last successful firing.
    ///
    /// This is the recovery path for backend failures (a killed worker, a
    /// torn socket): restoring re-materializes the environment through the
    /// backend — reviving dead transport peers first — and replaying
    /// re-fires each logged record's factors, which is bit-identical to
    /// the original firings because triggers are deterministic. Pending
    /// (unfired) buffers are untouched; re-issue the failed
    /// [`MaintenanceEngine::flush`] / [`MaintenanceEngine::flush_all`]
    /// after recovering.
    ///
    /// Errors if checkpointing was never enabled, or if the backend is
    /// still unreachable (recovery can be retried).
    pub fn recover(&mut self) -> Result<()> {
        let Some(ckpt) = self.ckpt.as_ref() else {
            return Err(CheckpointError::new(
                "recover() without enable_checkpointing(): no snapshot to restore",
            )
            .into());
        };
        let snapshot = ckpt.snapshot.clone();
        let log = ckpt.log.clone();
        let comm_at_last_success = ckpt.comm_at_last_success;

        // 1. Account the aborted firing: whatever was metered past the
        //    last success was spent on work recovery is about to discard.
        let comm_now = self.view.comm();
        self.recovery.aborted_bytes += comm_now.total_bytes() - comm_at_last_success.total_bytes();
        self.recovery.aborted_msgs += comm_now.total_msgs() - comm_at_last_success.total_msgs();

        // 2. Restore the snapshot. `restore` re-materializes through the
        //    backend, which revives dead peers before re-installing.
        let before_restore = self.view.comm();
        self.view.restore(snapshot)?;
        let after_restore = self.view.comm();
        self.recovery.reinstall_bytes += after_restore.total_bytes() - before_restore.total_bytes();
        self.recovery.reinstall_msgs += after_restore.total_msgs() - before_restore.total_msgs();

        // 3. Replay the delta log in firing order.
        for encoded in log {
            let record = FiringRecord::decode(encoded)?;
            self.apply_record(&record)?;
            self.recovery.replayed_firings += 1;
            self.recovery.replayed_rank += record.rank();
        }
        let after_replay = self.view.comm();
        self.recovery.replay_bytes += after_replay.total_bytes() - after_restore.total_bytes();
        self.recovery.replay_msgs += after_replay.total_msgs() - after_restore.total_msgs();
        self.recovery.recoveries += 1;
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.comm_at_last_success = after_replay;
        }
        Ok(())
    }

    /// Enables or disables joint flush rounds in
    /// [`MaintenanceEngine::flush_all`]. Joint and sequential flushing fold
    /// the same deltas (§4.4's trigger is exact), so this only trades
    /// trigger firings — it never changes maintained views beyond
    /// floating-point round-off.
    pub fn set_joint_flush(&mut self, on: bool) {
        self.joint_flush = on;
    }

    /// Whether flush rounds use the joint trigger when possible.
    pub fn joint_flush(&self) -> bool {
        self.joint_flush
    }

    /// Buffers one rank-1 event against `input`, flushing that input's
    /// buffer when the policy says so.
    pub fn ingest(&mut self, input: &str, upd: RankOneUpdate) -> Result<()> {
        self.stats.events += 1;
        let buf = self.pending.entry(input.to_string()).or_default();
        buf.push(upd);
        if self.policy.should_flush(buf) {
            self.flush(input)?;
        }
        Ok(())
    }

    /// Coalesces and fires `input`'s pending buffer (a no-op when empty).
    /// The buffer is compacted to distinct rows first, so a Zipf-skewed
    /// batch fires at its *effective* rank.
    ///
    /// On error the buffered events are retained, so a failed flush (an
    /// unknown input, a shape mismatch) never silently discards ingested
    /// updates — the caller can inspect or drop them explicitly. If the
    /// trigger itself fails mid-firing the view follows the usual
    /// [`IncrementalView`] partial-failure semantics.
    pub fn flush(&mut self, input: &str) -> Result<()> {
        let Some(buf) = self.pending.remove(input) else {
            return Ok(());
        };
        if buf.is_empty() {
            return Ok(());
        }
        if let Err(e) = self.fire_buffer(input, &buf.events) {
            self.pending.insert(input.to_string(), buf);
            return Err(e);
        }
        Ok(())
    }

    /// Folds the scheduling counters the last firing added to the view and
    /// its backend into the engine's statistics.
    fn record_sched(
        &mut self,
        sched_before: crate::SchedStats,
        sparse_before: SparseStats,
        overlap_before: crate::SchedSnapshot,
    ) {
        let sched = self.view.sched_stats();
        self.stats.stmts += sched.stmts - sched_before.stmts;
        self.stats.stages += sched.stages - sched_before.stages;
        self.stats.writes += sched.writes - sched_before.writes;
        self.stats.overlapped_broadcasts +=
            self.view.backend().sched().overlapped - overlap_before.overlapped;
        self.stats
            .sparse
            .merge(self.view.sparse_stats().since(sparse_before));
    }

    /// Rank-compresses a coalesced batch before it is fired (relative
    /// tolerance [`RECOMPRESS_TOL`]). The compressed factors replace the
    /// batch only when the SVD pass proves a *strictly smaller* numerical
    /// rank — its output is dense, so accepting a same-rank result would
    /// densify sparse basis factors for no gain. Runs unconditionally
    /// (never gated on the sparse-fold knob) so sparse and forced-dense
    /// executions fold identical deltas.
    fn recompress_batch(&mut self, batch: BatchUpdate) -> Result<BatchUpdate> {
        if batch.rank() < 2 {
            return Ok(batch);
        }
        let rc = linview_matrix::recompress(&batch.u, &batch.v, RECOMPRESS_TOL)?;
        if rc.rank_after < rc.rank_before {
            let saved = (rc.rank_before - rc.rank_after) as u64;
            let rebuilt = BatchUpdate::new(rc.u, rc.v)?;
            self.stats.sparse.rank_saved += saved;
            return Ok(rebuilt);
        }
        Ok(batch)
    }

    fn fire_buffer(&mut self, input: &str, events: &[RankOneUpdate]) -> Result<()> {
        let batch = BatchUpdate::from_rank_ones(events)?.compact_rows()?;
        if batch.rank() == 0 {
            return Ok(()); // all events cancelled out to an empty delta
        }
        let batch = self.recompress_batch(batch)?;
        let sched_before = self.view.sched_stats();
        let sparse_before = self.view.sparse_stats();
        let overlap_before = self.view.backend().sched();
        let (result, refresh) = measure(|| self.view.apply_batch(input, &batch));
        result?;
        self.record_sched(sched_before, sparse_before, overlap_before);
        self.stats.firings += 1;
        self.stats.fired_rank += batch.rank() as u64;
        self.stats.refresh.record(refresh);
        if self.ckpt.is_some() {
            // Log exactly what was fired (post-compaction, post-recompress)
            // so replay re-folds the identical factors.
            self.note_firing(&FiringRecord::single(
                input,
                batch.u.clone(),
                batch.v.clone(),
            ))?;
        }
        Ok(())
    }

    /// Flushes every pending buffer as one *flush round*: when joint
    /// flushing is enabled and every input of the compiled joint trigger
    /// has pending events, all of them are coalesced and folded by ONE
    /// joint firing (§4.4); whatever remains (inputs outside the joint
    /// set, or a round that could not go joint) is flushed sequentially in
    /// input-name order.
    pub fn flush_all(&mut self) -> Result<()> {
        if self.joint_flush {
            self.flush_joint_round()?;
        }
        let inputs: Vec<String> = self.pending.keys().cloned().collect();
        for input in inputs {
            self.flush(&input)?;
        }
        Ok(())
    }

    /// Attempts the joint firing of a flush round. Fires — and consumes the
    /// covered buffers — only when *every* joint input has a pending batch
    /// of rank ≥ 1 and the joint set spans at least two inputs (a lone
    /// input gains nothing over its own trigger). On error every buffer is
    /// retained, mirroring [`MaintenanceEngine::flush`].
    fn flush_joint_round(&mut self) -> Result<()> {
        let Some(joint_inputs) = self.view.joint_inputs().map(<[String]>::to_vec) else {
            return Ok(());
        };
        if joint_inputs.len() < 2 {
            return Ok(());
        }
        let mut batches: Vec<(String, BatchUpdate)> = Vec::with_capacity(joint_inputs.len());
        for input in &joint_inputs {
            let Some(buf) = self.pending.get(input) else {
                return Ok(());
            };
            if buf.is_empty() {
                return Ok(());
            }
            let batch = BatchUpdate::from_rank_ones(&buf.events)?.compact_rows()?;
            if batch.rank() == 0 {
                // Fully cancelled buffer: the sequential path drops it as a
                // no-op, and the round no longer covers every input.
                return Ok(());
            }
            let batch = self.recompress_batch(batch)?;
            batches.push((input.clone(), batch));
        }
        let updates: Vec<(&str, &Matrix, &Matrix)> = batches
            .iter()
            .map(|(name, b)| (name.as_str(), &b.u, &b.v))
            .collect();
        let sched_before = self.view.sched_stats();
        let sparse_before = self.view.sparse_stats();
        let overlap_before = self.view.backend().sched();
        let (result, refresh) = measure(|| self.view.apply_joint(&updates));
        result?;
        self.record_sched(sched_before, sparse_before, overlap_before);
        for (input, _) in &batches {
            self.pending.remove(input);
        }
        self.stats.firings += 1;
        self.stats.joint_rounds += 1;
        self.stats.triggers_saved += (batches.len() - 1) as u64;
        self.stats.fired_rank += batches.iter().map(|(_, b)| b.rank() as u64).sum::<u64>();
        self.stats.refresh.record(refresh);
        if self.ckpt.is_some() {
            let record = FiringRecord::joint(
                batches
                    .into_iter()
                    .map(|(input, b)| (input, b.u, b.v))
                    .collect(),
            );
            self.note_firing(&record)?;
        }
        Ok(())
    }

    /// Pending (buffered, not yet fired) events for `input`.
    pub fn pending_events(&self, input: &str) -> usize {
        self.pending.get(input).map_or(0, PendingBuffer::len)
    }

    /// Pending events across all inputs.
    pub fn pending_total(&self) -> usize {
        self.pending.values().map(PendingBuffer::len).sum()
    }

    /// Discards `input`'s buffered events without firing them (e.g. after
    /// a failed [`MaintenanceEngine::flush`] the caller decides to drop).
    pub fn discard_pending(&mut self, input: &str) -> usize {
        self.pending.remove(input).map_or(0, |b| b.len())
    }

    /// Turns on the wait-free read path: publishes an epoch-0 snapshot
    /// immediately, then republishes every `publish_every` flush rounds.
    /// See [`crate::snapshot`] and [`IncrementalView::enable_serving`].
    pub fn enable_serving(&mut self, publish_every: u64) -> crate::ViewHandle {
        self.view.enable_serving(publish_every)
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<crate::ViewHandle> {
        self.view.serving_handle()
    }

    /// Forces an immediate snapshot publication of the current state,
    /// regardless of cadence. Returns `false` when serving is off.
    pub fn publish_snapshot(&self) -> bool {
        self.view.publish_snapshot()
    }

    /// Reads a maintained matrix (flushed state only).
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.view.get(name)
    }

    /// Ingestion/firing counters and refresh measurements.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Cumulative communication of the underlying backend.
    pub fn comm(&self) -> CommSnapshot {
        self.view.comm()
    }

    /// The batching policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// The wrapped view.
    pub fn view(&self) -> &IncrementalView<B> {
        &self.view
    }

    /// Mutable access to the wrapped view (exec options, checkpointing).
    pub fn view_mut(&mut self) -> &mut IncrementalView<B> {
        &mut self.view
    }

    /// Unwraps the engine, discarding any pending (unflushed) events.
    pub fn into_view(self) -> IncrementalView<B> {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReevalView, UpdateStream};
    use linview_compiler::parse::parse_program;
    use linview_expr::Catalog;
    use linview_matrix::{ApproxEq, Matrix};

    fn two_input_setup(n: usize) -> (linview_compiler::Program, Catalog, Matrix, Matrix) {
        let program = parse_program("C := A * B; D := C * C;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        cat.declare("B", n, n);
        let a = Matrix::random_spectral(n, 3, 0.7);
        let b = Matrix::random_spectral(n, 4, 0.7);
        (program, cat, a, b)
    }

    #[test]
    fn batched_ingestion_matches_immediate_with_fewer_firings() {
        let n = 16;
        let (program, cat, a, b) = two_input_setup(n);
        let inputs = [("A", a.clone()), ("B", b.clone())];
        let mut immediate = MaintenanceEngine::new(
            IncrementalView::build(&program, &inputs, &cat).unwrap(),
            FlushPolicy::Immediate,
        );
        let mut batched = MaintenanceEngine::new(
            IncrementalView::build(&program, &inputs, &cat).unwrap(),
            FlushPolicy::Count(4),
        );
        let mut s1 = UpdateStream::new(n, n, 0.01, 7);
        let mut s2 = UpdateStream::new(n, n, 0.01, 7);
        let events = 24;
        for i in 0..events {
            let input = if i % 2 == 0 { "A" } else { "B" };
            immediate.ingest(input, s1.next_rank_one()).unwrap();
            batched.ingest(input, s2.next_rank_one()).unwrap();
        }
        immediate.flush_all().unwrap();
        batched.flush_all().unwrap();
        for view in ["A", "B", "C", "D"] {
            assert!(
                batched
                    .get(view)
                    .unwrap()
                    .approx_eq(immediate.get(view).unwrap(), 1e-9),
                "{view} diverged between batched and unbatched ingestion"
            );
        }
        assert_eq!(immediate.stats().firings, events);
        assert!(
            batched.stats().firings < immediate.stats().firings,
            "batch size 4 must fire strictly fewer triggers ({} !< {})",
            batched.stats().firings,
            immediate.stats().firings
        );
        assert_eq!(batched.stats().events, events);
    }

    #[test]
    fn engine_tracks_full_reevaluation() {
        let n = 12;
        let (program, cat, a, b) = two_input_setup(n);
        let mut reeval =
            ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(3),
        );
        let mut stream = UpdateStream::new(n, n, 0.01, 11);
        for i in 0..14 {
            let input = if i % 3 == 0 { "B" } else { "A" };
            let upd = stream.next_rank_one();
            reeval.apply(input, &upd).unwrap();
            engine.ingest(input, upd).unwrap();
        }
        engine.flush_all().unwrap();
        assert!(engine
            .get("D")
            .unwrap()
            .approx_eq(reeval.get("D").unwrap(), 1e-9));
    }

    #[test]
    fn rank_policy_flushes_on_effective_rank_not_event_count() {
        let n = 10;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Rank(2),
        );
        // Three updates to the SAME row: effective rank stays 1 — no flush.
        for seed in 0..3 {
            engine
                .ingest("A", RankOneUpdate::row_update(n, n, 4, 0.01, seed))
                .unwrap();
        }
        assert_eq!(engine.pending_events("A"), 3);
        assert_eq!(engine.stats().firings, 0);
        // A second distinct row reaches the rank threshold and fires once,
        // compacted to rank 2.
        engine
            .ingest("A", RankOneUpdate::row_update(n, n, 7, 0.01, 9))
            .unwrap();
        assert_eq!(engine.pending_events("A"), 0);
        assert_eq!(engine.stats().firings, 1);
        assert_eq!(engine.stats().fired_rank, 2);
    }

    #[test]
    fn flush_all_fires_one_joint_trigger_when_all_inputs_are_pending() {
        let n = 12;
        let (program, cat, a, b) = two_input_setup(n);
        let mut joint = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap(),
            FlushPolicy::Count(100), // never flush at ingest
        );
        let mut seq = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(100),
        );
        seq.set_joint_flush(false);
        assert!(joint.joint_flush());
        let mut s1 = UpdateStream::new(n, n, 0.01, 3);
        let mut s2 = UpdateStream::new(n, n, 0.01, 3);
        for i in 0..8 {
            let input = if i % 2 == 0 { "A" } else { "B" };
            joint.ingest(input, s1.next_rank_one()).unwrap();
            seq.ingest(input, s2.next_rank_one()).unwrap();
        }
        joint.flush_all().unwrap();
        seq.flush_all().unwrap();
        // One joint firing vs one per input.
        assert_eq!(joint.stats().firings, 1);
        assert_eq!(joint.stats().joint_rounds, 1);
        assert_eq!(joint.stats().triggers_saved, 1);
        assert_eq!(seq.stats().firings, 2);
        assert_eq!(seq.stats().joint_rounds, 0);
        assert_eq!(joint.stats().fired_rank, seq.stats().fired_rank);
        // §4.4's trigger is exact: same views up to round-off.
        for view in ["A", "B", "C", "D"] {
            assert!(
                joint
                    .get(view)
                    .unwrap()
                    .approx_eq(seq.get(view).unwrap(), 1e-9),
                "{view} diverged between joint and sequential flushing"
            );
        }
        assert_eq!(joint.pending_total(), 0);
    }

    #[test]
    fn partial_rounds_and_single_inputs_fall_back_to_sequential_flushes() {
        let n = 10;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(100),
        );
        // Only A pending: the joint round cannot cover B, so the flush is
        // one ordinary per-input firing.
        let mut stream = UpdateStream::new(n, n, 0.01, 5);
        engine.ingest("A", stream.next_rank_one()).unwrap();
        engine.flush_all().unwrap();
        assert_eq!(engine.stats().firings, 1);
        assert_eq!(engine.stats().joint_rounds, 0);
        assert_eq!(engine.stats().triggers_saved, 0);

        // A single-input program admits a joint form, but a joint firing
        // over one input saves nothing — stay on the per-input trigger.
        let program = parse_program("B := A * A;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, 7, 0.7);
        let mut single = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a)], &cat).unwrap(),
            FlushPolicy::Count(100),
        );
        single.ingest("A", stream.next_rank_one()).unwrap();
        single.flush_all().unwrap();
        assert_eq!(single.stats().firings, 1);
        assert_eq!(single.stats().joint_rounds, 0);
    }

    #[test]
    fn flush_is_a_noop_on_empty_or_unknown_inputs() {
        let n = 8;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(4),
        );
        engine.flush("A").unwrap();
        engine.flush("nope").unwrap();
        engine.flush_all().unwrap();
        assert_eq!(engine.stats().firings, 0);
        assert_eq!(engine.pending_total(), 0);
    }

    #[test]
    fn stats_record_refresh_samples_per_firing() {
        let n = 8;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(2),
        );
        let mut stream = UpdateStream::new(n, n, 0.01, 5);
        for _ in 0..4 {
            engine.ingest("A", stream.next_rank_one()).unwrap();
        }
        assert_eq!(engine.stats().firings, 2);
        assert_eq!(engine.stats().refresh.len(), 2);
        assert!(engine.stats().mean_refresh().flops > 0);
        // Local backend never communicates.
        assert_eq!(engine.comm().total_bytes(), 0);
    }

    #[test]
    fn effective_rank_counts_dense_updates_individually() {
        let n = 6;
        let mut buf = PendingBuffer::default();
        buf.push(RankOneUpdate::row_update(n, n, 2, 0.1, 1));
        buf.push(RankOneUpdate::row_update(n, n, 2, 0.1, 2));
        assert_eq!(buf.effective_rank(), 1, "same row merges");
        buf.push(RankOneUpdate::dense(n, n, 0.1, 3));
        assert_eq!(buf.effective_rank(), 2, "dense update adds one rank");
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn kill_and_recover_is_bit_identical_on_the_threaded_backend() {
        let n = 16;
        let (program, cat, a, b) = two_input_setup(n);
        let inputs = [("A", a.clone()), ("B", b.clone())];
        let mut undisturbed = MaintenanceEngine::new(
            IncrementalView::build_on(
                crate::ThreadedBackend::new(4).unwrap(),
                &program,
                &inputs,
                &cat,
            )
            .unwrap(),
            FlushPolicy::Count(3),
        );
        let mut disturbed = MaintenanceEngine::new(
            IncrementalView::build_on(
                crate::ThreadedBackend::new(4).unwrap(),
                &program,
                &inputs,
                &cat,
            )
            .unwrap(),
            FlushPolicy::Count(3),
        );
        disturbed.enable_checkpointing(2).unwrap();
        let mut s1 = UpdateStream::new(n, n, 0.01, 7);
        let mut s2 = UpdateStream::new(n, n, 0.01, 7);
        let mut failures = 0;
        for i in 0..12 {
            let input = if i % 2 == 0 { "A" } else { "B" };
            undisturbed.ingest(input, s1.next_rank_one()).unwrap();
            if i == 5 {
                // SIGKILL-equivalent: the worker thread is gone, taking its
                // blocks with it.
                disturbed.view_mut().backend_mut().pool_mut().kill_worker(2);
            }
            if let Err(e) = disturbed.ingest(input, s2.next_rank_one()) {
                assert!(matches!(e, crate::RuntimeError::Transport(_)), "{e}");
                failures += 1;
                disturbed.recover().unwrap();
                // The failed flush retained its buffer; retry exactly it
                // (NOT flush_all, which would change batch boundaries).
                disturbed.flush(input).unwrap();
            }
        }
        undisturbed.flush_all().unwrap();
        if disturbed.flush_all().is_err() {
            failures += 1;
            disturbed.recover().unwrap();
            disturbed.flush_all().unwrap();
        }
        assert!(failures > 0, "the kill must actually disturb the stream");
        let rec = disturbed.recovery_stats();
        assert_eq!(rec.recoveries as usize, failures);
        assert!(rec.checkpoints >= 1);

        // Bit-identical — not approximately equal — on every view, both on
        // the coordinator mirror and gathered back from the workers.
        for view in ["A", "B", "C", "D"] {
            let want = undisturbed.get(view).unwrap();
            let got = disturbed.get(view).unwrap();
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "{view} diverged after kill-and-recover"
            );
            let gathered = disturbed.view().backend().view(view).unwrap();
            assert_eq!(
                gathered.as_slice(),
                want.as_slice(),
                "worker-held {view} diverged after kill-and-recover"
            );
        }
        // And the meters reconcile exactly: every byte the disturbed run
        // moved beyond its twin is attributed to recovery.
        let d = disturbed.comm();
        let u = undisturbed.comm();
        assert_eq!(d.total_bytes(), u.total_bytes() + rec.overhead_bytes());
        assert_eq!(d.total_msgs(), u.total_msgs() + rec.overhead_msgs());
        assert_eq!(
            disturbed.stats().fired_rank + rec.replayed_rank,
            undisturbed.stats().fired_rank + rec.replayed_rank,
            "fired rank must match modulo replays"
        );
    }

    #[test]
    fn recover_on_a_healthy_engine_reproduces_its_own_state() {
        let n = 12;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(2),
        );
        engine.enable_checkpointing(3).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 9);
        for i in 0..10 {
            let input = if i % 2 == 0 { "A" } else { "B" };
            engine.ingest(input, stream.next_rank_one()).unwrap();
        }
        engine.flush_all().unwrap();
        let before: Vec<Vec<f64>> = ["A", "B", "C", "D"]
            .iter()
            .map(|v| engine.get(v).unwrap().as_slice().to_vec())
            .collect();
        // Recovery on an undamaged engine must be a state no-op: restore +
        // replay land exactly where the engine already is.
        engine.recover().unwrap();
        engine.recover().unwrap();
        for (view, want) in ["A", "B", "C", "D"].iter().zip(&before) {
            assert_eq!(
                engine.get(view).unwrap().as_slice(),
                &want[..],
                "{view} changed across healthy recover()"
            );
        }
        assert_eq!(engine.recovery_stats().recoveries, 2);
    }

    #[test]
    fn recover_without_checkpointing_is_a_checkpoint_error() {
        let n = 8;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Immediate,
        );
        assert!(!engine.checkpointing_enabled());
        let err = engine.recover().unwrap_err();
        assert!(matches!(err, crate::RuntimeError::Checkpoint(_)), "{err}");
    }

    #[test]
    fn checkpoint_cadence_rolls_the_log() {
        let n = 8;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Immediate,
        );
        engine.enable_checkpointing(2).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 4);
        for _ in 0..5 {
            engine.ingest("A", stream.next_rank_one()).unwrap();
        }
        let rec = engine.recovery_stats();
        assert_eq!(rec.logged_firings, 5);
        // 1 at enable + one per 2 firings.
        assert_eq!(rec.checkpoints, 3);
        // 5 firings, cadence 2: one firing sits in the live log.
        engine.recover().unwrap();
        assert_eq!(engine.recovery_stats().replayed_firings, 1);
    }

    #[test]
    fn failed_flush_retains_the_buffer_for_retry_or_discard() {
        let n = 8;
        let (program, cat, a, b) = two_input_setup(n);
        let mut engine = MaintenanceEngine::new(
            IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap(),
            FlushPolicy::Count(4),
        );
        // "Z" has no trigger: buffering succeeds, the flush fails, and the
        // events survive instead of being silently dropped.
        engine
            .ingest("Z", RankOneUpdate::row_update(n, n, 1, 0.01, 1))
            .unwrap();
        assert!(engine.flush_all().is_err());
        assert_eq!(engine.pending_events("Z"), 1);
        assert_eq!(engine.stats().firings, 0);
        assert_eq!(engine.discard_pending("Z"), 1);
        assert_eq!(engine.pending_total(), 0);
        // Under the immediate policy the error surfaces at ingest time.
        let mut eager = MaintenanceEngine::new(engine.into_view(), FlushPolicy::Immediate);
        assert!(eager
            .ingest("Z", RankOneUpdate::row_update(n, n, 1, 0.01, 2))
            .is_err());
        assert_eq!(eager.pending_events("Z"), 1);
    }
}
