//! Trigger execution, including the numeric Sherman–Morrison primitive.
//!
//! There is exactly **one** statement interpreter ([`run_statements`]) for
//! every execution backend, and it is **staged**: instead of walking
//! `trigger.stmts` in program order, it consumes the compile-time
//! statement dependency DAG ([`Trigger::dag`]) one topological stage at a
//! time. Every statement in a stage is provably independent, so the stage
//! is evaluated against the pre-stage environment — on worker threads when
//! the stage holds more than one statement — and its low-rank view deltas
//! are handed to the backend **as a set** through
//! [`ExecBackend::apply_stage`](crate::ExecBackend::apply_stage) (threaded
//! GEMMs into disjoint slots locally; merged broadcast rounds and
//! pipelined frames on the distributed backends). Program order is a
//! linear extension of the DAG, so staged execution is bit-identical to
//! the sequential walk — [`ExecOptions::sequential`] opts back into the
//! legacy one-statement-per-stage order for ablation.
//!
//! The free functions [`fire_trigger`] / [`fire_trigger_with_options`] /
//! [`fire_joint_trigger`] are the historical in-process entry points and
//! simply run on a [`LocalBackend`](crate::LocalBackend).

use linview_compiler::{Trigger, TriggerStmt};
use linview_expr::delta::input_delta_names;
use linview_matrix::Matrix;

use crate::{Env, Evaluator, ExecBackend, LocalBackend, Result, RuntimeError};

/// Denominators smaller than this abort the Sherman–Morrison update.
const SM_TOL: f64 = 1e-12;

/// Applies `rank(P)` Sherman–Morrison steps to the materialized inverse `w`
/// for the factored update `ΔE = P Qᵀ`, returning the factored delta of the
/// inverse, `ΔW = U Vᵀ` (§4.1 / Example 4.3).
///
/// Each rank-1 pair `(p_i, q_i)` contributes
///
/// ```text
/// ΔᵢW = − (W_i p_i)(W_iᵀ q_i)ᵀ / (1 + q_iᵀ W_i p_i)
/// ```
///
/// where `W_i` is the running inverse after the previous `i−1` steps.
pub fn sherman_morrison(w: &Matrix, p: &Matrix, q: &Matrix) -> Result<(Matrix, Matrix)> {
    let n = w.rows();
    let k = p.cols();
    if p.rows() != n || q.rows() != n || q.cols() != k {
        return Err(RuntimeError::UpdateShape {
            target: w.shape(),
            update: (p.shape(), q.shape()),
        });
    }
    let mut w_work = w.clone();
    let mut out_u = Matrix::zeros(n, k);
    let mut out_v = Matrix::zeros(n, k);
    for i in 0..k {
        let u = p.col_matrix(i);
        let v = q.col_matrix(i);
        let wu = w_work.matvec(&u)?;
        let wv = w_work.transpose().matvec(&v)?;
        let den = 1.0 + Matrix::dot(&v, &wu)?;
        if den.abs() < SM_TOL {
            return Err(RuntimeError::ShermanMorrisonSingular {
                step: i,
                denominator: den,
            });
        }
        let ucol = wu.scale(-1.0 / den);
        for r in 0..n {
            out_u.set(r, i, ucol.get(r, 0));
            out_v.set(r, i, wv.get(r, 0));
        }
        w_work.add_outer(&ucol, &wv)?;
    }
    Ok((out_u, out_v))
}

/// Rank-k inverse maintenance in a single step via the Woodbury identity:
///
/// ```text
/// (E + P Qᵀ)⁻¹ = W − W P (I_k + Qᵀ W P)⁻¹ Qᵀ W        where W = E⁻¹
/// ```
///
/// Returns the factored delta `ΔW = U Vᵀ` with `U = −W P (I_k + Qᵀ W P)⁻¹`
/// and `V = Wᵀ Q`, costing `O(kn² + k³)` — the batch generalization of the
/// sequential Sherman–Morrison loop (`k = 1` reduces to it exactly). The
/// trigger executor uses the sequential form to match the paper; this
/// primitive is the natural §4.2 "rank-k changes" extension and is
/// cross-validated against it in tests.
pub fn woodbury(w: &Matrix, p: &Matrix, q: &Matrix) -> Result<(Matrix, Matrix)> {
    let n = w.rows();
    let k = p.cols();
    if p.rows() != n || q.rows() != n || q.cols() != k {
        return Err(RuntimeError::UpdateShape {
            target: w.shape(),
            update: (p.shape(), q.shape()),
        });
    }
    let wp = w.try_matmul(p)?; // n×k
    let wtq = w.transpose().try_matmul(q)?; // n×k  (V = Wᵀ Q)
                                            // capacitance C = I_k + Qᵀ (W P)  — k×k.
    let mut cap = q.transpose().try_matmul(&wp)?;
    for i in 0..k {
        cap.set(i, i, cap.get(i, i) + 1.0);
    }
    // U = −(W P)·C⁻¹: solve Cᵀ Xᵀ = (W P)ᵀ to avoid forming C⁻¹.
    let xt = cap
        .transpose()
        .solve(&wp.transpose())
        .map_err(|e| match e {
            linview_matrix::MatrixError::Singular { pivot } => {
                RuntimeError::ShermanMorrisonSingular {
                    step: pivot,
                    denominator: 0.0,
                }
            }
            other => RuntimeError::Matrix(other),
        })?;
    let u = xt.transpose().scale(-1.0);
    Ok((u, wtq))
}

/// Which primitive maintains materialized inverses at trigger execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InversePrimitive {
    /// `k` sequential rank-1 Sherman–Morrison steps (the paper's §4.1).
    #[default]
    ShermanMorrison,
    /// One rank-`k` Woodbury solve (the §4.2 batch generalization).
    Woodbury,
}

/// Execution options for [`fire_trigger_with_options`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Inverse-maintenance primitive.
    pub inverse_primitive: InversePrimitive,
    /// When set, each delta block pair `(U_X, V_X)` is numerically
    /// recompressed to its rank (relative tolerance) right after it is
    /// evaluated, *before* subsequent statements propagate it. This is the
    /// `O((n+m)k²)` pass §4.3 declines to pay for — the ablation bench
    /// measures when it wins. Because the pass rebinds blocks mid-body,
    /// enabling it forces the sequential statement schedule (staged
    /// evaluation could not observe a rebinding inside its own stage).
    pub recompress_tol: Option<f64>,
    /// Opt out of DAG-staged execution: run one statement per stage in
    /// program order (the pre-scheduler interpreter). Results are
    /// bit-identical either way — this exists for ablation benchmarks and
    /// the `--sequential-exec` CLI flag.
    pub sequential: bool,
    /// Density-aware delta execution: route view folds through the sparse
    /// cost model ([`linview_matrix::fold_low_rank`]) and let the
    /// distributed backends compress factor broadcasts whose triplet form
    /// is shorter. `None` (the default) defers to the process-wide knob
    /// ([`linview_matrix::sparse_folds_enabled`], i.e. `LINVIEW_SPARSE`);
    /// `Some(false)` forces every fold dense and every frame uncompressed.
    /// Results are bit-identical either way — the knob only moves work and
    /// bytes.
    pub sparse_folds: Option<bool>,
}

impl ExecOptions {
    /// The effective sparse-execution flag: the per-view option if set,
    /// else the process-wide default.
    pub fn sparse_enabled(&self) -> bool {
        self.sparse_folds
            .unwrap_or_else(linview_matrix::sparse_folds_enabled)
    }
}

/// What one trigger firing executed under the staged scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiringReport {
    /// Statements executed.
    pub stmts: u64,
    /// Stages the statements were grouped into (equals `stmts` under
    /// [`ExecOptions::sequential`] or for chain-dependent triggers).
    pub stages: u64,
    /// View writes folded through the stage barriers (one per applied
    /// [`StageDelta`]). In debug builds, staged execution asserts each of
    /// these against the statically-proved effect sets from
    /// `linview_compiler::analyze::derive_effects` before the fold.
    pub writes: u64,
    /// Sparse-execution accounting for the firing's folds and broadcasts.
    pub sparse: SparseStats,
}

/// Sparse-execution counters: how many view folds took which path, and what
/// the compressed factor frames saved on the wire.
///
/// Fold counts are **coordinator-visible**: one per applied delta on every
/// backend (the distributed backends count their mirror fold, not the
/// per-block worker folds, so the counters stay comparable across
/// backends). Rank-0 deltas are uncounted no-ops everywhere. Byte savings
/// are measured against what the same broadcast would have cost dense, at
/// each backend's own accounting granularity — exact frame lengths on the
/// threaded transport, analytic factor payloads on the simulated cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Rank-positive view folds that took the sparse row-replay path.
    pub sparse_folds: u64,
    /// Rank-positive view folds that took the dense GEMM path.
    pub dense_folds: u64,
    /// Factor broadcasts that went out compressed (≥ 1 factor in triplet
    /// form) — counted once per broadcast, not per receiving worker.
    pub compressed_frames: u64,
    /// Delta rank shed by numerical recompression before firing.
    pub rank_saved: u64,
    /// Wire bytes the compressed broadcasts avoided, summed over every
    /// receiving worker.
    pub bytes_saved: u64,
}

impl SparseStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: SparseStats) {
        self.sparse_folds += other.sparse_folds;
        self.dense_folds += other.dense_folds;
        self.compressed_frames += other.compressed_frames;
        self.rank_saved += other.rank_saved;
        self.bytes_saved += other.bytes_saved;
    }

    /// Componentwise difference against an earlier snapshot of the same
    /// monotone counters.
    pub fn since(&self, earlier: SparseStats) -> SparseStats {
        SparseStats {
            sparse_folds: self.sparse_folds - earlier.sparse_folds,
            dense_folds: self.dense_folds - earlier.dense_folds,
            compressed_frames: self.compressed_frames - earlier.compressed_frames,
            rank_saved: self.rank_saved - earlier.rank_saved,
            bytes_saved: self.bytes_saved - earlier.bytes_saved,
        }
    }

    /// One fold on the given path.
    pub fn from_path(path: linview_matrix::FoldPath) -> SparseStats {
        let mut s = SparseStats::default();
        if path.is_sparse() {
            s.sparse_folds = 1;
        } else {
            s.dense_folds = 1;
        }
        s
    }

    /// Folds counted, both paths combined.
    pub fn total_folds(&self) -> u64 {
        self.sparse_folds + self.dense_folds
    }
}

/// Cumulative staged-scheduling counters, accumulated over firings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Trigger firings recorded.
    pub firings: u64,
    /// Statements executed across all firings.
    pub stmts: u64,
    /// Stages those statements were grouped into.
    pub stages: u64,
    /// View writes folded across all firings.
    pub writes: u64,
}

impl SchedStats {
    /// Folds one firing's report in.
    pub fn record(&mut self, report: FiringReport) {
        self.firings += 1;
        self.stmts += report.stmts;
        self.stages += report.stages;
        self.writes += report.writes;
    }

    /// Statements that ran inside an already-open stage instead of
    /// lengthening the critical path — the scheduler's savings.
    pub fn stmts_saved(&self) -> u64 {
        self.stmts - self.stages
    }
}

/// One evaluated low-rank view delta of a stage, ready for the backend to
/// fold: `target += u · vᵀ`. A stage's deltas are guaranteed to hit
/// pairwise-distinct targets (write-after-write hazard edges), which is
/// what lets backends fold them concurrently.
#[derive(Debug, Clone)]
pub struct StageDelta {
    /// The maintained view being updated.
    pub target: String,
    /// Left factor.
    pub u: Matrix,
    /// Right factor.
    pub v: Matrix,
}

/// Fires `trigger` for the factored input update `ΔX = du · dvᵀ` with
/// default options (sequential Sherman–Morrison for inverses).
///
/// Execution order follows the compiler's contract: every `Assign` /
/// `ShermanMorrison` statement is evaluated against the **pre-update**
/// state, then all `ApplyDelta` statements fold the deltas into the views.
/// Temporary block variables are unbound afterwards so the environment's
/// memory accounting reflects only base matrices and materialized views.
pub fn fire_trigger(
    env: &mut Env,
    evaluator: &Evaluator,
    trigger: &Trigger,
    du: &Matrix,
    dv: &Matrix,
) -> Result<()> {
    fire_trigger_with_options(env, evaluator, trigger, du, dv, &ExecOptions::default())
}

/// As [`fire_trigger`] with explicit [`ExecOptions`].
pub fn fire_trigger_with_options(
    env: &mut Env,
    evaluator: &Evaluator,
    trigger: &Trigger,
    du: &Matrix,
    dv: &Matrix,
    opts: &ExecOptions,
) -> Result<()> {
    fire_trigger_on(&mut LocalBackend, env, evaluator, trigger, du, dv, opts).map(|_| ())
}

/// Fires `trigger` on an explicit backend — the shared execution path every
/// [`ExecBackend::fire_trigger`] implementation routes through.
pub(crate) fn fire_trigger_on<B: ExecBackend + ?Sized>(
    backend: &mut B,
    env: &mut Env,
    evaluator: &Evaluator,
    trigger: &Trigger,
    du: &Matrix,
    dv: &Matrix,
    opts: &ExecOptions,
) -> Result<FiringReport> {
    let (du_name, dv_name) = input_delta_names(&trigger.input);
    // Shape check against the target input.
    let target = env.get(&trigger.input)?;
    if du.rows() != target.rows() || dv.rows() != target.cols() || du.cols() != dv.cols() {
        return Err(RuntimeError::UpdateShape {
            target: target.shape(),
            update: (du.shape(), dv.shape()),
        });
    }
    // The input update is the root of every propagated block: recompressing
    // it first (when enabled) shrinks all downstream ranks.
    if let (Some(tol), true) = (opts.recompress_tol, du.cols() > 1) {
        let rc = linview_matrix::recompress(du, dv, tol)?;
        env.bind(du_name.clone(), rc.u);
        env.bind(dv_name.clone(), rc.v);
    } else {
        env.bind(du_name.clone(), du.clone());
        env.bind(dv_name.clone(), dv.clone());
    }

    let mut temporaries = vec![du_name, dv_name];
    let result = run_statements(backend, env, evaluator, trigger, &mut temporaries, opts);
    for t in &temporaries {
        env.unbind(t);
    }
    result
}

/// Recompresses the delta pair `(u_name, v_name)` in place once both blocks
/// are bound; a no-op for rank-1 pairs (nothing to shrink but a zero test).
fn recompress_pair(env: &mut Env, u_name: &str, v_name: &str, tol: f64) -> Result<()> {
    if !env.contains(u_name) || !env.contains(v_name) {
        return Ok(());
    }
    let u = env.get(u_name)?;
    if u.cols() <= 1 {
        return Ok(());
    }
    let v = env.get(v_name)?;
    let rc = linview_matrix::recompress(u, v, tol)?;
    if rc.reduced() {
        env.bind(u_name.to_string(), rc.u);
        env.bind(v_name.to_string(), rc.v);
    }
    Ok(())
}

/// Fires a [`JointTrigger`](linview_compiler::JointTrigger) for
/// *simultaneous* factored updates to all of its inputs (§4.4 /
/// Example 4.5). `updates` supplies one `(input, dU, dV)` triple per
/// dynamic input; every input of the trigger must be covered exactly once.
pub fn fire_joint_trigger(
    env: &mut Env,
    evaluator: &Evaluator,
    joint: &linview_compiler::JointTrigger,
    updates: &[(&str, &Matrix, &Matrix)],
    opts: &ExecOptions,
) -> Result<()> {
    fire_joint_trigger_on(&mut LocalBackend, env, evaluator, joint, updates, opts).map(|_| ())
}

/// As [`fire_joint_trigger`] on an explicit backend (the shared path behind
/// [`ExecBackend::fire_joint_trigger`]).
pub(crate) fn fire_joint_trigger_on<B: ExecBackend + ?Sized>(
    backend: &mut B,
    env: &mut Env,
    evaluator: &Evaluator,
    joint: &linview_compiler::JointTrigger,
    updates: &[(&str, &Matrix, &Matrix)],
    opts: &ExecOptions,
) -> Result<FiringReport> {
    if updates.len() != joint.inputs.len()
        || !joint
            .inputs
            .iter()
            .all(|i| updates.iter().any(|(n, _, _)| n == i))
    {
        return Err(RuntimeError::Unbound(format!(
            "joint trigger expects updates for {:?}",
            joint.inputs
        )));
    }
    let mut temporaries = Vec::with_capacity(2 * updates.len());
    for (input, du, dv) in updates {
        let target = env.get(input)?;
        if du.rows() != target.rows() || dv.rows() != target.cols() || du.cols() != dv.cols() {
            return Err(RuntimeError::UpdateShape {
                target: target.shape(),
                update: (du.shape(), dv.shape()),
            });
        }
        let (du_name, dv_name) = input_delta_names(input);
        env.bind(du_name.clone(), (*du).clone());
        env.bind(dv_name.clone(), (*dv).clone());
        temporaries.push(du_name);
        temporaries.push(dv_name);
    }
    let result = run_statements(
        backend,
        env,
        evaluator,
        &joint.trigger,
        &mut temporaries,
        opts,
    );
    for t in &temporaries {
        env.unbind(t);
    }
    result
}

/// Stages whose statements only touch matrices smaller than this many
/// elements are evaluated inline even when independent: thread-spawn
/// overhead beats the parallelism for small operands, and the dense
/// kernels already multi-thread internally in exactly that regime. The
/// stage *structure* (and the backends' merged rounds / pipelined
/// broadcasts) is unaffected — only where the expression evaluation runs.
///
/// Skinny low-rank products (`n×k · k×n`, `k ≤`
/// [`linview_matrix::RANK_K_MAX_K`]) stay under this gate for the same
/// reason: the matrix crate routes them to its dedicated rank-k kernel,
/// which work-steals across row chunks internally, so a heavy stage made
/// of `ApplyDelta` folds already saturates the thread budget without
/// stage-level fan-out.
pub(crate) const PARALLEL_MIN_ELEMS: usize = 32_768;

/// True when the execution layer may fan work out to more than one
/// thread. Follows the process-wide GEMM thread budget
/// ([`linview_matrix::gemm_threads`], i.e. `LINVIEW_THREADS` / the
/// `--threads` CLI flag, defaulting to the machine's parallelism), so
/// pinning the budget to 1 serializes stage evaluation, stage delta
/// folds, *and* the dense kernels with one knob. Results are bit-identical
/// either way — the gate only decides where the arithmetic runs.
pub(crate) fn multi_core() -> bool {
    linview_matrix::gemm_threads() > 1
}

/// True when any statement of the stage reads an environment matrix large
/// enough to justify evaluating the stage on worker threads. Reuses the
/// effect sets the DAG analysis already computed.
fn stage_is_heavy(stage: &[usize], effects: &[linview_compiler::StmtEffects], env: &Env) -> bool {
    multi_core()
        && stage.iter().any(|&i| {
            effects[i]
                .reads
                .iter()
                .any(|r| env.get(r).is_ok_and(|m| m.len() >= PARALLEL_MIN_ELEMS))
        })
}

/// One statement's evaluated result, produced read-only against the
/// pre-stage environment and applied after the whole stage has evaluated.
enum StmtOutput {
    /// Variables to bind (an `Assign` yields one, Sherman–Morrison two).
    Bind(Vec<(String, Matrix)>),
    /// An evaluated low-rank view delta for the backend's stage barrier.
    Delta(StageDelta),
}

/// Evaluates one statement against the (read-only) pre-stage environment.
/// Safe to call from several threads for the statements of one stage: the
/// dependency DAG guarantees no statement reads another's output.
fn eval_stmt(
    stmt: &TriggerStmt,
    env: &Env,
    evaluator: &Evaluator,
    opts: &ExecOptions,
) -> Result<StmtOutput> {
    match stmt {
        TriggerStmt::Assign { var, expr } => {
            let value = evaluator.eval(expr, env)?;
            Ok(StmtOutput::Bind(vec![(var.clone(), value)]))
        }
        TriggerStmt::ShermanMorrison {
            inv_var,
            p,
            q,
            out_u,
            out_v,
        } => {
            let pm = evaluator.eval(p, env)?;
            let qm = evaluator.eval(q, env)?;
            let w = env.get(inv_var)?;
            let (u, v) = match opts.inverse_primitive {
                InversePrimitive::ShermanMorrison => sherman_morrison(w, &pm, &qm)?,
                InversePrimitive::Woodbury => woodbury(w, &pm, &qm)?,
            };
            Ok(StmtOutput::Bind(vec![
                (out_u.clone(), u),
                (out_v.clone(), v),
            ]))
        }
        TriggerStmt::ApplyDelta { target, u, v } => {
            let um = evaluator.eval(u, env)?;
            let vm = evaluator.eval(v, env)?;
            Ok(StmtOutput::Delta(StageDelta {
                target: target.clone(),
                u: um,
                v: vm,
            }))
        }
    }
}

/// The staged statement interpreter shared by every backend.
///
/// Each stage runs in three phases: (1) every statement of the stage is
/// evaluated against the pre-stage environment — concurrently when the
/// stage holds more than one statement, since the DAG proves them
/// independent; (2) compute results are bound in program order (and the
/// optional §4.3 recompression pass runs for pairs completed this stage);
/// (3) the stage's view deltas are folded through
/// [`ExecBackend::apply_stage`] — the stage barrier, and the only
/// backend-specific step.
fn run_statements<B: ExecBackend + ?Sized>(
    backend: &mut B,
    env: &mut Env,
    evaluator: &Evaluator,
    trigger: &Trigger,
    temporaries: &mut Vec<String>,
    opts: &ExecOptions,
) -> Result<FiringReport> {
    // Orientation-preserving pair lookup for the optional recompression
    // pass: block name -> (U name, V name) of its pair.
    let pairs: Vec<(String, String)> = if opts.recompress_tol.is_some() {
        trigger
            .delta_pairs()
            .into_iter()
            .map(|(u, v)| (u.to_string(), v.to_string()))
            .collect()
    } else {
        Vec::new()
    };
    // The §4.3 recompression pass rewrites a pair's blocks in place the
    // moment the pair completes, and later statements of the *sequential*
    // walk observe the rebinding mid-body — a stage evaluated against the
    // pre-stage environment could not. Recompression therefore always
    // runs on the sequential schedule; bit-identity with the opt-out is
    // preserved by construction.
    //
    // The DAG is re-analyzed per firing rather than cached on the
    // trigger: `Trigger::stmts` is public and the optimizer rewrites
    // bodies in place, so a stored schedule could silently go stale. The
    // analysis is O(stmts²) over tiny bodies — noise next to one O(kn²)
    // delta fold.
    let dag = if opts.sequential || opts.recompress_tol.is_some() {
        None
    } else {
        Some(trigger.dag()?)
    };
    let stages: Vec<Vec<usize>> = match &dag {
        Some(dag) => dag.stages().to_vec(),
        None => (0..trigger.stmts.len()).map(|i| vec![i]).collect(),
    };
    let mut report = FiringReport {
        stmts: trigger.stmts.len() as u64,
        stages: stages.len() as u64,
        writes: 0,
        sparse: SparseStats::default(),
    };
    let sparse = opts.sparse_enabled();
    // Debug builds re-derive the analyzer's effect sets once per firing and
    // assert every observed view write against them: the statically-proved
    // write sets are the contract `apply_stage` soundness rests on, so a
    // divergence here is a scheduler or analyzer bug, not a data error.
    #[cfg(debug_assertions)]
    let proved = linview_compiler::analyze::derive_effects(&trigger.stmts);
    for stage in &stages {
        // Phase 1: evaluate the stage against the pre-stage environment.
        let heavy = dag
            .as_ref()
            .is_some_and(|dag| stage.len() >= 2 && stage_is_heavy(stage, dag.effects(), env));
        let outputs: Vec<Result<StmtOutput>> = if heavy {
            let env = &*env;
            std::thread::scope(|scope| {
                let handles: Vec<_> = stage[1..]
                    .iter()
                    .map(|&i| {
                        scope.spawn(move || eval_stmt(&trigger.stmts[i], env, evaluator, opts))
                    })
                    .collect();
                let mut outs = vec![eval_stmt(&trigger.stmts[stage[0]], env, evaluator, opts)];
                outs.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("stage evaluator thread panicked")),
                );
                outs
            })
        } else {
            stage
                .iter()
                .map(|&i| eval_stmt(&trigger.stmts[i], env, evaluator, opts))
                .collect()
        };
        // Phase 2: bind compute results in program order, collect deltas.
        let mut deltas: Vec<StageDelta> = Vec::new();
        let mut bound_now: Vec<String> = Vec::new();
        for (&i, out) in stage.iter().zip(outputs) {
            match out? {
                StmtOutput::Bind(binds) => {
                    // Only plain assignments feed the recompression pass
                    // (Sherman–Morrison outputs are left exact, as in the
                    // sequential interpreter).
                    let assign = matches!(trigger.stmts[i], TriggerStmt::Assign { .. });
                    for (name, value) in binds {
                        env.bind(name.clone(), value);
                        temporaries.push(name.clone());
                        if assign {
                            bound_now.push(name);
                        }
                    }
                }
                StmtOutput::Delta(d) => deltas.push(d),
            }
        }
        if let Some(tol) = opts.recompress_tol {
            for (u_name, v_name) in &pairs {
                if bound_now.iter().any(|b| b == u_name || b == v_name) {
                    recompress_pair(env, u_name, v_name, tol)?;
                }
            }
        }
        // Phase 3: the stage barrier — fold every independent delta.
        #[cfg(debug_assertions)]
        {
            let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for d in &deltas {
                debug_assert!(
                    seen.insert(d.target.as_str()),
                    "stage writes view '{}' twice; statically-proved stage writes \
                     must be pairwise disjoint",
                    d.target
                );
                debug_assert!(
                    stage.iter().any(|&i| proved[i].writes.contains(&d.target)),
                    "observed write to '{}' is outside the statically-proved \
                     effect sets of stage {:?}",
                    d.target,
                    stage
                );
            }
        }
        report.writes += deltas.len() as u64;
        if !deltas.is_empty() {
            report
                .sparse
                .merge(backend.apply_stage(env, &deltas, sparse)?);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_compiler::{compile, CompileOptions, Program};
    use linview_expr::{Catalog, Expr};
    use linview_matrix::ApproxEq;

    #[test]
    fn sherman_morrison_matches_direct_inverse() {
        let n = 12;
        let e = Matrix::random_diag_dominant(n, 1);
        let w = e.inverse().unwrap();
        // Rank-2 update.
        let p = Matrix::random_uniform(n, 2, 2).scale(0.1);
        let q = Matrix::random_uniform(n, 2, 3).scale(0.1);
        let (u, v) = sherman_morrison(&w, &p, &q).unwrap();
        let mut w_new = w.clone();
        w_new
            .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
            .unwrap();
        let e_new = e.try_add(&p.try_matmul(&q.transpose()).unwrap()).unwrap();
        let w_direct = e_new.inverse().unwrap();
        assert!(w_new.approx_eq(&w_direct, 1e-8));
    }

    #[test]
    fn sherman_morrison_rejects_bad_shapes() {
        let w = Matrix::identity(4);
        let p = Matrix::zeros(4, 1);
        let q = Matrix::zeros(3, 1);
        assert!(matches!(
            sherman_morrison(&w, &p, &q),
            Err(RuntimeError::UpdateShape { .. })
        ));
    }

    #[test]
    fn sherman_morrison_detects_singular_update() {
        // W = I, u = -e1, v = e1 -> denominator 1 + v' W u = 0.
        let w = Matrix::identity(3);
        let mut p = Matrix::zeros(3, 1);
        p.set(0, 0, -1.0);
        let mut q = Matrix::zeros(3, 1);
        q.set(0, 0, 1.0);
        assert!(matches!(
            sherman_morrison(&w, &p, &q),
            Err(RuntimeError::ShermanMorrisonSingular { step: 0, .. })
        ));
    }

    #[test]
    fn woodbury_matches_sequential_sherman_morrison() {
        let n = 14;
        let e = Matrix::random_diag_dominant(n, 31);
        let w = e.inverse().unwrap();
        for k in [1usize, 2, 4] {
            let p = Matrix::random_uniform(n, k, 32).scale(0.1);
            let q = Matrix::random_uniform(n, k, 33).scale(0.1);
            let (u1, v1) = sherman_morrison(&w, &p, &q).unwrap();
            let (u2, v2) = woodbury(&w, &p, &q).unwrap();
            // The factorizations differ, but the deltas must agree.
            let d1 = u1.try_matmul(&v1.transpose()).unwrap();
            let d2 = u2.try_matmul(&v2.transpose()).unwrap();
            assert!(d1.approx_eq(&d2, 1e-8), "rank {k} disagrees");
        }
    }

    #[test]
    fn woodbury_matches_direct_inverse() {
        let n = 12;
        let e = Matrix::random_diag_dominant(n, 41);
        let w = e.inverse().unwrap();
        let p = Matrix::random_uniform(n, 3, 42).scale(0.1);
        let q = Matrix::random_uniform(n, 3, 43).scale(0.1);
        let (u, v) = woodbury(&w, &p, &q).unwrap();
        let mut w_new = w;
        w_new
            .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
            .unwrap();
        let mut e_new = e;
        e_new
            .add_assign_from(&p.try_matmul(&q.transpose()).unwrap())
            .unwrap();
        assert!(w_new.approx_eq(&e_new.inverse().unwrap(), 1e-8));
    }

    #[test]
    fn woodbury_rejects_bad_shapes_and_singular_capacitance() {
        let w = Matrix::identity(4);
        assert!(woodbury(&w, &Matrix::zeros(3, 1), &Matrix::zeros(4, 1)).is_err());
        // u = -e1, v = e1 on W = I: capacitance 1 + v'u = 0.
        let mut p = Matrix::zeros(4, 1);
        p.set(0, 0, -1.0);
        let mut q = Matrix::zeros(4, 1);
        q.set(0, 0, 1.0);
        assert!(matches!(
            woodbury(&w, &p, &q),
            Err(RuntimeError::ShermanMorrisonSingular { .. })
        ));
    }

    #[test]
    fn fired_trigger_matches_reevaluation() {
        // The A^4 program of Example 1.1, checked against recomputation.
        let n = 16;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        prog.assign("C", Expr::var("B") * Expr::var("B"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();

        let a = Matrix::random_spectral(n, 9, 0.8);
        let b = a.try_matmul(&a).unwrap();
        let c = b.try_matmul(&b).unwrap();
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", b);
        env.bind("C", c);

        let du = Matrix::random_col(n, 11).scale(0.01);
        let dv = Matrix::random_col(n, 12);
        let ev = Evaluator::new();
        fire_trigger(&mut env, &ev, &tp.triggers[0], &du, &dv).unwrap();

        // Recompute from the updated A.
        let mut a_new = a;
        a_new
            .add_assign_from(&du.try_matmul(&dv.transpose()).unwrap())
            .unwrap();
        let b_new = a_new.try_matmul(&a_new).unwrap();
        let c_new = b_new.try_matmul(&b_new).unwrap();
        assert!(env.get("A").unwrap().approx_eq(&a_new, 1e-10));
        assert!(env.get("B").unwrap().approx_eq(&b_new, 1e-9));
        assert!(env.get("C").unwrap().approx_eq(&c_new, 1e-8));
    }

    #[test]
    fn woodbury_execution_option_matches_default() {
        // OLS trigger fired with both inverse primitives must agree.
        let n = 10;
        let mut cat = Catalog::new();
        cat.declare("X", n, n);
        cat.declare("Y", n, 1);
        let mut prog = Program::new();
        prog.assign("Z", Expr::var("X").t() * Expr::var("X"));
        prog.assign("W", Expr::var("Z").inv());
        prog.assign(
            "beta",
            Expr::var("W") * (Expr::var("X").t() * Expr::var("Y")),
        );
        let tp = compile(&prog, &["X"], &cat, &CompileOptions::default()).unwrap();

        let x = Matrix::random_diag_dominant(n, 51);
        let y = Matrix::random_col(n, 52);
        let build_env = || {
            let mut env = Env::new();
            env.bind("X", x.clone());
            env.bind("Y", y.clone());
            let z = x.transpose().try_matmul(&x).unwrap();
            let w = z.inverse().unwrap();
            env.bind(
                "beta",
                w.try_matmul(&x.transpose().try_matmul(&y).unwrap())
                    .unwrap(),
            );
            env.bind("Z", z);
            env.bind("W", w);
            env
        };
        let ev = Evaluator::new();
        let upd_u = Matrix::random_col(n, 53).scale(0.01);
        let upd_v = Matrix::random_col(n, 54);
        let mut env_sm = build_env();
        fire_trigger(&mut env_sm, &ev, &tp.triggers[0], &upd_u, &upd_v).unwrap();
        let mut env_wb = build_env();
        fire_trigger_with_options(
            &mut env_wb,
            &ev,
            &tp.triggers[0],
            &upd_u,
            &upd_v,
            &ExecOptions {
                inverse_primitive: InversePrimitive::Woodbury,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert!(env_sm
            .get("beta")
            .unwrap()
            .approx_eq(env_wb.get("beta").unwrap(), 1e-9));
        assert!(env_sm
            .get("W")
            .unwrap()
            .approx_eq(env_wb.get("W").unwrap(), 1e-9));
    }

    #[test]
    fn joint_trigger_matches_reevaluation_for_simultaneous_updates() {
        // Example 4.5: E = A·B with simultaneous ΔA and ΔB through ONE
        // trigger firing.
        let n = 12;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        cat.declare("B", n, n);
        let mut prog = Program::new();
        prog.assign("C", Expr::var("A") * Expr::var("B"));
        prog.assign("D", Expr::var("C") * Expr::var("C"));
        let joint =
            linview_compiler::compile_joint(&prog, &["A", "B"], &cat, &CompileOptions::default())
                .unwrap();

        let a = Matrix::random_spectral(n, 1, 0.7);
        let b = Matrix::random_spectral(n, 2, 0.7);
        let c = a.try_matmul(&b).unwrap();
        let d = c.try_matmul(&c).unwrap();
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", b.clone());
        env.bind("C", c);
        env.bind("D", d);

        let dau = Matrix::random_col(n, 3).scale(0.01);
        let dav = Matrix::random_col(n, 4);
        let dbu = Matrix::random_col(n, 5).scale(0.01);
        let dbv = Matrix::random_col(n, 6);
        fire_joint_trigger(
            &mut env,
            &Evaluator::new(),
            &joint,
            &[("A", &dau, &dav), ("B", &dbu, &dbv)],
            &ExecOptions::default(),
        )
        .unwrap();

        let mut a_new = a;
        a_new
            .add_assign_from(&dau.try_matmul(&dav.transpose()).unwrap())
            .unwrap();
        let mut b_new = b;
        b_new
            .add_assign_from(&dbu.try_matmul(&dbv.transpose()).unwrap())
            .unwrap();
        let c_new = a_new.try_matmul(&b_new).unwrap();
        let d_new = c_new.try_matmul(&c_new).unwrap();
        assert!(env.get("C").unwrap().approx_eq(&c_new, 1e-9));
        assert!(env.get("D").unwrap().approx_eq(&d_new, 1e-8));
    }

    #[test]
    fn joint_trigger_rejects_missing_or_extra_updates() {
        let n = 6;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        cat.declare("B", n, n);
        let mut prog = Program::new();
        prog.assign("C", Expr::var("A") * Expr::var("B"));
        let joint =
            linview_compiler::compile_joint(&prog, &["A", "B"], &cat, &CompileOptions::default())
                .unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::identity(n));
        env.bind("B", Matrix::identity(n));
        env.bind("C", Matrix::identity(n));
        let u = Matrix::zeros(n, 1);
        let ev = Evaluator::new();
        // Missing B.
        assert!(fire_joint_trigger(
            &mut env,
            &ev,
            &joint,
            &[("A", &u, &u)],
            &ExecOptions::default()
        )
        .is_err());
        // Wrong input name.
        assert!(fire_joint_trigger(
            &mut env,
            &ev,
            &joint,
            &[("A", &u, &u), ("Z", &u, &u)],
            &ExecOptions::default()
        )
        .is_err());
    }

    #[test]
    fn joint_firing_agrees_with_sequential_per_input_triggers() {
        // One joint firing == firing A's trigger then B's trigger (both are
        // exact, so the end states coincide).
        let n = 10;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        cat.declare("B", n, n);
        let mut prog = Program::new();
        prog.assign("C", Expr::var("A") * Expr::var("B"));
        let opts = CompileOptions::default();
        let joint = linview_compiler::compile_joint(&prog, &["A", "B"], &cat, &opts).unwrap();
        let tp = compile(&prog, &["A", "B"], &cat, &opts).unwrap();

        let a = Matrix::random_spectral(n, 7, 0.6);
        let b = Matrix::random_spectral(n, 8, 0.6);
        let build_env = || {
            let mut env = Env::new();
            env.bind("A", a.clone());
            env.bind("B", b.clone());
            env.bind("C", a.try_matmul(&b).unwrap());
            env
        };
        let dau = Matrix::random_col(n, 9).scale(0.01);
        let dav = Matrix::random_col(n, 10);
        let dbu = Matrix::random_col(n, 11).scale(0.01);
        let dbv = Matrix::random_col(n, 12);
        let ev = Evaluator::new();

        let mut env_joint = build_env();
        fire_joint_trigger(
            &mut env_joint,
            &ev,
            &joint,
            &[("A", &dau, &dav), ("B", &dbu, &dbv)],
            &ExecOptions::default(),
        )
        .unwrap();

        let mut env_seq = build_env();
        fire_trigger(&mut env_seq, &ev, tp.trigger_for("A").unwrap(), &dau, &dav).unwrap();
        fire_trigger(&mut env_seq, &ev, tp.trigger_for("B").unwrap(), &dbu, &dbv).unwrap();
        assert!(env_joint
            .get("C")
            .unwrap()
            .approx_eq(env_seq.get("C").unwrap(), 1e-10));
    }

    #[test]
    fn recompression_preserves_maintained_views() {
        // A^8 program: block ranks grow 2 -> 4 -> 8 across statements, and
        // the numerical recompression must not change any maintained view.
        let n = 20;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        prog.assign("C", Expr::var("B") * Expr::var("B"));
        prog.assign("D", Expr::var("C") * Expr::var("C"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();

        let a = Matrix::random_spectral(n, 3, 0.7);
        let build_env = || {
            let b = a.try_matmul(&a).unwrap();
            let c = b.try_matmul(&b).unwrap();
            let d = c.try_matmul(&c).unwrap();
            let mut env = Env::new();
            env.bind("A", a.clone());
            env.bind("B", b);
            env.bind("C", c);
            env.bind("D", d);
            env
        };
        let ev = Evaluator::new();
        let du = Matrix::random_col(n, 5).scale(0.01);
        let dv = Matrix::random_col(n, 6);

        let mut plain = build_env();
        fire_trigger(&mut plain, &ev, &tp.triggers[0], &du, &dv).unwrap();
        let mut compressed = build_env();
        fire_trigger_with_options(
            &mut compressed,
            &ev,
            &tp.triggers[0],
            &du,
            &dv,
            &ExecOptions {
                recompress_tol: Some(1e-12),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        for view in ["A", "B", "C", "D"] {
            assert!(
                compressed
                    .get(view)
                    .unwrap()
                    .approx_eq(plain.get(view).unwrap(), 1e-7),
                "{view} diverged under recompression"
            );
        }
    }

    #[test]
    fn recompression_exploits_redundant_batch_updates() {
        // A batch of three rank-1 updates hitting the *same* row is
        // syntactically rank 3 but numerically rank 1. Generic updates have
        // numerically tight blocks (rank 2 for Delta B, 4 for Delta C — the
        // Fig. 1 escalation), so the win here comes entirely from spotting
        // the hidden redundancy: block ranks drop 3 -> 1, 6 -> 2, 12 -> 4,
        // and the firing gets strictly cheaper in FLOPs.
        let n = 48;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        prog.assign("C", Expr::var("B") * Expr::var("B"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let a = Matrix::random_spectral(n, 7, 0.7);
        let build_env = || {
            let b = a.try_matmul(&a).unwrap();
            let c = b.try_matmul(&b).unwrap();
            let mut env = Env::new();
            env.bind("A", a.clone());
            env.bind("B", b);
            env.bind("C", c);
            env
        };
        let ev = Evaluator::new();
        // Uncompacted batch: three updates to row 3.
        let mut e3 = Matrix::zeros(n, 1);
        e3.set(3, 0, 1.0);
        let du = Matrix::hstack(&[&e3, &e3, &e3]).unwrap();
        let dv = Matrix::hstack(&[
            &Matrix::random_col(n, 8).scale(0.01),
            &Matrix::random_col(n, 9).scale(0.01),
            &Matrix::random_col(n, 10).scale(0.01),
        ])
        .unwrap();

        let run = |opts: &ExecOptions| {
            let mut env = build_env();
            linview_matrix::flops::reset();
            fire_trigger_with_options(&mut env, &ev, &tp.triggers[0], &du, &dv, opts).unwrap();
            (linview_matrix::flops::read(), env)
        };
        let (plain_flops, plain_env) = run(&ExecOptions::default());
        let (comp_flops, comp_env) = run(&ExecOptions {
            recompress_tol: Some(1e-10),
            ..ExecOptions::default()
        });
        assert!(
            comp_flops < plain_flops,
            "recompressed firing {comp_flops} !< plain {plain_flops}"
        );
        for view in ["A", "B", "C"] {
            assert!(
                comp_env
                    .get(view)
                    .unwrap()
                    .approx_eq(plain_env.get(view).unwrap(), 1e-8),
                "{view} diverged"
            );
        }
    }

    #[test]
    fn staged_execution_is_bit_identical_to_sequential() {
        // A^8 with a batch update: wide stages (U_B/V_B, U_C/V_C, U_D/V_D
        // pairs plus independent view folds) against the one-statement-at-
        // a-time opt-out. Bit-identical, not approximately equal. n is
        // past the parallel threshold so stage evaluation really runs on
        // worker threads.
        let n = 192;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        prog.assign("C", Expr::var("B") * Expr::var("B"));
        prog.assign("D", Expr::var("C") * Expr::var("C"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let dag = tp.triggers[0].dag().unwrap();
        assert!(dag.stage_count() < dag.stmt_count(), "{dag:?}");

        let a = Matrix::random_spectral(n, 17, 0.7);
        let build_env = || {
            let b = a.try_matmul(&a).unwrap();
            let c = b.try_matmul(&b).unwrap();
            let d = c.try_matmul(&c).unwrap();
            let mut env = Env::new();
            env.bind("A", a.clone());
            env.bind("B", b);
            env.bind("C", c);
            env.bind("D", d);
            env
        };
        let ev = Evaluator::new();
        let du = Matrix::random_uniform(n, 3, 18).scale(0.01);
        let dv = Matrix::random_uniform(n, 3, 19);

        let mut staged = build_env();
        let staged_report = fire_trigger_on(
            &mut LocalBackend,
            &mut staged,
            &ev,
            &tp.triggers[0],
            &du,
            &dv,
            &ExecOptions::default(),
        )
        .unwrap();
        let mut seq = build_env();
        let seq_report = fire_trigger_on(
            &mut LocalBackend,
            &mut seq,
            &ev,
            &tp.triggers[0],
            &du,
            &dv,
            &ExecOptions {
                sequential: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        for view in ["A", "B", "C", "D"] {
            assert_eq!(
                staged.get(view).unwrap(),
                seq.get(view).unwrap(),
                "{view} diverged between staged and sequential execution"
            );
        }
        assert_eq!(staged_report.stmts, seq_report.stmts);
        assert_eq!(seq_report.stages, seq_report.stmts, "opt-out is serial");
        assert_eq!(staged_report.stages as usize, dag.stage_count());
        assert!(staged_report.stages < staged_report.stmts);

        let mut sched = SchedStats::default();
        sched.record(staged_report);
        assert_eq!(sched.firings, 1);
        assert_eq!(
            sched.stmts_saved(),
            staged_report.stmts - staged_report.stages
        );
    }

    #[test]
    fn recompression_forces_the_sequential_schedule() {
        // The §4.3 pass rebinds pair blocks mid-body; a reader scheduled
        // into the same stage as the pair's completion would observe the
        // raw blocks where the sequential walk observes the recompressed
        // ones. Enabling recompression must therefore serialize the
        // schedule (stages == stmts in the firing report).
        let n = 16;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        prog.assign("C", Expr::var("B") * Expr::var("B"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let a = Matrix::random_spectral(n, 27, 0.7);
        let mut env = Env::new();
        env.bind("A", a.clone());
        let b = a.try_matmul(&a).unwrap();
        env.bind("C", b.try_matmul(&b).unwrap());
        env.bind("B", b);
        let du = Matrix::random_uniform(n, 2, 28).scale(0.01);
        let dv = Matrix::random_uniform(n, 2, 29);
        let report = fire_trigger_on(
            &mut LocalBackend,
            &mut env,
            &Evaluator::new(),
            &tp.triggers[0],
            &du,
            &dv,
            &ExecOptions {
                recompress_tol: Some(1e-10),
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.stages, report.stmts);
    }

    #[test]
    fn trigger_cleans_up_temporaries() {
        let n = 8;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let a = Matrix::random_spectral(n, 1, 0.5);
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", a.try_matmul(&a).unwrap());
        let before = env.len();
        fire_trigger(
            &mut env,
            &Evaluator::new(),
            &tp.triggers[0],
            &Matrix::random_col(n, 2).scale(0.01),
            &Matrix::random_col(n, 3),
        )
        .unwrap();
        assert_eq!(env.len(), before);
        assert!(!env.contains("dU_A"));
        assert!(!env.contains("U_B"));
    }

    #[test]
    fn trigger_rejects_nonconforming_update() {
        let n = 8;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let mut env = Env::new();
        env.bind("A", Matrix::identity(n));
        env.bind("B", Matrix::identity(n));
        let err = fire_trigger(
            &mut env,
            &Evaluator::new(),
            &tp.triggers[0],
            &Matrix::zeros(4, 1),
            &Matrix::zeros(8, 1),
        );
        assert!(matches!(err, Err(RuntimeError::UpdateShape { .. })));
    }

    #[test]
    fn rank_k_batch_update_through_trigger() {
        // Triggers are rank-generic: a rank-3 update flows through the same
        // compiled trigger (batch updates, §7 Table 4).
        let n = 16;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut prog = Program::new();
        prog.assign("B", Expr::var("A") * Expr::var("A"));
        let tp = compile(&prog, &["A"], &cat, &CompileOptions::default()).unwrap();
        let a = Matrix::random_spectral(n, 21, 0.8);
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", a.try_matmul(&a).unwrap());
        let du = Matrix::random_uniform(n, 3, 22).scale(0.01);
        let dv = Matrix::random_uniform(n, 3, 23);
        fire_trigger(&mut env, &Evaluator::new(), &tp.triggers[0], &du, &dv).unwrap();
        let mut a_new = a;
        a_new
            .add_assign_from(&du.try_matmul(&dv.transpose()).unwrap())
            .unwrap();
        let b_new = a_new.try_matmul(&a_new).unwrap();
        assert!(env.get("B").unwrap().approx_eq(&b_new, 1e-9));
    }
}
