//! Measurement helpers shared by tests, examples, and the bench harness.

use linview_matrix::flops;
use std::time::{Duration, Instant};

/// Wall-clock time plus FLOP count for one measured region.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefreshStats {
    /// Elapsed wall-clock time.
    pub wall: Duration,
    /// Floating-point operations observed by the kernel counters.
    pub flops: u64,
}

impl RefreshStats {
    /// FLOP throughput in GFLOP/s (0 when no time elapsed).
    pub fn gflops(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.flops as f64 / secs / 1e9
        }
    }
}

/// Runs `f`, measuring wall time and FLOPs.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, RefreshStats) {
    let start_flops = flops::read();
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed();
    let flops = flops::read().saturating_sub(start_flops);
    (out, RefreshStats { wall, flops })
}

/// Accumulates per-refresh stats and reports averages — the "average view
/// refresh time" metric every figure in §7 plots.
#[derive(Debug, Clone, Default)]
pub struct StatsAccumulator {
    samples: Vec<RefreshStats>,
}

impl StatsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one refresh.
    pub fn record(&mut self, s: RefreshStats) {
        self.samples.push(s);
    }

    /// Number of recorded refreshes.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean wall time per refresh.
    pub fn mean_wall(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().map(|s| s.wall).sum();
        total / self.samples.len() as u32
    }

    /// Mean FLOPs per refresh.
    pub fn mean_flops(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.flops as f64).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_captures_flops() {
        let ((), stats) = measure(|| {
            flops::add(1234);
        });
        assert!(stats.flops >= 1234);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = StatsAccumulator::new();
        assert!(acc.is_empty());
        acc.record(RefreshStats {
            wall: Duration::from_millis(10),
            flops: 100,
        });
        acc.record(RefreshStats {
            wall: Duration::from_millis(30),
            flops: 300,
        });
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.mean_wall(), Duration::from_millis(20));
        assert_eq!(acc.mean_flops(), 200.0);
    }

    #[test]
    fn gflops_handles_zero_duration() {
        let s = RefreshStats {
            wall: Duration::ZERO,
            flops: 100,
        };
        assert_eq!(s.gflops(), 0.0);
    }
}
