//! Delta write-ahead log: the firing records replayed after a crash.
//!
//! The checkpoint/replay fault-tolerance story (wired up by
//! [`MaintenanceEngine`](crate::MaintenanceEngine)) has two halves: a
//! periodic [`checkpoint`](crate::checkpoint) of the full environment, and
//! this log of every trigger firing *since* that snapshot. A firing is
//! exactly determined by the factored deltas it folded — triggers are
//! deterministic functions of the environment and the update factors — so
//! replaying the logged factors against the restored snapshot reproduces
//! the pre-crash state bit for bit.
//!
//! Records reuse the transport's `TAG_DELTA` frame encoding
//! ([`linview_dist::delta_frame`]) for each `(input, U, V)` triple: the
//! same bytes a broadcast would put on the wire, so the log's size tracks
//! the paper's `O(kn)` factor-traffic bound rather than the `O(n²)` views.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u8  joint      1 when the record was a §4.4 joint firing
//! u32 count      number of delta frames
//! count × { u32 frame_len | frame bytes }   TAG_DELTA frames
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_dist::{decode_delta_frame, delta_frame};
use linview_matrix::Matrix;

use crate::checkpoint::CheckpointError;
use crate::Result;

/// One logged trigger firing: the input(s) it covered and the factored
/// deltas it folded, in firing order.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringRecord {
    /// Whether this was a joint (§4.4) firing over every update at once.
    pub joint: bool,
    /// `(input, U, V)` per updated input; a non-joint record has one.
    pub updates: Vec<(String, Matrix, Matrix)>,
}

impl FiringRecord {
    /// A single-input firing record.
    pub fn single(input: &str, u: Matrix, v: Matrix) -> FiringRecord {
        FiringRecord {
            joint: false,
            updates: vec![(input.to_string(), u, v)],
        }
    }

    /// A joint firing record over `updates`.
    pub fn joint(updates: Vec<(String, Matrix, Matrix)>) -> FiringRecord {
        FiringRecord {
            joint: true,
            updates,
        }
    }

    /// Total fired rank across the record's updates.
    pub fn rank(&self) -> u64 {
        self.updates.iter().map(|(_, u, _)| u.cols() as u64).sum()
    }

    /// Serializes the record (delta frames borrowed straight from the
    /// transport codec).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(u8::from(self.joint));
        buf.put_u32_le(self.updates.len() as u32);
        for (input, u, v) in &self.updates {
            let frame = delta_frame(input, u, v);
            buf.put_u32_le(frame.len() as u32);
            buf.put_slice(&frame);
        }
        buf.freeze()
    }

    /// Decodes a record, rejecting truncated or trailing bytes. Corruption
    /// surfaces as [`RuntimeError::Checkpoint`](crate::RuntimeError) — the
    /// log is part of the checkpoint story, and its failure modes are the
    /// same class.
    pub fn decode(mut data: Bytes) -> Result<FiringRecord> {
        let corrupt = |what: &str| CheckpointError::new(format!("firing record: {what}"));
        if data.remaining() < 5 {
            return Err(corrupt("truncated header").into());
        }
        let joint = match data.get_u8() {
            0 => false,
            1 => true,
            other => return Err(corrupt(&format!("bad joint flag {other}")).into()),
        };
        let count = data.get_u32_le() as usize;
        let mut updates = Vec::new();
        for _ in 0..count {
            if data.remaining() < 4 {
                return Err(corrupt("truncated frame length").into());
            }
            let frame_len = data.get_u32_le() as usize;
            if data.remaining() < frame_len {
                return Err(corrupt("truncated delta frame").into());
            }
            let frame = data.copy_to_bytes(frame_len);
            let (input, u, v) = decode_delta_frame(frame)
                .map_err(|e| corrupt(&format!("undecodable delta frame: {e}")))?;
            updates.push((input, u, v));
        }
        if data.has_remaining() {
            return Err(corrupt("trailing bytes").into());
        }
        if joint && updates.is_empty() {
            return Err(corrupt("joint record with no updates").into());
        }
        Ok(FiringRecord { joint, updates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeError;

    #[test]
    fn records_round_trip_through_the_codec() {
        let u = Matrix::random_uniform(6, 2, 1);
        let v = Matrix::random_uniform(4, 2, 2);
        let single = FiringRecord::single("A", u.clone(), v.clone());
        assert_eq!(FiringRecord::decode(single.encode()).unwrap(), single);
        assert_eq!(single.rank(), 2);

        let joint = FiringRecord::joint(vec![
            ("A".to_string(), u.clone(), v.clone()),
            ("B".to_string(), v.clone(), u.clone()),
        ]);
        let back = FiringRecord::decode(joint.encode()).unwrap();
        assert_eq!(back, joint);
        assert_eq!(back.rank(), 4);
    }

    #[test]
    fn corrupt_records_error_instead_of_panicking() {
        let rec = FiringRecord::single(
            "A",
            Matrix::random_uniform(4, 1, 3),
            Matrix::random_uniform(4, 1, 4),
        );
        let good = rec.encode();
        // Truncations at every length never panic.
        for cut in 0..good.len() {
            let sliced = good.slice(0..cut);
            if let Err(e) = FiringRecord::decode(sliced) {
                assert!(matches!(e, RuntimeError::Checkpoint(_)));
            } else {
                assert_eq!(cut, good.len(), "only the full record may decode");
            }
        }
        // Trailing garbage is rejected too.
        let mut padded = BytesMut::from(&good[..]);
        padded.put_u8(0xAB);
        assert!(FiringRecord::decode(padded.freeze()).is_err());
        // A flipped joint flag value outside {0,1} is rejected.
        let mut flipped = BytesMut::from(&good[..]);
        flipped[0] = 7;
        assert!(FiringRecord::decode(flipped.freeze()).is_err());
    }
}
