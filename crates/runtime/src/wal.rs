//! Delta write-ahead log: the firing records replayed after a crash.
//!
//! The checkpoint/replay fault-tolerance story (wired up by
//! [`MaintenanceEngine`](crate::MaintenanceEngine)) has two halves: a
//! periodic [`checkpoint`](crate::checkpoint) of the full environment, and
//! this log of every trigger firing *since* that snapshot. A firing is
//! exactly determined by the factored deltas it folded — triggers are
//! deterministic functions of the environment and the update factors — so
//! replaying the logged factors against the restored snapshot reproduces
//! the pre-crash state bit for bit.
//!
//! Records reuse the transport's `TAG_DELTA` frame encoding
//! ([`linview_dist::delta_frame`]) for each `(input, U, V)` triple: the
//! same bytes a broadcast would put on the wire, so the log's size tracks
//! the paper's `O(kn)` factor-traffic bound rather than the `O(n²)` views.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u8  joint      1 when the record was a §4.4 joint firing
//! u32 count      number of delta frames
//! count × { u32 frame_len | frame bytes }   TAG_DELTA frames
//! ```

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_dist::{decode_delta_frame, delta_frame};
use linview_matrix::Matrix;

use crate::checkpoint::CheckpointError;
use crate::Result;

/// One logged trigger firing: the input(s) it covered and the factored
/// deltas it folded, in firing order.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringRecord {
    /// Whether this was a joint (§4.4) firing over every update at once.
    pub joint: bool,
    /// `(input, U, V)` per updated input; a non-joint record has one.
    pub updates: Vec<(String, Matrix, Matrix)>,
}

impl FiringRecord {
    /// A single-input firing record.
    pub fn single(input: &str, u: Matrix, v: Matrix) -> FiringRecord {
        FiringRecord {
            joint: false,
            updates: vec![(input.to_string(), u, v)],
        }
    }

    /// A joint firing record over `updates`.
    pub fn joint(updates: Vec<(String, Matrix, Matrix)>) -> FiringRecord {
        FiringRecord {
            joint: true,
            updates,
        }
    }

    /// Total fired rank across the record's updates.
    pub fn rank(&self) -> u64 {
        self.updates.iter().map(|(_, u, _)| u.cols() as u64).sum()
    }

    /// Serializes the record (delta frames borrowed straight from the
    /// transport codec).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(u8::from(self.joint));
        buf.put_u32_le(self.updates.len() as u32);
        for (input, u, v) in &self.updates {
            let frame = delta_frame(input, u, v);
            buf.put_u32_le(frame.len() as u32);
            buf.put_slice(&frame);
        }
        buf.freeze()
    }

    /// Decodes a record, rejecting truncated or trailing bytes. Corruption
    /// surfaces as [`RuntimeError::Checkpoint`](crate::RuntimeError) — the
    /// log is part of the checkpoint story, and its failure modes are the
    /// same class.
    pub fn decode(mut data: Bytes) -> Result<FiringRecord> {
        let corrupt = |what: &str| CheckpointError::new(format!("firing record: {what}"));
        if data.remaining() < 5 {
            return Err(corrupt("truncated header").into());
        }
        let joint = match data.get_u8() {
            0 => false,
            1 => true,
            other => return Err(corrupt(&format!("bad joint flag {other}")).into()),
        };
        let count = data.get_u32_le() as usize;
        let mut updates = Vec::new();
        for _ in 0..count {
            if data.remaining() < 4 {
                return Err(corrupt("truncated frame length").into());
            }
            let frame_len = data.get_u32_le() as usize;
            if data.remaining() < frame_len {
                return Err(corrupt("truncated delta frame").into());
            }
            let frame = data.copy_to_bytes(frame_len);
            let (input, u, v) = decode_delta_frame(frame)
                .map_err(|e| corrupt(&format!("undecodable delta frame: {e}")))?;
            updates.push((input, u, v));
        }
        if data.has_remaining() {
            return Err(corrupt("trailing bytes").into());
        }
        if joint && updates.is_empty() {
            return Err(corrupt("joint record with no updates").into());
        }
        Ok(FiringRecord { joint, updates })
    }
}

/// What reading a durable WAL back from disk found.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Every complete record, in append order.
    pub records: Vec<FiringRecord>,
    /// Bytes of a cleanly torn tail (a crash mid-append) that were
    /// discarded — and truncated from the file — during the read. Zero for
    /// an intact log.
    pub torn_tail_bytes: u64,
}

/// An append-only on-disk delta log of [`FiringRecord`]s.
///
/// Layout: a concatenation of `u32-LE record_len | record bytes` entries
/// (the record bytes are [`FiringRecord::encode`]). A crash mid-append
/// leaves a *torn tail* — a partial length prefix, or a prefix whose
/// declared payload extends past end-of-file. [`WalFile::read`]
/// distinguishes that clean truncation (recoverable: drop the tail, keep
/// every complete record) from mid-file corruption (a complete record that
/// fails to decode), which stays a typed [`CheckpointError`].
#[derive(Debug, Clone)]
pub struct WalFile {
    path: PathBuf,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::new(format!("wal {what} {}: {e}", path.display()))
}

impl WalFile {
    /// Opens (creating if absent) the log at `path`. Existing records are
    /// preserved; use [`WalFile::truncate`] to start a fresh log.
    pub fn open(path: impl Into<PathBuf>) -> Result<WalFile> {
        let path = path.into();
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        Ok(WalFile { path })
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (length prefix + encoded bytes) and flushes.
    pub fn append(&self, record: &FiringRecord) -> Result<()> {
        let encoded = record.encode();
        let mut buf = BytesMut::with_capacity(4 + encoded.len());
        buf.put_u32_le(encoded.len() as u32);
        buf.put_slice(&encoded);
        let mut file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("append-open", &self.path, &e))?;
        file.write_all(&buf)
            .and_then(|()| file.flush())
            .map_err(|e| io_err("append", &self.path, &e))?;
        Ok(())
    }

    /// Drops every record (the checkpoint roll: the snapshot now covers
    /// them).
    pub fn truncate(&self) -> Result<()> {
        File::create(&self.path).map_err(|e| io_err("truncate", &self.path, &e))?;
        Ok(())
    }

    /// Reads the log back, tolerating a cleanly torn tail.
    ///
    /// A tail whose length prefix or payload is cut short — the signature
    /// of a crash mid-append — is truncated away (both from the returned
    /// records and from the file itself, so the next append starts on a
    /// record boundary) and reported in
    /// [`WalRecovery::torn_tail_bytes`]. A *complete* record that fails to
    /// decode is mid-file corruption and surfaces as a typed
    /// [`RuntimeError::Checkpoint`](crate::RuntimeError) instead.
    pub fn read(&self) -> Result<WalRecovery> {
        let raw = std::fs::read(&self.path).map_err(|e| io_err("read", &self.path, &e))?;
        let total = raw.len() as u64;
        let mut data = Bytes::from(raw);
        let mut records = Vec::new();
        let mut consumed = 0u64;
        loop {
            if !data.has_remaining() {
                return Ok(WalRecovery {
                    records,
                    torn_tail_bytes: 0,
                });
            }
            if data.remaining() < 4 {
                break; // partial length prefix
            }
            let mut peek = data.clone();
            let len = peek.get_u32_le() as usize;
            if peek.remaining() < len {
                break; // prefix intact, payload cut short
            }
            data.advance(4);
            let record = FiringRecord::decode(data.copy_to_bytes(len))?;
            records.push(record);
            consumed += 4 + len as u64;
        }
        // Torn tail: chop the file back to the last complete record so the
        // log is append-ready again.
        let file = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen", &self.path, &e))?;
        file.set_len(consumed)
            .map_err(|e| io_err("tail-truncate", &self.path, &e))?;
        Ok(WalRecovery {
            records,
            torn_tail_bytes: total - consumed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeError;

    #[test]
    fn records_round_trip_through_the_codec() {
        let u = Matrix::random_uniform(6, 2, 1);
        let v = Matrix::random_uniform(4, 2, 2);
        let single = FiringRecord::single("A", u.clone(), v.clone());
        assert_eq!(FiringRecord::decode(single.encode()).unwrap(), single);
        assert_eq!(single.rank(), 2);

        let joint = FiringRecord::joint(vec![
            ("A".to_string(), u.clone(), v.clone()),
            ("B".to_string(), v.clone(), u.clone()),
        ]);
        let back = FiringRecord::decode(joint.encode()).unwrap();
        assert_eq!(back, joint);
        assert_eq!(back.rank(), 4);
    }

    #[test]
    fn corrupt_records_error_instead_of_panicking() {
        let rec = FiringRecord::single(
            "A",
            Matrix::random_uniform(4, 1, 3),
            Matrix::random_uniform(4, 1, 4),
        );
        let good = rec.encode();
        // Truncations at every length never panic.
        for cut in 0..good.len() {
            let sliced = good.slice(0..cut);
            if let Err(e) = FiringRecord::decode(sliced) {
                assert!(matches!(e, RuntimeError::Checkpoint(_)));
            } else {
                assert_eq!(cut, good.len(), "only the full record may decode");
            }
        }
        // Trailing garbage is rejected too.
        let mut padded = BytesMut::from(&good[..]);
        padded.put_u8(0xAB);
        assert!(FiringRecord::decode(padded.freeze()).is_err());
        // A flipped joint flag value outside {0,1} is rejected.
        let mut flipped = BytesMut::from(&good[..]);
        flipped[0] = 7;
        assert!(FiringRecord::decode(flipped.freeze()).is_err());
    }

    fn wal_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lv-wal-{tag}-{}.bin", std::process::id()))
    }

    fn sample_records() -> Vec<FiringRecord> {
        let u = Matrix::random_uniform(5, 2, 11);
        let v = Matrix::random_uniform(5, 2, 12);
        vec![
            FiringRecord::single("A", u.clone(), v.clone()),
            FiringRecord::joint(vec![
                ("A".to_string(), u.clone(), v.clone()),
                ("B".to_string(), v.clone(), u.clone()),
            ]),
            FiringRecord::single("B", v, u),
        ]
    }

    #[test]
    fn wal_file_round_trips_and_truncates() {
        let path = wal_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let wal = WalFile::open(&path).unwrap();
        let records = sample_records();
        for r in &records {
            wal.append(r).unwrap();
        }
        let back = wal.read().unwrap();
        assert_eq!(back.records, records);
        assert_eq!(back.torn_tail_bytes, 0);
        wal.truncate().unwrap();
        assert_eq!(wal.read().unwrap().records.len(), 0);
        // Appending after a truncate starts a fresh log.
        wal.append(&records[0]).unwrap();
        assert_eq!(wal.read().unwrap().records, vec![records[0].clone()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_at_every_cut_point_recover_the_complete_prefix() {
        let path = wal_path("torn");
        let _ = std::fs::remove_file(&path);
        let wal = WalFile::open(&path).unwrap();
        let records = sample_records();
        let mut boundaries = vec![0u64]; // file length after each append
        for r in &records {
            wal.append(r).unwrap();
            boundaries.push(std::fs::metadata(&path).unwrap().len());
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let rec = WalFile::open(&path).unwrap().read().unwrap();
            // Every record wholly below the cut survives; the torn tail is
            // exactly the bytes past the last record boundary.
            let complete = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(rec.records, records[..complete], "cut at {cut}");
            assert_eq!(
                rec.torn_tail_bytes,
                cut as u64 - boundaries[complete],
                "cut at {cut}"
            );
            // And the file was chopped back to the boundary, append-ready.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                boundaries[complete]
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_stays_a_typed_error() {
        let path = wal_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let wal = WalFile::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let before = bytes.len();
        // Flip a byte inside the FIRST record's payload: the record is
        // complete (its length prefix is intact) but undecodable — that is
        // corruption, not a torn tail, and must not be silently dropped.
        bytes[6] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = wal.read().unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
        // The file is left alone for forensics.
        assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, before);
        let _ = std::fs::remove_file(&path);
    }
}
