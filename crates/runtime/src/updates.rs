//! Update stream generation — the paper's workload (§7).
//!
//! "We generate a continuous random stream of rank-1 updates where each
//! update affects one row of an input matrix." Batch updates (Table 4) draw
//! the affected row from a Zipf distribution with configurable skew: high
//! skew concentrates the batch on a few rows (cheap, low effective rank);
//! zero skew spreads it uniformly (expensive — the regime where incremental
//! evaluation loses its advantage).

use linview_matrix::{factor_nnz, Matrix};
use linview_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A factored rank-1 update `ΔX = u · vᵀ`.
#[derive(Debug, Clone)]
pub struct RankOneUpdate {
    /// Left factor (`rows×1`).
    pub u: Matrix,
    /// Right factor (`cols×1`).
    pub v: Matrix,
}

impl RankOneUpdate {
    /// A row update: adds `scale`-magnitude random values to row `row` of an
    /// `rows×cols` matrix (`u = e_row`, `v` random).
    pub fn row_update(rows: usize, cols: usize, row: usize, scale: f64, seed: u64) -> Self {
        assert!(row < rows, "row {row} out of bounds for {rows} rows");
        let mut u = Matrix::zeros(rows, 1);
        u.set(row, 0, 1.0);
        let v = Matrix::random_col(cols, seed).scale(scale);
        RankOneUpdate { u, v }
    }

    /// A fully random (dense) rank-1 update.
    pub fn dense(rows: usize, cols: usize, scale: f64, seed: u64) -> Self {
        RankOneUpdate {
            u: Matrix::random_col(rows, seed).scale(scale),
            v: Matrix::random_col(cols, seed.wrapping_add(1)),
        }
    }

    /// Materializes the dense `ΔX` (tests / re-evaluation baselines).
    pub fn to_dense(&self) -> Matrix {
        Matrix::outer(&self.u, &self.v).expect("factors are column vectors")
    }

    /// Applies this update to a matrix in place.
    pub fn apply_to(&self, m: &mut Matrix) -> crate::Result<()> {
        m.add_outer(&self.u, &self.v)?;
        Ok(())
    }

    /// The affected row when this is a row update (`u` a scaled basis
    /// vector); `None` for dense updates. The same classification
    /// [`BatchUpdate::compact_rows`] uses to decide mergeability.
    pub fn basis_row(&self) -> Option<usize> {
        basis_row_of_col(&self.u, 0).map(|(r, _)| r)
    }
}

/// The single nonzero row of column `c` of `u`, with its coefficient, when
/// that column is a scaled basis vector — the one shared definition of
/// "row update" used by compaction and by the engine's rank accounting.
fn basis_row_of_col(u: &Matrix, c: usize) -> Option<(usize, f64)> {
    let mut row = None;
    for r in 0..u.rows() {
        let val = u.get(r, c);
        if val != 0.0 {
            if row.is_some() {
                return None;
            }
            row = Some((r, val));
        }
    }
    row
}

/// A batch of rank-1 updates compacted into a single factored rank-`k`
/// update `ΔX = U Vᵀ` (§4.2: "rank-k changes of input matrices").
#[derive(Debug, Clone)]
pub struct BatchUpdate {
    /// Left block `(rows×k)`.
    pub u: Matrix,
    /// Right block `(cols×k)`.
    pub v: Matrix,
    /// Combined factor nonzeros, counted once at construction (coalesce
    /// time) so per-fold consumers never rescan the factors.
    nnz: usize,
}

impl BatchUpdate {
    /// Builds a batch from already-factored blocks, counting factor
    /// nonzeros once. Rejects factors with mismatched ranks.
    pub fn new(u: Matrix, v: Matrix) -> crate::Result<Self> {
        if u.cols() != v.cols() {
            return Err(crate::RuntimeError::UpdateShape {
                target: (u.rows(), v.rows()),
                update: (u.shape(), v.shape()),
            });
        }
        let nnz = factor_nnz(&u) + factor_nnz(&v);
        Ok(BatchUpdate { u, v, nnz })
    }

    /// An empty (rank-0, no-op) batch against an `rows×cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        BatchUpdate {
            u: Matrix::zeros(rows, 0),
            v: Matrix::zeros(cols, 0),
            nnz: 0,
        }
    }

    /// Stacks individual rank-1 updates into block form. An empty slice has
    /// no dimensions to stack and is rejected; build explicit empty batches
    /// with [`BatchUpdate::empty`].
    pub fn from_rank_ones(updates: &[RankOneUpdate]) -> crate::Result<Self> {
        let us: Vec<&Matrix> = updates.iter().map(|r| &r.u).collect();
        let vs: Vec<&Matrix> = updates.iter().map(|r| &r.v).collect();
        BatchUpdate::new(Matrix::hstack(&us)?, Matrix::hstack(&vs)?)
    }

    /// Factors a sparse delta `ΔX` into batch form: every nonzero row `r`
    /// contributes one basis column `e_r` on the left and the row's values
    /// on the right, so the rank equals the number of touched rows — the
    /// natural encoding of a CSR-accumulated update stream.
    pub fn from_csr(delta: &CsrMatrix) -> crate::Result<Self> {
        let touched: Vec<usize> = (0..delta.rows())
            .filter(|&r| delta.row_entries(r).any(|(_, x)| x != 0.0))
            .collect();
        if touched.is_empty() {
            return Ok(BatchUpdate::empty(delta.rows(), delta.cols()));
        }
        let mut u = Matrix::zeros(delta.rows(), touched.len());
        let mut v = Matrix::zeros(delta.cols(), touched.len());
        for (col, &r) in touched.iter().enumerate() {
            u.set(r, col, 1.0);
            for (c, x) in delta.row_entries(r) {
                v.set(c, col, x);
            }
        }
        BatchUpdate::new(u, v)
    }

    /// The batch rank `k`.
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// True when the batch carries no update at all (rank 0).
    pub fn is_empty(&self) -> bool {
        self.u.cols() == 0
    }

    /// Combined nonzeros of both factor blocks, cached at construction.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of stored factor entries that are nonzero (`0.0` for a
    /// rank-0 batch). Row-update streams sit near `1/rows` on the left
    /// block, far under the sparse-fold crossover.
    pub fn density(&self) -> f64 {
        let cells = self.u.rows() * self.u.cols() + self.v.rows() * self.v.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz as f64 / cells as f64
        }
    }

    /// Number of *distinct* rows touched (row updates only): the effective
    /// rank that determines incremental maintenance cost under skew.
    /// Returns 0 for empty or all-zero batches.
    pub fn distinct_rows(&self) -> usize {
        let mut rows = std::collections::BTreeSet::new();
        for c in 0..self.u.cols() {
            for r in 0..self.u.rows() {
                if self.u.get(r, c) != 0.0 {
                    rows.insert(r);
                }
            }
        }
        rows.len()
    }

    /// Merges updates that hit the same row, reducing the batch rank to the
    /// number of distinct rows (the compaction that makes skewed Zipf
    /// batches cheap, Table 4).
    ///
    /// Edge cases are handled rather than assumed away: columns whose `u`
    /// is **not** a scaled basis vector (dense updates) are passed through
    /// unmerged instead of being silently truncated to their first nonzero
    /// row; all-zero columns and same-row updates that cancel exactly are
    /// dropped (they carry no update); and an empty or fully-cancelled
    /// batch compacts to the rank-0 [`BatchUpdate::empty`] form.
    pub fn compact_rows(&self) -> crate::Result<BatchUpdate> {
        use std::collections::BTreeMap;
        let mut merged: BTreeMap<usize, Matrix> = BTreeMap::new();
        // Column indices of non-basis u columns, passed through verbatim.
        let mut passthrough: Vec<usize> = Vec::new();
        for c in 0..self.u.cols() {
            // A column whose u *or* v block is entirely zero is an exact
            // no-op event (ΔX contribution u_c·v_cᵀ = 0) — drop it so
            // cancelling Zipf streams shrink the batch rank.
            let zero_u = (0..self.u.rows()).all(|r| self.u.get(r, c) == 0.0);
            let zero_v = (0..self.v.rows()).all(|r| self.v.get(r, c) == 0.0);
            if zero_u || zero_v {
                continue;
            }
            let Some((r, coeff)) = basis_row_of_col(&self.u, c) else {
                passthrough.push(c);
                continue;
            };
            let contrib = self.v.col_matrix(c).scale(coeff);
            match merged.get_mut(&r) {
                Some(acc) => acc.add_assign_from(&contrib)?,
                None => {
                    merged.insert(r, contrib);
                }
            }
        }
        // Same-row updates that cancelled exactly carry no delta.
        merged.retain(|_, vc| vc.as_slice().iter().any(|&x| x != 0.0));
        let k = merged.len() + passthrough.len();
        if k == 0 {
            return Ok(BatchUpdate::empty(self.u.rows(), self.v.rows()));
        }
        let mut u = Matrix::zeros(self.u.rows(), k);
        let mut v = Matrix::zeros(self.v.rows(), k);
        let mut col = 0;
        for (row, vc) in merged {
            u.set(row, col, 1.0);
            for r in 0..vc.rows() {
                v.set(r, col, vc.get(r, 0));
            }
            col += 1;
        }
        for &c in &passthrough {
            for r in 0..self.u.rows() {
                u.set(r, col, self.u.get(r, c));
            }
            for r in 0..self.v.rows() {
                v.set(r, col, self.v.get(r, c));
            }
            col += 1;
        }
        BatchUpdate::new(u, v)
    }

    /// Materializes the dense `ΔX` (all zeros for an empty batch).
    pub fn to_dense(&self) -> crate::Result<Matrix> {
        if self.is_empty() {
            return Ok(Matrix::zeros(self.u.rows(), self.v.rows()));
        }
        Ok(self.u.try_matmul(&self.v.transpose())?)
    }
}

/// A Zipf(`s`) sampler over `{0, 1, …, n−1}` via inverse-CDF lookup.
///
/// `s = 0` is the uniform distribution; larger `s` concentrates mass on the
/// first ranks. Implemented here because the allowed dependency set has no
/// distribution crate.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank in `{0, …, n−1}`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&x).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A deterministic, seeded stream of updates against an `rows×cols` matrix.
#[derive(Debug)]
pub struct UpdateStream {
    rows: usize,
    cols: usize,
    scale: f64,
    rng: StdRng,
    counter: u64,
}

impl UpdateStream {
    /// Creates a stream of `scale`-magnitude row updates.
    pub fn new(rows: usize, cols: usize, scale: f64, seed: u64) -> Self {
        UpdateStream {
            rows,
            cols,
            scale,
            rng: StdRng::seed_from_u64(seed),
            counter: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next single-row rank-1 update (uniformly random row).
    pub fn next_rank_one(&mut self) -> RankOneUpdate {
        let row = self.rng.random_range(0..self.rows);
        self.counter = self.counter.wrapping_add(1);
        RankOneUpdate::row_update(self.rows, self.cols, row, self.scale, self.counter)
    }

    /// Next single-row rank-1 update with the row drawn Zipf(`zipf_s`) —
    /// the per-event form of [`UpdateStream::next_batch_zipf`], for feeding
    /// skewed streams into a batching engine one event at a time.
    pub fn next_rank_one_zipf(&mut self, zipf_s: f64) -> RankOneUpdate {
        let zipf = Zipf::new(self.rows, zipf_s);
        let row = zipf.sample(&mut self.rng);
        self.counter = self.counter.wrapping_add(1);
        RankOneUpdate::row_update(self.rows, self.cols, row, self.scale, self.counter)
    }

    /// Next batch of `batch` row updates with rows drawn Zipf(`zipf_s`)
    /// (already compacted to distinct rows).
    pub fn next_batch_zipf(&mut self, batch: usize, zipf_s: f64) -> crate::Result<BatchUpdate> {
        let zipf = Zipf::new(self.rows, zipf_s);
        let mut ones = Vec::with_capacity(batch);
        for _ in 0..batch {
            let row = zipf.sample(&mut self.rng);
            self.counter = self.counter.wrapping_add(1);
            ones.push(RankOneUpdate::row_update(
                self.rows,
                self.cols,
                row,
                self.scale,
                self.counter,
            ));
        }
        BatchUpdate::from_rank_ones(&ones)?.compact_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;

    #[test]
    fn row_update_touches_one_row() {
        let upd = RankOneUpdate::row_update(6, 4, 2, 0.1, 7);
        let dense = upd.to_dense();
        for r in 0..6 {
            for c in 0..4 {
                if r == 2 {
                    continue;
                }
                assert_eq!(dense.get(r, c), 0.0);
            }
        }
        assert!(dense.row(2).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn apply_to_matches_dense_add() {
        let upd = RankOneUpdate::dense(5, 5, 0.1, 3);
        let mut a = Matrix::random_uniform(5, 5, 4);
        let mut b = a.clone();
        upd.apply_to(&mut a).unwrap();
        b.add_assign_from(&upd.to_dense()).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn batch_stacks_and_materializes() {
        let ones = vec![
            RankOneUpdate::row_update(6, 4, 0, 0.1, 1),
            RankOneUpdate::row_update(6, 4, 3, 0.1, 2),
        ];
        let batch = BatchUpdate::from_rank_ones(&ones).unwrap();
        assert_eq!(batch.rank(), 2);
        let dense = batch.to_dense().unwrap();
        let expected = ones[0].to_dense().try_add(&ones[1].to_dense()).unwrap();
        assert!(dense.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn compact_rows_merges_duplicates() {
        let ones = vec![
            RankOneUpdate::row_update(6, 4, 2, 0.1, 1),
            RankOneUpdate::row_update(6, 4, 2, 0.1, 2),
            RankOneUpdate::row_update(6, 4, 5, 0.1, 3),
        ];
        let batch = BatchUpdate::from_rank_ones(&ones).unwrap();
        assert_eq!(batch.rank(), 3);
        let compact = batch.compact_rows().unwrap();
        assert_eq!(compact.rank(), 2);
        assert_eq!(compact.distinct_rows(), 2);
        assert!(compact
            .to_dense()
            .unwrap()
            .approx_eq(&batch.to_dense().unwrap(), 1e-12));
    }

    #[test]
    fn empty_batch_has_sane_rank_compaction_and_dense_form() {
        let empty = BatchUpdate::empty(6, 4);
        assert!(empty.is_empty());
        assert_eq!(empty.rank(), 0);
        assert_eq!(empty.distinct_rows(), 0);
        let compact = empty.compact_rows().unwrap();
        assert_eq!(compact.rank(), 0);
        let dense = empty.to_dense().unwrap();
        assert_eq!(dense.shape(), (6, 4));
        assert!(dense.as_slice().iter().all(|&x| x == 0.0));
        // No dimensions to infer from an empty slice: explicit error, not
        // a bogus batch.
        assert!(BatchUpdate::from_rank_ones(&[]).is_err());
    }

    #[test]
    fn compact_rows_drops_zero_columns_to_rank_zero() {
        let batch = BatchUpdate::new(Matrix::zeros(5, 3), Matrix::random_uniform(4, 3, 9)).unwrap();
        let compact = batch.compact_rows().unwrap();
        assert!(compact.is_empty());
        assert!(compact
            .to_dense()
            .unwrap()
            .approx_eq(&Matrix::zeros(5, 4), 0.0));
    }

    #[test]
    fn compact_rows_drops_zero_v_events_even_on_dense_u_columns() {
        // A dense (non-basis) u column paired with an all-zero v column is
        // an exact no-op event; the old passthrough kept it alive.
        let mut u = Matrix::random_uniform(6, 2, 31);
        for r in 0..6 {
            u.set(r, 1, u.get(r, 1) + 0.5); // ensure column 1 is dense too
        }
        let mut v = Matrix::zeros(4, 2);
        for r in 0..4 {
            v.set(r, 0, 0.25 * (r as f64 + 1.0));
        }
        let batch = BatchUpdate::new(u, v).unwrap();
        let compact = batch.compact_rows().unwrap();
        assert_eq!(compact.rank(), 1);
        assert!(compact
            .to_dense()
            .unwrap()
            .approx_eq(&batch.to_dense().unwrap(), 1e-12));
    }

    #[test]
    fn nnz_and_density_are_cached_at_coalesce_time() {
        let ones = vec![
            RankOneUpdate::row_update(8, 4, 2, 0.1, 1),
            RankOneUpdate::row_update(8, 4, 5, 0.1, 2),
        ];
        let batch = BatchUpdate::from_rank_ones(&ones).unwrap();
        // u: one basis entry per column; v: fully dense random columns.
        assert_eq!(batch.nnz(), 2 + 2 * 4);
        let cells = (8 * 2 + 4 * 2) as f64;
        assert!((batch.density() - batch.nnz() as f64 / cells).abs() < 1e-15);
        assert_eq!(BatchUpdate::empty(8, 4).nnz(), 0);
        assert_eq!(BatchUpdate::empty(8, 4).density(), 0.0);
    }

    #[test]
    fn new_rejects_mismatched_ranks() {
        assert!(BatchUpdate::new(Matrix::zeros(4, 2), Matrix::zeros(5, 3)).is_err());
    }

    #[test]
    fn from_csr_round_trips_the_sparse_delta() {
        let mut dense = Matrix::zeros(5, 4);
        dense.set(1, 0, 2.0);
        dense.set(1, 3, -1.5);
        dense.set(4, 2, 0.75);
        let csr = linview_sparse::CsrMatrix::from_dense(&dense, 0.0);
        let batch = BatchUpdate::from_csr(&csr).unwrap();
        assert_eq!(batch.rank(), 2); // two touched rows
        assert_eq!(batch.to_dense().unwrap(), dense);
        // Empty delta factors to the rank-0 batch.
        let none = BatchUpdate::from_csr(&linview_sparse::CsrMatrix::zeros(5, 4)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn compact_rows_drops_exactly_cancelling_same_row_updates() {
        // +w and -w on the same row merge to a zero contribution: rank 0.
        let up = RankOneUpdate::row_update(6, 4, 3, 0.1, 7);
        let down = RankOneUpdate {
            u: up.u.clone(),
            v: up.v.scale(-1.0),
        };
        let batch = BatchUpdate::from_rank_ones(&[up, down]).unwrap();
        let compact = batch.compact_rows().unwrap();
        assert!(compact.is_empty());
        assert!(compact
            .to_dense()
            .unwrap()
            .approx_eq(&Matrix::zeros(6, 4), 0.0));
    }

    #[test]
    fn basis_row_classifies_row_and_dense_updates() {
        assert_eq!(
            RankOneUpdate::row_update(6, 4, 2, 0.1, 1).basis_row(),
            Some(2)
        );
        assert_eq!(RankOneUpdate::dense(6, 4, 0.1, 2).basis_row(), None);
    }

    #[test]
    fn compact_rows_passes_dense_columns_through_unchanged() {
        // One dense rank-1 update mixed into two same-row updates: the row
        // updates merge, the dense column must survive verbatim (the old
        // behavior silently truncated it to its first nonzero row).
        let ones = vec![
            RankOneUpdate::row_update(6, 4, 2, 0.1, 1),
            RankOneUpdate::row_update(6, 4, 2, 0.1, 2),
            RankOneUpdate::dense(6, 4, 0.1, 3),
        ];
        let batch = BatchUpdate::from_rank_ones(&ones).unwrap();
        let compact = batch.compact_rows().unwrap();
        assert_eq!(compact.rank(), 2);
        assert!(compact
            .to_dense()
            .unwrap()
            .approx_eq(&batch.to_dense().unwrap(), 1e-12));
    }

    #[test]
    fn zipf_zero_is_roughly_uniform_and_high_s_is_skewed() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50;
        let uniform = Zipf::new(n, 0.0);
        let skewed = Zipf::new(n, 3.0);
        let mut first_uniform = 0;
        let mut first_skewed = 0;
        let trials = 2000;
        for _ in 0..trials {
            if uniform.sample(&mut rng) == 0 {
                first_uniform += 1;
            }
            if skewed.sample(&mut rng) == 0 {
                first_skewed += 1;
            }
        }
        // Uniform: ~2% hit rank 0. Skewed s=3: ~83%.
        assert!(first_uniform < trials / 10);
        assert!(first_skewed > trials / 2);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut s1 = UpdateStream::new(10, 10, 0.1, 99);
        let mut s2 = UpdateStream::new(10, 10, 0.1, 99);
        let a = s1.next_rank_one();
        let b = s2.next_rank_one();
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn skewed_batches_have_lower_rank_than_uniform() {
        let mut s = UpdateStream::new(100, 100, 0.1, 7);
        let skewed = s.next_batch_zipf(64, 4.0).unwrap();
        let mut s2 = UpdateStream::new(100, 100, 0.1, 8);
        let uniform = s2.next_batch_zipf(64, 0.0).unwrap();
        assert!(
            skewed.rank() < uniform.rank(),
            "skewed {} !< uniform {}",
            skewed.rank(),
            uniform.rank()
        );
    }
}
