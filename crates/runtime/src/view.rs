//! Maintained-view drivers: the REEVAL and INCR strategies every experiment
//! in §7 compares.
//!
//! * [`ReevalView`] — applies the update to the base matrix, then re-runs
//!   the whole program ("The re-evaluation strategy first applies ΔA to A
//!   and then … recomputes", §5.2.2).
//! * [`IncrementalView`] — compiles the program once (Algorithm 1),
//!   materializes every statement's result, and fires the matching trigger
//!   per update.
//!
//! The hybrid strategy of §5.3 is specific to the general iterative form
//! and lives in `linview-apps`.

use linview_compiler::{
    compile, compile_joint, CompileOptions, JointTrigger, Program, TriggerProgram,
};
use linview_dist::CommSnapshot;
use linview_expr::Catalog;
use linview_matrix::Matrix;

use crate::exec::{SchedStats, SparseStats};
use crate::snapshot::{SnapshotPublisher, ViewHandle};
use crate::updates::BatchUpdate;
use crate::{
    Env, Evaluator, ExecBackend, ExecOptions, LocalBackend, RankOneUpdate, Result, RuntimeError,
};

/// Full re-evaluation baseline.
#[derive(Debug, Clone)]
pub struct ReevalView {
    program: Program,
    env: Env,
    evaluator: Evaluator,
}

impl ReevalView {
    /// Builds the view: binds the inputs and evaluates the program once.
    pub fn build(program: &Program, inputs: &[(&str, Matrix)], _cat: &Catalog) -> Result<Self> {
        let mut env = Env::new();
        for (name, m) in inputs {
            env.bind(*name, m.clone());
        }
        let mut v = ReevalView {
            program: program.clone(),
            env,
            evaluator: Evaluator::new(),
        };
        v.reevaluate()?;
        Ok(v)
    }

    fn reevaluate(&mut self) -> Result<()> {
        for stmt in self.program.statements() {
            let value = self.evaluator.eval(&stmt.expr, &self.env)?;
            self.env.bind(stmt.target.clone(), value);
        }
        Ok(())
    }

    /// Applies a rank-1 update to `input` and recomputes everything.
    pub fn apply(&mut self, input: &str, upd: &RankOneUpdate) -> Result<()> {
        upd.apply_to(self.env.get_mut(input)?)?;
        self.reevaluate()
    }

    /// Applies a batched rank-k update to `input` and recomputes everything.
    pub fn apply_batch(&mut self, input: &str, upd: &BatchUpdate) -> Result<()> {
        let delta = upd.to_dense()?;
        self.env.get_mut(input)?.add_assign_from(&delta)?;
        self.reevaluate()
    }

    /// Reads a maintained matrix.
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.env.get(name)
    }

    /// Total bytes held by base matrices and views.
    pub fn memory_bytes(&self) -> usize {
        self.env.memory_bytes()
    }
}

/// Incremental maintenance via compiled triggers, generic over *where* the
/// triggers execute.
///
/// The default backend is [`LocalBackend`] (in-process dense views); pass a
/// [`DistBackend`](crate::DistBackend) to [`IncrementalView::build_on`] and
/// the same compiled triggers drive grid-partitioned views with metered
/// communication instead — one code path, two deployments (§6).
#[derive(Debug, Clone)]
pub struct IncrementalView<B: ExecBackend = LocalBackend> {
    trigger_program: TriggerProgram,
    /// Joint trigger for simultaneous updates to all dynamic inputs
    /// (§4.4); `None` when the program does not admit one.
    joint: Option<JointTrigger>,
    env: Env,
    evaluator: Evaluator,
    exec: ExecOptions,
    backend: B,
    /// Cumulative staged-scheduling counters across firings.
    sched: SchedStats,
    /// Cumulative sparse-execution counters across firings.
    sparse: SparseStats,
    /// Wait-free snapshot publication for readers; `None` until
    /// [`IncrementalView::enable_serving`].
    serving: Option<SnapshotPublisher>,
}

impl IncrementalView<LocalBackend> {
    /// Compiles `program` for updates to every input, then materializes all
    /// views ("we also precompute the initial values of all auxiliary views
    /// and preload these values before the actual computation", §7).
    pub fn build(program: &Program, inputs: &[(&str, Matrix)], cat: &Catalog) -> Result<Self> {
        Self::build_with_options(program, inputs, cat, &CompileOptions::default())
    }

    /// As [`IncrementalView::build`] with explicit compiler options.
    pub fn build_with_options(
        program: &Program,
        inputs: &[(&str, Matrix)],
        cat: &Catalog,
        opts: &CompileOptions,
    ) -> Result<Self> {
        Self::build_on_with_options(LocalBackend, program, inputs, cat, opts)
    }
}

impl<B: ExecBackend> IncrementalView<B> {
    /// As [`IncrementalView::build`] on an explicit execution backend.
    pub fn build_on(
        backend: B,
        program: &Program,
        inputs: &[(&str, Matrix)],
        cat: &Catalog,
    ) -> Result<Self> {
        Self::build_on_with_options(backend, program, inputs, cat, &CompileOptions::default())
    }

    /// As [`IncrementalView::build_on`] with explicit compiler options.
    pub fn build_on_with_options(
        mut backend: B,
        program: &Program,
        inputs: &[(&str, Matrix)],
        cat: &Catalog,
        opts: &CompileOptions,
    ) -> Result<Self> {
        let dynamic: Vec<&str> = inputs.iter().map(|(n, _)| *n).collect();
        let normalized = program.hoist_inverses(&dynamic);
        let tp = compile(&normalized, &dynamic, cat, opts)?;
        // The joint form is best-effort: every straight-line program the
        // per-input compiler accepts should admit one, but its absence only
        // disables `apply_joint`, never the per-input path.
        let joint = compile_joint(&normalized, &dynamic, cat, opts).ok();
        let mut env = Env::new();
        for (name, m) in inputs {
            env.bind(*name, m.clone());
        }
        let evaluator = Evaluator::new();
        // Materialize every statement's result (the views the triggers maintain).
        for stmt in normalized.statements() {
            let value = evaluator.eval(&stmt.expr, &env)?;
            env.bind(stmt.target.clone(), value);
        }
        backend.materialize(&env)?;
        Ok(IncrementalView {
            trigger_program: tp,
            joint,
            env,
            evaluator,
            exec: ExecOptions::default(),
            backend,
            sched: SchedStats::default(),
            sparse: SparseStats::default(),
            serving: None,
        })
    }

    /// Turns on the wait-free read path ([`crate::snapshot`]): publishes an
    /// epoch-0 snapshot of the current environment immediately, then
    /// republishes after every `publish_every` completed rounds (`0`
    /// behaves like `1`). Returns a cloneable [`ViewHandle`] for readers;
    /// call [`IncrementalView::serving_handle`] for more.
    pub fn enable_serving(&mut self, publish_every: u64) -> ViewHandle {
        let publisher = SnapshotPublisher::new(publish_every);
        publisher.publish(&self.env);
        let handle = publisher.handle();
        self.serving = Some(publisher);
        handle
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<ViewHandle> {
        self.serving.as_ref().map(SnapshotPublisher::handle)
    }

    /// Forces an immediate publication of the current environment,
    /// regardless of cadence — e.g. to expose the final state after a
    /// run's last (partial) batch. Returns `false` when serving is off.
    pub fn publish_snapshot(&self) -> bool {
        match &self.serving {
            Some(srv) => {
                srv.publish(&self.env);
                true
            }
            None => false,
        }
    }

    /// Records one completed state-changing round (a firing or a restore)
    /// with the serving layer, publishing per the cadence.
    fn serving_round(&self, force: bool) {
        if let Some(srv) = &self.serving {
            srv.round_completed(&self.env, force);
        }
    }

    /// Overrides trigger-execution options (inverse primitive, delta
    /// recompression). Applies to all subsequent updates.
    pub fn set_exec_options(&mut self, exec: ExecOptions) {
        self.exec = exec;
    }

    /// Fires the trigger for a rank-1 update to `input`.
    pub fn apply(&mut self, input: &str, upd: &RankOneUpdate) -> Result<()> {
        self.apply_factored(input, &upd.u, &upd.v)
    }

    /// Fires the trigger for a batched rank-k update to `input`.
    pub fn apply_batch(&mut self, input: &str, upd: &BatchUpdate) -> Result<()> {
        self.apply_factored(input, &upd.u, &upd.v)
    }

    /// Fires the trigger for an arbitrary factored update `ΔX = dU · dVᵀ`.
    pub fn apply_factored(&mut self, input: &str, du: &Matrix, dv: &Matrix) -> Result<()> {
        let trigger = self
            .trigger_program
            .trigger_for(input)
            .ok_or_else(|| RuntimeError::Unbound(format!("trigger for '{input}'")))?;
        let report = self.backend.fire_trigger(
            &mut self.env,
            &self.evaluator,
            trigger,
            du,
            dv,
            &self.exec,
        )?;
        self.sched.record(report);
        self.sparse.merge(report.sparse);
        self.serving_round(false);
        Ok(())
    }

    /// Fires ONE joint trigger for *simultaneous* factored updates to all
    /// dynamic inputs (§4.4 / Example 4.5); `updates` must cover every
    /// input exactly once.
    pub fn apply_joint(&mut self, updates: &[(&str, &Matrix, &Matrix)]) -> Result<()> {
        let joint = self
            .joint
            .as_ref()
            .ok_or_else(|| RuntimeError::Unbound("joint trigger for this program".to_string()))?;
        let report = self.backend.fire_joint_trigger(
            &mut self.env,
            &self.evaluator,
            joint,
            updates,
            &self.exec,
        )?;
        self.sched.record(report);
        self.sparse.merge(report.sparse);
        self.serving_round(false);
        Ok(())
    }

    /// Cumulative staged-scheduling counters: firings, statements
    /// executed, and the stages they collapsed into.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched
    }

    /// Zeroes the scheduling counters, returning the prior values.
    pub fn reset_sched_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.sched)
    }

    /// Cumulative sparse-execution counters: sparse vs dense fold path
    /// choices, compressed broadcast frames, and the rank/bytes they saved.
    pub fn sparse_stats(&self) -> SparseStats {
        self.sparse
    }

    /// Zeroes the sparse-execution counters, returning the prior values.
    pub fn reset_sparse_stats(&mut self) -> SparseStats {
        std::mem::take(&mut self.sparse)
    }

    /// Reads a maintained matrix.
    pub fn get(&self, name: &str) -> Result<&Matrix> {
        self.env.get(name)
    }

    /// The compiled trigger program (for inspection / codegen).
    pub fn trigger_program(&self) -> &TriggerProgram {
        &self.trigger_program
    }

    /// Inputs covered by the compiled joint trigger (§4.4), in declaration
    /// order; `None` when the program does not admit a joint form. A
    /// successful [`IncrementalView::apply_joint`] must supply exactly one
    /// update per listed input.
    pub fn joint_inputs(&self) -> Option<&[String]> {
        self.joint.as_ref().map(|j| j.inputs.as_slice())
    }

    /// The execution backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the execution backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Cumulative communication since construction or the last reset
    /// (always zero on [`LocalBackend`]).
    pub fn comm(&self) -> CommSnapshot {
        self.backend.comm()
    }

    /// Zeroes the communication counters, returning the prior snapshot.
    pub fn reset_comm(&self) -> CommSnapshot {
        self.backend.reset_comm()
    }

    /// Total bytes held by base matrices and views (incremental maintenance
    /// materializes *every* intermediate, which is exactly the memory
    /// overhead Table 3 quantifies), plus whatever the backend replicates
    /// (e.g. the partitioned copies on a cluster).
    pub fn memory_bytes(&self) -> usize {
        self.env.memory_bytes() + self.backend.extra_memory_bytes()
    }

    /// Snapshots all maintained state (inputs + views) into a standalone
    /// buffer — the operational requirement of §1's "long-lived data":
    /// incremental state must survive restarts, because rebuilding it means
    /// paying the full re-evaluation it exists to avoid.
    pub fn checkpoint(&self) -> Result<bytes::Bytes> {
        crate::checkpoint::save(&self.env)
    }

    /// Restores maintained state from a [`IncrementalView::checkpoint`]
    /// snapshot. The compiled trigger program is unchanged — only the
    /// matrices are replaced (and re-mirrored by the backend, e.g.
    /// repartitioned across the cluster). Fails (leaving the view
    /// untouched) on a corrupt snapshot.
    pub fn restore(&mut self, data: bytes::Bytes) -> Result<()> {
        let env = crate::checkpoint::restore(data)?;
        self.backend.materialize(&env)?;
        self.env = env;
        // A restore changes observable state: count it as a round and
        // republish unconditionally so readers never serve pre-restore
        // state at a post-restore epoch.
        self.serving_round(true);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateStream;
    use linview_compiler::parse::parse_program;
    use linview_expr::Expr;
    use linview_matrix::ApproxEq;

    fn powers_setup(n: usize) -> (Program, Catalog, Matrix) {
        let program = parse_program("B := A * A; C := B * B;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, 5, 0.8);
        (program, cat, a)
    }

    #[test]
    fn incremental_tracks_reevaluation_over_stream() {
        let n = 16;
        let (program, cat, a) = powers_setup(n);
        let mut reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).unwrap();
        let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 77);
        for _ in 0..20 {
            let upd = stream.next_rank_one();
            reeval.apply("A", &upd).unwrap();
            incr.apply("A", &upd).unwrap();
        }
        assert!(incr
            .get("C")
            .unwrap()
            .approx_eq(reeval.get("C").unwrap(), 1e-7));
    }

    #[test]
    fn batch_updates_agree_between_strategies() {
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).unwrap();
        let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 13);
        for zipf in [0.0, 2.0] {
            let batch = stream.next_batch_zipf(8, zipf).unwrap();
            reeval.apply_batch("A", &batch).unwrap();
            incr.apply_batch("A", &batch).unwrap();
        }
        assert!(incr
            .get("C")
            .unwrap()
            .approx_eq(reeval.get("C").unwrap(), 1e-7));
    }

    #[test]
    fn ols_with_inverse_is_maintained_incrementally() {
        // beta := inv(X' X) * X' Y — exercises hoisting + Sherman-Morrison.
        let n = 12;
        let program = parse_program("beta := inv(X' * X) * X' * Y;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("X", n, n);
        cat.declare("Y", n, 1);
        // Diagonally dominant X keeps X'X well conditioned.
        let x = Matrix::random_diag_dominant(n, 3);
        let y = Matrix::random_col(n, 4);
        let mut reeval =
            ReevalView::build(&program, &[("X", x.clone()), ("Y", y.clone())], &cat).unwrap();
        let mut incr = IncrementalView::build(&program, &[("X", x), ("Y", y)], &cat).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.001, 9);
        for _ in 0..10 {
            let upd = stream.next_rank_one();
            reeval.apply("X", &upd).unwrap();
            incr.apply("X", &upd).unwrap();
        }
        assert!(incr
            .get("beta")
            .unwrap()
            .approx_eq(reeval.get("beta").unwrap(), 1e-6));
    }

    #[test]
    fn incremental_uses_more_memory_than_reeval() {
        // The time/space trade-off of Table 2/3: INCR materializes every
        // intermediate view.
        let n = 16;
        let program = parse_program("B := A * A; C := B * B; D := C * C;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, 1, 0.5);
        let reeval = ReevalView::build(&program, &[("A", a.clone())], &cat).unwrap();
        let incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        assert_eq!(reeval.memory_bytes(), incr.memory_bytes());
        // Same set of views here (straight-line program materializes all);
        // the interesting comparison is vs a reeval that discards B, C —
        // covered in the apps crate where iterative models differ.
    }

    #[test]
    fn updates_to_second_input_use_their_own_trigger() {
        let n = 8;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        cat.declare("B", n, n);
        let mut program = Program::new();
        program.assign("C", Expr::var("A") * Expr::var("B"));
        let a = Matrix::random_spectral(n, 1, 0.7);
        let b = Matrix::random_spectral(n, 2, 0.7);
        let mut reeval =
            ReevalView::build(&program, &[("A", a.clone()), ("B", b.clone())], &cat).unwrap();
        let mut incr = IncrementalView::build(&program, &[("A", a), ("B", b)], &cat).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 31);
        for i in 0..6 {
            let upd = stream.next_rank_one();
            let target = if i % 2 == 0 { "A" } else { "B" };
            reeval.apply(target, &upd).unwrap();
            incr.apply(target, &upd).unwrap();
        }
        assert!(incr
            .get("C")
            .unwrap()
            .approx_eq(reeval.get("C").unwrap(), 1e-8));
    }

    #[test]
    fn checkpoint_restore_resumes_maintenance_exactly() {
        let n = 16;
        let (program, cat, a) = powers_setup(n);
        let mut view = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 61);
        for _ in 0..5 {
            view.apply("A", &stream.next_rank_one()).unwrap();
        }
        let snapshot = view.checkpoint().unwrap();
        // Deterministic continuation: record the next updates, apply them,
        // then restore and replay — end states must agree bit-for-bit.
        let next: Vec<_> = (0..5).map(|_| stream.next_rank_one()).collect();
        for u in &next {
            view.apply("A", u).unwrap();
        }
        let after = view.get("C").unwrap().clone();
        view.restore(snapshot).unwrap();
        for u in &next {
            view.apply("A", u).unwrap();
        }
        assert_eq!(view.get("C").unwrap(), &after);
    }

    #[test]
    fn restore_rejects_corrupt_snapshot() {
        let n = 8;
        let (program, cat, a) = powers_setup(n);
        let mut view = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let mut raw = view.checkpoint().unwrap().to_vec();
        raw[0] ^= 0xFF; // break the magic
        let before = view.get("C").unwrap().clone();
        assert!(view.restore(bytes::Bytes::from(raw)).is_err());
        assert_eq!(view.get("C").unwrap(), &before);
    }

    #[test]
    fn missing_trigger_is_an_error() {
        let n = 8;
        let (program, cat, a) = powers_setup(n);
        let mut incr = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let upd = RankOneUpdate::row_update(n, n, 0, 0.01, 1);
        assert!(incr.apply("Z", &upd).is_err());
    }
}
