//! Expression evaluation.
//!
//! The evaluator is *chain-order aware*: product trees are flattened and
//! re-associated with the DP of `linview_expr::chain` before execution. This
//! is load-bearing for the whole system — the factored delta `U Vᵀ B` is
//! only `O(kn²)` if evaluated as `U (Vᵀ B)`; the naive left-to-right order
//! would re-introduce the `O(nᵞ)` avalanche the paper's §4.2 eliminates.
//! [`Evaluator::with_chain_opt`] can disable the reordering to reproduce
//! that pathology in the ablation benchmarks.

use linview_expr::chain::{self, ChainTree};
use linview_expr::cost::CostModel;
use linview_expr::{Dim, Expr};
use linview_matrix::Matrix;

use crate::{Env, Result};

/// A configurable expression evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Cost model used for chain ordering decisions.
    pub model: CostModel,
    /// When false, products are evaluated left-to-right as written
    /// (ablation: demonstrates the avalanche cost).
    pub chain_opt: bool,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            model: CostModel::cubic(),
            chain_opt: true,
        }
    }
}

impl Evaluator {
    /// Default evaluator (cubic model, chain optimization on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluator with chain optimization toggled.
    pub fn with_chain_opt(chain_opt: bool) -> Self {
        Evaluator {
            chain_opt,
            ..Self::default()
        }
    }

    /// Evaluates `expr` against `env`.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Matrix> {
        match expr {
            Expr::Var(name) => Ok(env.get(name)?.clone()),
            Expr::Add(a, b) => Ok(self.eval(a, env)?.try_add(&self.eval(b, env)?)?),
            Expr::Sub(a, b) => Ok(self.eval(a, env)?.try_sub(&self.eval(b, env)?)?),
            Expr::Scale(s, e) => Ok(self.eval(e, env)?.scale(s.0)),
            Expr::Transpose(e) => Ok(self.eval(e, env)?.transpose()),
            Expr::Inverse(e) => Ok(self.eval(e, env)?.inverse()?),
            Expr::Identity(n) => Ok(Matrix::identity(*n)),
            Expr::Zero(r, c) => Ok(Matrix::zeros(*r, *c)),
            Expr::HStack(parts) => {
                let blocks = parts
                    .iter()
                    .map(|p| self.eval(p, env))
                    .collect::<Result<Vec<_>>>()?;
                let refs: Vec<&Matrix> = blocks.iter().collect();
                Ok(Matrix::hstack(&refs)?)
            }
            Expr::Mul(_, _) => self.eval_product(expr, env),
        }
    }

    /// Evaluates a product chain in the modeled-optimal association.
    fn eval_product(&self, expr: &Expr, env: &Env) -> Result<Matrix> {
        let factors = chain::flatten_product(expr);
        // Evaluate the leaves first (each may itself contain products, which
        // recurse through here).
        let values = factors
            .iter()
            .map(|f| self.eval(f, env))
            .collect::<Result<Vec<_>>>()?;
        if !self.chain_opt {
            let mut acc = values[0].clone();
            for v in &values[1..] {
                acc = acc.try_matmul(v)?;
            }
            return Ok(acc);
        }
        let dims: Vec<Dim> = values
            .iter()
            .map(|m| Dim::new(m.rows(), m.cols()))
            .collect();
        let plan = chain::optimal_order(&dims, &self.model);
        fn run(tree: &ChainTree, values: &[Matrix]) -> Result<Matrix> {
            Ok(match tree {
                ChainTree::Leaf(i) => values[*i].clone(),
                ChainTree::Node(l, r) => run(l, values)?.try_matmul(&run(r, values)?)?,
            })
        }
        run(&plan.tree, &values)
    }
}

/// Evaluates with the default evaluator (convenience).
pub fn eval(expr: &Expr, env: &Env) -> Result<Matrix> {
    Evaluator::new().eval(expr, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::flops;
    use linview_matrix::ApproxEq;

    fn env() -> Env {
        let mut e = Env::new();
        e.bind("A", Matrix::random_spectral(16, 1, 0.9));
        e.bind("u", Matrix::random_col(16, 2));
        e.bind("v", Matrix::random_col(16, 3));
        e
    }

    #[test]
    fn evaluates_arithmetic() {
        let env = env();
        let a = env.get("A").unwrap().clone();
        let e = Expr::var("A") + Expr::var("A").scale(2.0) - Expr::var("A");
        let r = eval(&e, &env).unwrap();
        assert!(r.approx_eq(&a.scale(2.0), 1e-12));
    }

    #[test]
    fn evaluates_transpose_inverse_identity() {
        let mut env = Env::new();
        env.bind("M", Matrix::random_diag_dominant(8, 5));
        let e = Expr::var("M").inv() * Expr::var("M");
        let r = eval(&e, &env).unwrap();
        assert!(r.approx_eq(&Matrix::identity(8), 1e-8));
        let t = eval(&Expr::var("M").t().t(), &env).unwrap();
        assert_eq!(&t, env.get("M").unwrap());
        assert_eq!(eval(&Expr::identity(3), &env).unwrap(), Matrix::identity(3));
        assert_eq!(eval(&Expr::zero(2, 5), &env).unwrap(), Matrix::zeros(2, 5));
    }

    #[test]
    fn evaluates_hstack() {
        let env = env();
        let e = Expr::HStack(vec![Expr::var("u"), Expr::var("v")]);
        let r = eval(&e, &env).unwrap();
        assert_eq!(r.shape(), (16, 2));
    }

    #[test]
    fn unbound_variable_errors() {
        let env = Env::new();
        assert!(matches!(
            eval(&Expr::var("nope"), &env),
            Err(crate::RuntimeError::Unbound(_))
        ));
    }

    #[test]
    fn chain_order_matches_naive_result() {
        let env = env();
        // u (vᵀ A): optimal and naive orders must agree numerically.
        let e = Expr::var("u") * Expr::var("v").t() * Expr::var("A");
        let opt = Evaluator::with_chain_opt(true).eval(&e, &env).unwrap();
        let naive = Evaluator::with_chain_opt(false).eval(&e, &env).unwrap();
        assert!(opt.approx_eq(&naive, 1e-9));
    }

    #[test]
    fn chain_order_saves_flops() {
        let mut env = Env::new();
        let n = 96;
        env.bind("A", Matrix::random_spectral(n, 1, 0.9));
        env.bind("u", Matrix::random_col(n, 2));
        env.bind("v", Matrix::random_col(n, 3));
        let e = Expr::var("u") * Expr::var("v").t() * Expr::var("A");

        flops::reset();
        let _ = Evaluator::with_chain_opt(true).eval(&e, &env).unwrap();
        let with_opt = flops::reset();
        let _ = Evaluator::with_chain_opt(false).eval(&e, &env).unwrap();
        let without = flops::reset();
        // Optimized: two O(n²) matvec-class products. Naive: outer product
        // then O(n³) square product — at least an order of magnitude more.
        assert!(
            with_opt * 10 <= without,
            "chain opt {with_opt} vs naive {without}"
        );
    }

    #[test]
    fn mixed_nested_products() {
        let env = env();
        // (A u)(vᵀ A) is an outer-product-of-vectors sandwich.
        let e = (Expr::var("A") * Expr::var("u")) * (Expr::var("v").t() * Expr::var("A"));
        let r = eval(&e, &env).unwrap();
        assert_eq!(r.shape(), (16, 16));
    }
}
