//! # linview-runtime
//!
//! The in-process execution backend for LINVIEW trigger programs: a named
//! matrix environment, a chain-order-aware expression evaluator, a trigger
//! executor (including the numeric Sherman–Morrison primitive), update
//! stream generators matching the paper's workload (§7), and the
//! re-evaluation / incremental view maintainers that every experiment
//! compares.
//!
//! ```
//! use linview_compiler::parse::parse_program;
//! use linview_expr::Catalog;
//! use linview_matrix::Matrix;
//! use linview_runtime::{IncrementalView, RankOneUpdate};
//!
//! let program = parse_program("B := A * A; C := B * B;").unwrap();
//! let mut cat = Catalog::new();
//! cat.declare("A", 8, 8);
//! let a = Matrix::random_spectral(8, 7, 0.5);
//! let mut view = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
//! let upd = RankOneUpdate::row_update(8, 8, 3, 0.01, 42);
//! view.apply("A", &upd).unwrap();
//! assert_eq!(view.get("C").unwrap().shape(), (8, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod checkpoint;
pub mod engine;
mod env;
mod error;
mod eval;
mod exec;
pub mod snapshot;
pub mod stats;
pub mod updates;
mod view;
pub mod wal;

pub use backend::{
    DistBackend, ExecBackend, FrameBackend, LocalBackend, SchedSnapshot, SocketBackend,
    ThreadedBackend,
};
pub use checkpoint::CheckpointError;
pub use engine::{DiskRecovery, EngineStats, FlushPolicy, MaintenanceEngine, RecoveryStats};
pub use env::Env;
pub use error::RuntimeError;
pub use eval::{eval, Evaluator};
pub use exec::{
    fire_joint_trigger, fire_trigger, fire_trigger_with_options, sherman_morrison, woodbury,
    ExecOptions, FiringReport, InversePrimitive, SchedStats, SparseStats, StageDelta,
};
pub use linview_dist::CommSnapshot;
pub use snapshot::{
    percentile_ns, ReaderPool, ReaderReport, SnapshotPublisher, ViewHandle, ViewSnapshot,
};
pub use updates::{BatchUpdate, RankOneUpdate, UpdateStream, Zipf};
pub use view::{IncrementalView, ReevalView};
pub use wal::{FiringRecord, WalFile, WalRecovery};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
