//! Environment checkpointing.
//!
//! Incremental maintenance is stateful: the materialized views *are* the
//! computation. A production deployment needs to persist and restore that
//! state across restarts (the paper's streams are "long-lived data",
//! unlike window-bounded stream processors — §1). This module provides a
//! compact, versioned binary snapshot of an [`Env`] built on the `bytes`
//! crate, with integrity checks on restore.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LNVW" | u32 version | u32 entry_count |
//!   { u32 name_len | name utf8 | u64 rows | u64 cols | rows·cols f64 }*
//! ```
//!
//! [`restore`] treats its input as untrusted: every length and shape field
//! is validated with checked arithmetic *before* any allocation sized by
//! it, so a corrupt or hostile snapshot errors — it can neither panic nor
//! trigger an enormous allocation. Failures surface as
//! [`RuntimeError::Checkpoint`] carrying a [`CheckpointError`] in the
//! `source()` chain.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_matrix::Matrix;

use crate::{Env, Result, RuntimeError};

const MAGIC: &[u8; 4] = b"LNVW";
const VERSION: u32 = 1;

/// Every entry spends at least this many bytes after the count field
/// (empty name: 4-byte name length + 8-byte rows + 8-byte cols), so an
/// `entry_count` claiming more entries than `remaining / 20` is rejected
/// before the entry loop runs.
const MIN_ENTRY_BYTES: u64 = 20;

/// Why a checkpoint could not be saved, or a snapshot failed its
/// integrity checks on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    message: String,
}

impl CheckpointError {
    pub(crate) fn new(message: impl Into<String>) -> CheckpointError {
        CheckpointError {
            message: message.into(),
        }
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CheckpointError {}

fn corrupt(msg: impl fmt::Display) -> RuntimeError {
    RuntimeError::Checkpoint(CheckpointError::new(format!("corrupt checkpoint: {msg}")))
}

/// Serializes every binding of `env` into a standalone byte buffer.
///
/// Errors (instead of silently truncating the `u32` header fields) if the
/// environment holds more than `u32::MAX` bindings or a name longer than
/// `u32::MAX` bytes — a snapshot that cannot faithfully round-trip is
/// refused at save time, not discovered as corruption on restore.
pub fn save(env: &Env) -> Result<Bytes> {
    let count = u32::try_from(env.len()).map_err(|_| {
        RuntimeError::Checkpoint(CheckpointError::new(
            "environment has too many bindings for a v1 checkpoint",
        ))
    })?;
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(count);
    for (name, m) in env.iter() {
        let name_len = u32::try_from(name.len()).map_err(|_| {
            RuntimeError::Checkpoint(CheckpointError::new(format!(
                "binding name of {} bytes does not fit a v1 checkpoint",
                name.len()
            )))
        })?;
        buf.put_u32_le(name_len);
        buf.put_slice(name.as_bytes());
        buf.put_u64_le(m.rows() as u64);
        buf.put_u64_le(m.cols() as u64);
        for &x in m.as_slice() {
            buf.put_f64_le(x);
        }
    }
    Ok(buf.freeze())
}

/// Restores an environment from a snapshot produced by [`save`].
///
/// The input is untrusted: any mutation of a valid snapshot — truncation,
/// bit flips, hostile length or shape headers — yields a
/// [`RuntimeError::Checkpoint`], never a panic or an
/// attacker-sized allocation.
pub fn restore(mut data: Bytes) -> Result<Env> {
    if data.remaining() < 12 {
        return Err(corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let count = data.get_u32_le() as usize;
    // Reject an oversized entry count before looping: each entry costs at
    // least MIN_ENTRY_BYTES, so a count the payload cannot possibly hold
    // is corruption, caught without touching the entries.
    if (count as u64).saturating_mul(MIN_ENTRY_BYTES) > data.remaining() as u64 {
        return Err(corrupt("entry count exceeds payload"));
    }
    let mut env = Env::new();
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(corrupt("truncated entry header"));
        }
        let name_len = data.get_u32_le() as usize;
        let entry_header = name_len
            .checked_add(16)
            .ok_or_else(|| corrupt("name length overflow"))?;
        if data.remaining() < entry_header {
            return Err(corrupt("truncated entry"));
        }
        let name_bytes = data.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| corrupt("non-utf8 name"))?
            .to_string();
        let rows = data.get_u64_le() as usize;
        let cols = data.get_u64_le() as usize;
        // Both multiplications are checked: `rows·cols` and the payload
        // byte count can each overflow `usize` on hostile headers (e.g.
        // rows = 2^62, cols = 2 passes the first check but wraps `·8`).
        let entries = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("shape overflow"))?;
        let payload_bytes = entries
            .checked_mul(8)
            .ok_or_else(|| corrupt("payload size overflow"))?;
        if data.remaining() < payload_bytes {
            return Err(corrupt("truncated matrix payload"));
        }
        // `entries` is now bounded by the buffer length, so this
        // allocation is at most the snapshot's own size.
        let mut values = Vec::with_capacity(entries);
        for _ in 0..entries {
            values.push(data.get_f64_le());
        }
        let m = Matrix::from_vec(rows, cols, values).map_err(RuntimeError::Matrix)?;
        env.bind(name, m);
    }
    if data.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> Env {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(6, 6, 1));
        env.bind("beta", Matrix::random_uniform(6, 1, 2));
        env.bind("P16", Matrix::random_uniform(6, 6, 3));
        env
    }

    #[test]
    fn save_restore_roundtrip() {
        let env = sample_env();
        let snapshot = save(&env).unwrap();
        let back = restore(snapshot).unwrap();
        assert_eq!(back.len(), env.len());
        for (name, m) in env.iter() {
            assert_eq!(back.get(name).unwrap(), m, "binding {name} differs");
        }
    }

    #[test]
    fn empty_env_roundtrips() {
        let env = Env::new();
        let back = restore(save(&env).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut raw = BytesMut::from(&save(&sample_env()).unwrap()[..]);
        raw[0] = b'X';
        assert!(restore(raw.freeze()).is_err());
        let mut raw2 = BytesMut::from(&save(&sample_env()).unwrap()[..]);
        raw2[4] = 99;
        assert!(restore(raw2.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let full = save(&sample_env()).unwrap();
        for cut in [0usize, 3, 11, 20, full.len() - 1] {
            let truncated = full.slice(0..cut);
            assert!(restore(truncated).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = BytesMut::from(&save(&sample_env()).unwrap()[..]);
        raw.put_u8(0);
        assert!(restore(raw.freeze()).is_err());
    }

    #[test]
    fn corruption_reports_as_checkpoint_error_with_source_chain() {
        let mut raw = BytesMut::from(&save(&sample_env()).unwrap()[..]);
        raw[0] = b'X';
        let err = restore(raw.freeze()).unwrap_err();
        let RuntimeError::Checkpoint(inner) = &err else {
            panic!("expected RuntimeError::Checkpoint, got {err:?}");
        };
        assert!(inner.message().contains("bad magic"));
        // The CLI renderer walks source(): the label is short, the detail
        // hangs off the chain.
        use std::error::Error;
        let source = err.source().expect("checkpoint errors carry a source");
        assert!(source.to_string().contains("corrupt checkpoint"));
    }

    #[test]
    fn hostile_shape_header_cannot_overflow_the_length_check() {
        // One entry claiming rows = 2^62, cols = 2: `rows·cols = 2^63`
        // passes a checked multiply, but `entries * 8` wraps to 0 in
        // unchecked arithmetic — the historical bug let this through the
        // length check and into a capacity-2^63 allocation.
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u32_le(VERSION);
        raw.put_u32_le(1);
        raw.put_u32_le(1);
        raw.put_u8(b'A');
        raw.put_u64_le(1u64 << 62);
        raw.put_u64_le(2);
        let err = restore(raw.freeze()).unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err:?}");

        // And rows·cols itself overflowing is likewise a clean error.
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u32_le(VERSION);
        raw.put_u32_le(1);
        raw.put_u32_le(1);
        raw.put_u8(b'A');
        raw.put_u64_le(u64::MAX);
        raw.put_u64_le(u64::MAX);
        assert!(restore(raw.freeze()).is_err());
    }

    #[test]
    fn absurd_entry_count_is_rejected_before_the_entry_loop() {
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u32_le(VERSION);
        raw.put_u32_le(u32::MAX);
        let err = restore(raw.freeze()).unwrap_err();
        let RuntimeError::Checkpoint(inner) = err else {
            panic!("expected a checkpoint error");
        };
        assert!(inner.message().contains("entry count"));
    }

    #[test]
    fn resumed_maintenance_continues_correctly() {
        // The operational scenario: snapshot mid-stream, restart, continue.
        use linview_compiler::parse::parse_program;
        use linview_expr::Catalog;

        let program = parse_program("B := A * A; C := B * B;").unwrap();
        let n = 12;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, 9, 0.8);
        let mut env = Env::new();
        env.bind("A", a.clone());
        let ev = crate::Evaluator::new();
        for stmt in program.statements() {
            let value = ev.eval(&stmt.expr, &env).unwrap();
            env.bind(stmt.target.clone(), value);
        }
        let tp = linview_compiler::compile(
            &program,
            &["A"],
            &cat,
            &linview_compiler::CompileOptions::default(),
        )
        .unwrap();
        let trigger = &tp.triggers[0];
        let upd1 = crate::RankOneUpdate::row_update(n, n, 2, 0.01, 4);
        let upd2 = crate::RankOneUpdate::row_update(n, n, 7, 0.01, 5);

        // Apply upd1, snapshot, then continue with upd2 on the restored env.
        crate::fire_trigger(&mut env, &ev, trigger, &upd1.u, &upd1.v).unwrap();
        let snapshot = save(&env).unwrap();
        let mut restored = restore(snapshot).unwrap();
        crate::fire_trigger(&mut restored, &ev, trigger, &upd2.u, &upd2.v).unwrap();

        // Reference: both updates without the snapshot detour.
        crate::fire_trigger(&mut env, &ev, trigger, &upd2.u, &upd2.v).unwrap();
        assert_eq!(restored.get("C").unwrap(), env.get("C").unwrap());
    }
}
