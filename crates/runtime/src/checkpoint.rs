//! Environment checkpointing.
//!
//! Incremental maintenance is stateful: the materialized views *are* the
//! computation. A production deployment needs to persist and restore that
//! state across restarts (the paper's streams are "long-lived data",
//! unlike window-bounded stream processors — §1). This module provides a
//! compact, versioned binary snapshot of an [`Env`] built on the `bytes`
//! crate, with integrity checks on restore.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LNVW" | u32 version | u32 entry_count |
//!   { u32 name_len | name utf8 | u64 rows | u64 cols | rows·cols f64 }*
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_matrix::Matrix;

use crate::{Env, Result, RuntimeError};

const MAGIC: &[u8; 4] = b"LNVW";
const VERSION: u32 = 1;

/// Serializes every binding of `env` into a standalone byte buffer.
pub fn save(env: &Env) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(env.len() as u32);
    for (name, m) in env.iter() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u64_le(m.rows() as u64);
        buf.put_u64_le(m.cols() as u64);
        for &x in m.as_slice() {
            buf.put_f64_le(x);
        }
    }
    buf.freeze()
}

/// Restores an environment from a snapshot produced by [`save`].
pub fn restore(mut data: Bytes) -> Result<Env> {
    let fail = |msg: &str| RuntimeError::Unbound(format!("corrupt checkpoint: {msg}"));
    if data.remaining() < 12 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }
    let count = data.get_u32_le() as usize;
    let mut env = Env::new();
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(fail("truncated entry header"));
        }
        let name_len = data.get_u32_le() as usize;
        if data.remaining() < name_len + 16 {
            return Err(fail("truncated entry"));
        }
        let name_bytes = data.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| fail("non-utf8 name"))?
            .to_string();
        let rows = data.get_u64_le() as usize;
        let cols = data.get_u64_le() as usize;
        let entries = rows
            .checked_mul(cols)
            .ok_or_else(|| fail("shape overflow"))?;
        if data.remaining() < entries * 8 {
            return Err(fail("truncated matrix payload"));
        }
        let mut values = Vec::with_capacity(entries);
        for _ in 0..entries {
            values.push(data.get_f64_le());
        }
        let m = Matrix::from_vec(rows, cols, values).map_err(RuntimeError::Matrix)?;
        env.bind(name, m);
    }
    if data.has_remaining() {
        return Err(fail("trailing bytes"));
    }
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> Env {
        let mut env = Env::new();
        env.bind("A", Matrix::random_uniform(6, 6, 1));
        env.bind("beta", Matrix::random_uniform(6, 1, 2));
        env.bind("P16", Matrix::random_uniform(6, 6, 3));
        env
    }

    #[test]
    fn save_restore_roundtrip() {
        let env = sample_env();
        let snapshot = save(&env);
        let back = restore(snapshot).unwrap();
        assert_eq!(back.len(), env.len());
        for (name, m) in env.iter() {
            assert_eq!(back.get(name).unwrap(), m, "binding {name} differs");
        }
    }

    #[test]
    fn empty_env_roundtrips() {
        let env = Env::new();
        let back = restore(save(&env)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut raw = BytesMut::from(&save(&sample_env())[..]);
        raw[0] = b'X';
        assert!(restore(raw.freeze()).is_err());
        let mut raw2 = BytesMut::from(&save(&sample_env())[..]);
        raw2[4] = 99;
        assert!(restore(raw2.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let full = save(&sample_env());
        for cut in [0usize, 3, 11, 20, full.len() - 1] {
            let truncated = full.slice(0..cut);
            assert!(restore(truncated).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = BytesMut::from(&save(&sample_env())[..]);
        raw.put_u8(0);
        assert!(restore(raw.freeze()).is_err());
    }

    #[test]
    fn resumed_maintenance_continues_correctly() {
        // The operational scenario: snapshot mid-stream, restart, continue.
        use linview_compiler::parse::parse_program;
        use linview_expr::Catalog;

        let program = parse_program("B := A * A; C := B * B;").unwrap();
        let n = 12;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let a = Matrix::random_spectral(n, 9, 0.8);
        let mut env = Env::new();
        env.bind("A", a.clone());
        let ev = crate::Evaluator::new();
        for stmt in program.statements() {
            let value = ev.eval(&stmt.expr, &env).unwrap();
            env.bind(stmt.target.clone(), value);
        }
        let tp = linview_compiler::compile(
            &program,
            &["A"],
            &cat,
            &linview_compiler::CompileOptions::default(),
        )
        .unwrap();
        let trigger = &tp.triggers[0];
        let upd1 = crate::RankOneUpdate::row_update(n, n, 2, 0.01, 4);
        let upd2 = crate::RankOneUpdate::row_update(n, n, 7, 0.01, 5);

        // Apply upd1, snapshot, then continue with upd2 on the restored env.
        crate::fire_trigger(&mut env, &ev, trigger, &upd1.u, &upd1.v).unwrap();
        let snapshot = save(&env);
        let mut restored = restore(snapshot).unwrap();
        crate::fire_trigger(&mut restored, &ev, trigger, &upd2.u, &upd2.v).unwrap();

        // Reference: both updates without the snapshot detour.
        crate::fire_trigger(&mut env, &ev, trigger, &upd2.u, &upd2.v).unwrap();
        assert_eq!(restored.get("C").unwrap(), env.get("C").unwrap());
    }
}
