//! Entrywise arithmetic, scaling, transpose, and the operator impls.

use crate::{flops, Matrix, MatrixError, Result};
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

impl Matrix {
    /// Entrywise sum. Errors on shape mismatch.
    pub fn try_add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        flops::add(self.len() as u64);
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Entrywise difference. Errors on shape mismatch.
    pub fn try_sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        flops::add(self.len() as u64);
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// In-place entrywise accumulation `self += other`.
    pub fn add_assign_from(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        flops::add(self.len() as u64);
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place entrywise subtraction `self -= other`.
    pub fn sub_assign_from(&mut self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch {
                op: "sub_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        flops::add(self.len() as u64);
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        Ok(())
    }

    /// Scalar multiple `λ · self`.
    pub fn scale(&self, lambda: f64) -> Matrix {
        flops::add(self.len() as u64);
        self.map(|x| lambda * x)
    }

    /// In-place scalar multiple.
    pub fn scale_inplace(&mut self, lambda: f64) {
        flops::add(self.len() as u64);
        self.map_inplace(|x| lambda * x);
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for rb in (0..r).step_by(B) {
            for cb in (0..c).step_by(B) {
                for i in rb..(rb + B).min(r) {
                    for j in cb..(cb + B).min(c) {
                        out.set(j, i, self.get(i, j));
                    }
                }
            }
        }
        out
    }

    /// Rank-1 in-place update `self += u vᵀ` where `u` is `n×1` and `v` is `m×1`.
    ///
    /// This is the primitive applied by every trigger update statement
    /// (`X += u_A v_Aᵀ` in Example 4.6 of the paper); it costs `O(nm)`.
    pub fn add_outer(&mut self, u: &Matrix, v: &Matrix) -> Result<()> {
        if u.cols() != 1 || v.cols() != 1 || u.rows() != self.rows() || v.rows() != self.cols() {
            return Err(MatrixError::DimMismatch {
                op: "add_outer",
                lhs: u.shape(),
                rhs: v.shape(),
            });
        }
        flops::add((self.len() * 2) as u64);
        for r in 0..self.rows() {
            let ur = u.get(r, 0);
            if ur == 0.0 {
                continue;
            }
            for (x, &vc) in self.row_mut(r).iter_mut().zip(v.as_slice()) {
                *x += ur * vc;
            }
        }
        Ok(())
    }
}

macro_rules! binary_op {
    ($trait:ident, $method:ident, $try:ident) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Result<Matrix>;
            fn $method(self, rhs: &Matrix) -> Result<Matrix> {
                self.$try(rhs)
            }
        }
        impl $trait<Matrix> for Matrix {
            type Output = Result<Matrix>;
            fn $method(self, rhs: Matrix) -> Result<Matrix> {
                self.$try(&rhs)
            }
        }
    };
}

binary_op!(Add, add, try_add);
binary_op!(Sub, sub, try_sub);

impl Mul<&Matrix> for &Matrix {
    type Output = Result<Matrix>;
    fn mul(self, rhs: &Matrix) -> Result<Matrix> {
        self.try_matmul(rhs)
    }
}

impl Mul<Matrix> for Matrix {
    type Output = Result<Matrix>;
    fn mul(self, rhs: Matrix) -> Result<Matrix> {
        self.try_matmul(&rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_assign_from(rhs).expect("AddAssign shape mismatch");
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.sub_assign_from(rhs).expect("SubAssign shape mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = m2();
        let b = a.scale(2.0);
        let s = a.try_add(&b).unwrap();
        assert_eq!(s.get(1, 1), 12.0);
        let d = s.try_sub(&b).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn add_rejects_mismatch() {
        let err = m2().try_add(&Matrix::zeros(3, 2)).unwrap_err();
        assert!(matches!(err, MatrixError::DimMismatch { op: "add", .. }));
    }

    #[test]
    fn assign_ops() {
        let mut a = m2();
        let b = m2();
        a += &b;
        assert_eq!(a.get(0, 0), 2.0);
        a -= &b;
        assert_eq!(a, m2());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_large_blocked_path() {
        let n = 70;
        let a = Matrix::from_vec(n, n, (0..n * n).map(|i| i as f64).collect()).unwrap();
        let t = a.transpose();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(t.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn scale_and_neg() {
        let a = m2();
        assert_eq!((&a * 2.0).get(0, 1), 4.0);
        assert_eq!((-&a).get(1, 0), -3.0);
    }

    #[test]
    fn add_outer_matches_explicit_product() {
        let mut a = Matrix::zeros(3, 2);
        let u = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        let v = Matrix::col_vector(&[10.0, 20.0]);
        a.add_outer(&u, &v).unwrap();
        assert_eq!(a.get(2, 1), 60.0);
        assert_eq!(a.get(0, 0), 10.0);
        assert!(a.add_outer(&v, &u).is_err());
    }

    #[test]
    fn ops_count_flops() {
        let before = crate::flops::read();
        let _ = m2().try_add(&m2()).unwrap();
        assert!(crate::flops::read() >= before + 4);
    }
}
