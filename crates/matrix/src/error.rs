use std::fmt;

/// Errors produced by matrix construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the attempted operation.
    DimMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// LU factorization hit a zero (or numerically negligible) pivot.
    Singular {
        /// Index of the pivot column where elimination failed.
        pivot: usize,
    },
    /// Construction from rows/values with inconsistent lengths.
    RaggedRows {
        /// Index of the first row whose length disagrees.
        row: usize,
        /// Expected row length.
        expected: usize,
        /// Observed row length.
        got: usize,
    },
    /// An empty matrix (zero rows or columns) where data was required.
    Empty,
    /// Index out of bounds.
    OutOfBounds {
        /// Requested index.
        index: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// An iterative decomposition exhausted its sweep budget.
    DidNotConverge {
        /// Number of sweeps attempted.
        sweeps: usize,
    },
    /// A kernel name (from `LINVIEW_GEMM` or `--gemm`) matched no
    /// [`GemmKernel`](crate::GemmKernel).
    UnknownKernel {
        /// The unrecognized name, as supplied (trimmed).
        name: String,
    },
    /// A thread budget (from `LINVIEW_THREADS` or `--threads`) was zero or
    /// not a number.
    InvalidThreadBudget {
        /// The invalid value, as supplied (trimmed).
        value: String,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: ({}x{}) vs ({}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::NotSquare { shape } => {
                write!(f, "square matrix required, got ({}x{})", shape.0, shape.1)
            }
            MatrixError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at column {pivot})")
            }
            MatrixError::RaggedRows { row, expected, got } => write!(
                f,
                "ragged rows: row {row} has length {got}, expected {expected}"
            ),
            MatrixError::Empty => write!(f, "empty matrix not allowed here"),
            MatrixError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for ({}x{})",
                index.0, index.1, shape.0, shape.1
            ),
            MatrixError::DidNotConverge { sweeps } => {
                write!(f, "iteration did not converge after {sweeps} sweeps")
            }
            MatrixError::UnknownKernel { name } => {
                write!(
                    f,
                    "unknown GEMM kernel {name:?} (valid: naive, blocked, packed, \
                     packed-fma, strassen)"
                )
            }
            MatrixError::InvalidThreadBudget { value } => {
                write!(f, "invalid thread budget {value:?} (need an integer >= 1)")
            }
        }
    }
}

impl std::error::Error for MatrixError {}
