//! Cholesky factorization with rank-1 updates/downdates.
//!
//! §4.2 of the paper: "Other work [13, 30] investigates rank-1 updates in
//! different matrix factorizations, like SVD and Cholesky decomposition.
//! We can further use these new primitives to enrich our language" — this
//! module implements that extension. [`Cholesky::update`] maintains the
//! factor of `A + σ·v vᵀ` in `O(n²)` (the hyperbolic-rotation algorithm of
//! Seeger's technical report), versus `O(nᵞ)` refactorization.

use crate::{flops, Matrix, MatrixError, Result};

/// Diagonal entries below this are treated as a loss of positive
/// definiteness.
const PD_TOL: f64 = 1e-12;

/// A lower-triangular Cholesky factor `A = L·Lᵀ` of a symmetric positive
/// definite matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive definite matrix. `O(n³/3)`.
    ///
    /// Returns [`MatrixError::Singular`] when a pivot collapses (the input
    /// is not positive definite); symmetry is the caller's contract and is
    /// checked in debug builds only.
    pub fn factorize(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(MatrixError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        debug_assert!(
            {
                let mut sym = true;
                'outer: for i in 0..n {
                    for j in 0..i {
                        if (a.get(i, j) - a.get(j, i)).abs() > 1e-9 * a.max_abs().max(1.0) {
                            sym = false;
                            break 'outer;
                        }
                    }
                }
                sym
            },
            "Cholesky input must be symmetric"
        );
        flops::add((n * n * n / 3) as u64);
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= PD_TOL {
                        return Err(MatrixError::Singular { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Reconstructs `A = L·Lᵀ` (tests/diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.l
            .try_matmul(&self.l.transpose())
            .expect("square factor")
    }

    /// Rank-1 **update**: replaces the factored matrix by `A + v·vᵀ`.
    /// `O(n²)` via Givens-style rotations; always succeeds for finite `v`
    /// (an SPD matrix plus a positive semidefinite rank-1 term stays SPD).
    pub fn update(&mut self, v: &Matrix) -> Result<()> {
        self.rank_one(v, 1.0)
    }

    /// Rank-1 **downdate**: replaces the factored matrix by `A − v·vᵀ`.
    /// Fails with [`MatrixError::Singular`] if the result would lose
    /// positive definiteness.
    pub fn downdate(&mut self, v: &Matrix) -> Result<()> {
        self.rank_one(v, -1.0)
    }

    fn rank_one(&mut self, v: &Matrix, sigma: f64) -> Result<()> {
        let n = self.order();
        if v.cols() != 1 || v.rows() != n {
            return Err(MatrixError::DimMismatch {
                op: "cholesky_rank_one",
                lhs: (n, n),
                rhs: v.shape(),
            });
        }
        flops::add((6 * n * n) as u64);
        let mut w = v.col(0);
        // On failure the factor must be left untouched: work on a copy.
        let mut l = self.l.clone();
        for k in 0..n {
            let lkk = l.get(k, k);
            let r2 = lkk * lkk + sigma * w[k] * w[k];
            if r2 <= PD_TOL {
                return Err(MatrixError::Singular { pivot: k });
            }
            let r = r2.sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            l.set(k, k, r);
            // Indexed on purpose: each step reads/writes both `l` and `w`
            // at row `i`; an iterator form would need split borrows.
            #[allow(clippy::needless_range_loop)]
            for i in (k + 1)..n {
                let lik = (l.get(i, k) + sigma * s * w[i]) / c;
                l.set(i, k, lik);
                w[i] = c * w[i] - s * lik;
            }
        }
        self.l = l;
        Ok(())
    }

    /// Solves `A·x = b` using the factor (forward then backward
    /// substitution), `O(n²·ncols)`.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(MatrixError::DimMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        flops::add((2 * n * n * b.cols()) as u64);
        let mut x = b.clone();
        // L·y = b.
        for i in 0..n {
            for k in 0..i {
                let f = self.l.get(i, k);
                for c in 0..x.cols() {
                    let v = x.get(i, c) - f * x.get(k, c);
                    x.set(i, c, v);
                }
            }
            let d = self.l.get(i, i);
            for c in 0..x.cols() {
                x.set(i, c, x.get(i, c) / d);
            }
        }
        // Lᵀ·x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let f = self.l.get(k, i);
                for c in 0..x.cols() {
                    let v = x.get(i, c) - f * x.get(k, c);
                    x.set(i, c, v);
                }
            }
            let d = self.l.get(i, i);
            for c in 0..x.cols() {
                x.set(i, c, x.get(i, c) / d);
            }
        }
        Ok(x)
    }

    /// Log-determinant of the factored matrix: `2·Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.order())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Builds a random symmetric positive definite matrix (for tests/benches):
/// `M Mᵀ + n·I`.
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let m = Matrix::random_uniform(n, n, seed);
    let mut a = m.try_matmul(&m.transpose()).expect("square product");
    for i in 0..n {
        a.set(i, i, a.get(i, i) + n as f64);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn factorize_reconstructs() {
        let a = random_spd(12, 1);
        let ch = Cholesky::factorize(&a).unwrap();
        assert!(ch.reconstruct().approx_eq(&a, 1e-9));
        // Factor is lower triangular.
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert_eq!(ch.factor().get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn rejects_non_spd_and_rectangular() {
        let mut a = random_spd(4, 2);
        a.set(0, 0, -5.0);
        a.set(1, 1, -5.0);
        assert!(Cholesky::factorize(&a).is_err());
        assert!(Cholesky::factorize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn update_matches_refactorization() {
        let a = random_spd(10, 3);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let v = Matrix::random_col(10, 4);
        ch.update(&v).unwrap();
        let mut a_new = a;
        a_new
            .add_assign_from(&Matrix::outer(&v, &v).unwrap())
            .unwrap();
        let direct = Cholesky::factorize(&a_new).unwrap();
        assert!(ch.reconstruct().approx_eq(&direct.reconstruct(), 1e-9));
        assert!(ch.factor().approx_eq(direct.factor(), 1e-8));
    }

    #[test]
    fn downdate_reverses_update() {
        let a = random_spd(8, 5);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let original = ch.factor().clone();
        let v = Matrix::random_col(8, 6);
        ch.update(&v).unwrap();
        ch.downdate(&v).unwrap();
        assert!(ch.factor().approx_eq(&original, 1e-8));
    }

    #[test]
    fn downdate_that_breaks_pd_fails_and_preserves_factor() {
        let a = Matrix::identity(4);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let before = ch.factor().clone();
        let big = Matrix::col_vector(&[2.0, 0.0, 0.0, 0.0]); // I - 4 e1 e1' is indefinite
        assert!(ch.downdate(&big).is_err());
        assert_eq!(ch.factor(), &before);
    }

    #[test]
    fn solve_matches_lu() {
        let a = random_spd(10, 7);
        let b = Matrix::random_uniform(10, 3, 8);
        let ch = Cholesky::factorize(&a).unwrap();
        let x1 = ch.solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        assert!(x1.approx_eq(&x2, 1e-8));
        assert!(ch.solve(&Matrix::zeros(4, 1)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = random_spd(8, 9);
        let ch = Cholesky::factorize(&a).unwrap();
        let det = a.det().unwrap();
        assert!((ch.log_det() - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn update_rejects_bad_shapes() {
        let a = random_spd(6, 10);
        let mut ch = Cholesky::factorize(&a).unwrap();
        assert!(ch.update(&Matrix::zeros(5, 1)).is_err());
        assert!(ch.update(&Matrix::zeros(6, 2)).is_err());
    }

    #[test]
    fn sequence_of_updates_tracks_refactorization() {
        let a = random_spd(8, 11);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let mut a_ref = a;
        for seed in 0..10u64 {
            let v = Matrix::random_col(8, 100 + seed).scale(0.5);
            ch.update(&v).unwrap();
            a_ref
                .add_assign_from(&Matrix::outer(&v, &v).unwrap())
                .unwrap();
        }
        let direct = Cholesky::factorize(&a_ref).unwrap();
        assert!(ch.factor().approx_eq(direct.factor(), 1e-7));
    }
}
