//! Skinny rank-k fast path — the shape delta maintenance actually runs.
//!
//! LINVIEW's whole premise is that a view update is not a fresh `O(nᵞ)`
//! product but an `O(kn²)` fold `X += U·Vᵀ` with `k ≤ 16` — so the hot
//! multiply the engine performs is `n×k · k×n`, not square. The general
//! packed nest is mis-tuned for it: with depth `k`, the `KC`-deep packing
//! passes rewrite both operands (and zero-pad the ragged panels) to feed
//! microkernel calls whose dot products are only `k` long, so packing
//! overhead dominates the arithmetic — and the fold shape pays the
//! `n×n` temporary *twice more* (once to materialize it, once to add it).
//!
//! This module runs those shapes directly from the row-major operands:
//!
//! * **row×column register tiling** — [`IR`]`×`[`JB`] output tiles hold
//!   their accumulators in registers while the whole (tiny) `k` loop
//!   runs; `IR` independent rows per tile give the adders enough
//!   independent chains to hide FP latency, and each `B` row block is
//!   loaded once per `IR` rows instead of once per row;
//! * **write-once output** — [`rank_k_matmul`] *stores* each finished
//!   tile (no read-modify-write of the zeroed output), and
//!   [`rank_k_fold`] adds tiles straight into the target, skipping the
//!   `n×n` temporary of the GEMM-then-add fold entirely — at `n = 2048`
//!   the fold is memory-bound, and this removes two thirds of the
//!   traffic;
//! * **branch-free main tiles** — the hot `IR×JB` tile runs the dense
//!   multiply unconditionally (like the packed microkernel, whose padded
//!   lanes are zero); only the scalar ragged edges keep the
//!   zero-skip, because genuinely sparse factors never reach this kernel
//!   — the density gate in `sparsity::fold_low_rank` routes them to the
//!   row-replay fold first;
//! * **work stealing** — above the parallel threshold, row chunks are
//!   scheduled on the pool's stealing queue; chunks own disjoint output
//!   rows, so every schedule is bit-identical.
//!
//! **Bit-identity.** The exact variant accumulates each output element
//! over `p = 0..k` in ascending order with plain mul-then-add into a
//! zero-initialized register, then stores it (matmul) or adds it onto the
//! target once (fold) — the same per-element chain as the naive, blocked
//! and packed kernels followed by an elementwise add, so the fast path is
//! `==`-identical to the nest (and to GEMM-then-add) it replaces
//! (asserted by the differential suite via [`force_general_nest`]). The
//! fused variant (`PackedFma`) replaces mul-then-add with `f64::mul_add`,
//! matching the FMA microkernel's contract: not bit-comparable, ≤ 1e-10
//! of the Kahan oracle.
//!
//! Shape eligibility lives in [`eligible`]; dispatch happens inside the
//! packed kernel family (`gemm::packed_matmul`) and the dense fold
//! (`sparsity::fold_low_rank`), so `matmul_with`, `try_matmul`, the
//! backends' `ApplyDelta` folds and `runtime::exec`'s heavy-stage
//! products all inherit the fast path automatically.
//!
//! [`force_general_nest`]: crate::gemm::force_general_nest

use std::sync::Mutex;

use crate::gemm::{self, Fuse};
use crate::{pool, Matrix};

/// Largest inner dimension the fast path claims. Matches the engine's
/// delta-rank ceiling: wider products amortize packing well enough that
/// the general nest wins.
pub const RANK_K_MAX_K: usize = 16;

/// Register-tile width: accumulators for one `JB`-wide output block are
/// two f64 ymm registers.
const JB: usize = 8;

/// Output rows per register tile: `IR · JB/4 = 12` ymm accumulators (the
/// same register budget as the packed microkernel), enough independent
/// add chains to hide FP latency, and each `B` block load is amortized
/// over `IR` rows.
const IR: usize = 6;

/// Output rows per work-stealing chunk in the parallel path.
const ROWS_PER_CHUNK: usize = 128;

/// Shape heuristic: true when `m×k · k×n` should take the rank-k fast
/// path — a genuinely skinny inner dimension (`1 ≤ k ≤ 16`) that is also
/// strictly the smallest extent, so the product is a low-rank update
/// rather than a small square multiply.
pub(crate) fn eligible(m: usize, k: usize, n: usize) -> bool {
    (1..=RANK_K_MAX_K).contains(&k) && k < m.min(n)
}

/// The rank-k product `a · b` for `a: m×k`, `b: k×n` (shapes already
/// validated, FLOPs already counted by the caller). Serial below the
/// parallel threshold, work-stealing row chunks above it; bit-identical
/// across thread counts, and with `Fuse::Exact` bit-identical to the
/// general packed nest.
pub(crate) fn rank_k_matmul(a: &Matrix, b: &Matrix, fuse: Fuse) -> Matrix {
    let (m, _) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    drive::<false>(a, b, out.as_mut_slice(), n, fuse);
    out
}

/// The rank-k fold `out += a · b` for `a: m×k`, `b: k×n` (shapes already
/// validated, FLOPs already counted by the caller). Adds each register
/// tile straight into `out` — no `m×n` temporary — with the same
/// per-element chain as GEMM-then-add, so the fold is `==`-identical to
/// `out.add_assign_from(&a.matmul(b))` under `Fuse::Exact`.
pub(crate) fn rank_k_fold(out: &mut Matrix, a: &Matrix, b: &Matrix, fuse: Fuse) {
    let n = b.cols();
    drive::<true>(a, b, out.as_mut_slice(), n, fuse);
}

/// Shared scheduling for both entry points: serial below the parallel
/// threshold, disjoint row chunks behind uncontended mutexes on the
/// stealing queue above it — each chunk is locked exactly once, by
/// whichever worker runs (or steals) it.
fn drive<const ACC: bool>(a: &Matrix, b: &Matrix, out: &mut [f64], n: usize, fuse: Fuse) {
    let (m, k) = a.shape();
    if n == 0 || m == 0 {
        return;
    }
    let chunks = m.div_ceil(ROWS_PER_CHUNK).max(1);
    let threads = gemm::gemm_threads().min(chunks);
    if threads <= 1 || m * k * n < gemm::PARALLEL_THRESHOLD {
        rank_k_rows::<ACC>(a, b, out, 0, fuse);
        return;
    }
    let cells: Vec<Mutex<&mut [f64]>> =
        out.chunks_mut(ROWS_PER_CHUNK * n).map(Mutex::new).collect();
    pool::run_stealing(threads, cells.len(), &|_, c| {
        let mut rows = cells[c].lock().expect("rank-k chunk poisoned");
        rank_k_rows::<ACC>(a, b, &mut rows[..], c * ROWS_PER_CHUNK, fuse);
    });
}

/// Computes `out (=|+=) a[r0..r0+h] · b` where `out` holds `h` full-width
/// rows (`h` inferred from the slice), picking the fused rendering only
/// when the mode asks for it and the host can run it.
fn rank_k_rows<const ACC: bool>(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize, fuse: Fuse) {
    #[cfg(target_arch = "x86_64")]
    if fuse == Fuse::Fused && gemm::fma_available() && !gemm::portable_forced() {
        // SAFETY: `fma_available` verified AVX2+FMA on this host.
        unsafe { rank_k_rows_fused::<ACC>(a, b, out, r0) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fuse;
    rank_k_rows_exact::<ACC>(a, b, out, r0);
}

/// Finishes one `JB`-or-narrower accumulator block into the output row
/// segment: store for the matmul path, single add for the fold path.
#[inline(always)]
fn finish<const ACC: bool>(orow: &mut [f64], acc: &[f64]) {
    if ACC {
        for (o, &v) in orow.iter_mut().zip(acc) {
            *o += v;
        }
    } else {
        orow.copy_from_slice(acc);
    }
}

/// The exact (mul-then-add) rank-k loop; see the module docs for the
/// bit-identity argument. `IR`-row register tiles over the full `JB`-wide
/// blocks, then a scalar sweep over the ragged right edge and the tail
/// rows.
fn rank_k_rows_exact<const ACC: bool>(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    let bs = b.as_slice();
    let mut blocks = out.chunks_exact_mut(IR * n);
    let mut i0 = 0;
    for block in blocks.by_ref() {
        let k = a.cols();
        let arows: [&[f64]; IR] = std::array::from_fn(|t| &a.row(r0 + i0 + t)[..k]);
        let mut j0 = 0;
        while j0 + JB <= n {
            let mut acc = [[0.0f64; JB]; IR];
            for p in 0..k {
                let brow = &bs[p * n + j0..p * n + j0 + JB];
                for (t, arow) in arows.iter().enumerate() {
                    let av = arow[p];
                    for (o, &bv) in acc[t].iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            for (t, accrow) in acc.iter().enumerate() {
                finish::<ACC>(&mut block[t * n + j0..t * n + j0 + JB], accrow);
            }
            j0 += JB;
        }
        if j0 < n {
            for (t, arow) in arows.iter().enumerate() {
                edge_cols::<ACC, false>(arow, bs, n, j0, &mut block[t * n + j0..(t + 1) * n]);
            }
        }
        i0 += IR;
    }
    for (t, orow) in blocks.into_remainder().chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + i0 + t);
        let mut j0 = 0;
        while j0 < n {
            let w = JB.min(n - j0);
            edge_cols::<ACC, false>(arow, bs, n, j0, &mut orow[j0..j0 + w]);
            j0 += w;
        }
    }
}

/// One ragged (`< JB`-wide or single-row) accumulator block, shared by the
/// exact and fused renderings: `FUSE` selects plain mul-then-add vs
/// `f64::mul_add` (which compiles to a fused lane only when inlined into
/// the FMA-enabled caller — from the exact caller it is never reached).
#[inline(always)]
fn edge_cols<const ACC: bool, const FUSE: bool>(
    arow: &[f64],
    bs: &[f64],
    n: usize,
    j0: usize,
    orow: &mut [f64],
) {
    let w = orow.len();
    let mut acc = [0.0f64; JB];
    for (p, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = &bs[p * n + j0..p * n + j0 + w];
        for (o, &bv) in acc[..w].iter_mut().zip(brow) {
            if FUSE {
                *o = av.mul_add(bv, *o);
            } else {
                *o += av * bv;
            }
        }
    }
    finish::<ACC>(orow, &acc[..w]);
}

/// [`rank_k_rows_exact`] with the multiply-adds fused: `f64::mul_add`
/// under an FMA-enabled target feature compiles to `vfmadd` and lets LLVM
/// vectorize the `JB`-wide blocks into fused lanes. Reached only through
/// [`GemmKernel::PackedFma`](crate::GemmKernel::PackedFma).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,avx2,fma")]
fn rank_k_rows_fused<const ACC: bool>(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    let bs = b.as_slice();
    let mut blocks = out.chunks_exact_mut(IR * n);
    let mut i0 = 0;
    for block in blocks.by_ref() {
        let k = a.cols();
        let arows: [&[f64]; IR] = std::array::from_fn(|t| &a.row(r0 + i0 + t)[..k]);
        let mut j0 = 0;
        while j0 + JB <= n {
            let mut acc = [[0.0f64; JB]; IR];
            for p in 0..k {
                let brow = &bs[p * n + j0..p * n + j0 + JB];
                for (t, arow) in arows.iter().enumerate() {
                    let av = arow[p];
                    for (o, &bv) in acc[t].iter_mut().zip(brow) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
            for (t, accrow) in acc.iter().enumerate() {
                finish::<ACC>(&mut block[t * n + j0..t * n + j0 + JB], accrow);
            }
            j0 += JB;
        }
        if j0 < n {
            for (t, arow) in arows.iter().enumerate() {
                edge_cols::<ACC, true>(arow, bs, n, j0, &mut block[t * n + j0..(t + 1) * n]);
            }
        }
        i0 += IR;
    }
    for (t, orow) in blocks.into_remainder().chunks_exact_mut(n).enumerate() {
        let arow = a.row(r0 + i0 + t);
        let mut j0 = 0;
        while j0 < n {
            let w = JB.min(n - j0);
            edge_cols::<ACC, true>(arow, bs, n, j0, &mut orow[j0..j0 + w]);
            j0 += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{naive_matmul, set_gemm_threads, test_config_lock};
    use crate::ApproxEq;

    #[test]
    fn eligibility_is_skinny_only() {
        assert!(eligible(64, 1, 64));
        assert!(eligible(2048, 16, 2048));
        assert!(eligible(17, 16, 18));
        assert!(!eligible(64, 0, 64)); // no inner dimension
        assert!(!eligible(64, 17, 64)); // too deep
        assert!(!eligible(16, 16, 64)); // k not strictly smallest
        assert!(!eligible(64, 16, 16));
        assert!(!eligible(8, 8, 8)); // small square
    }

    #[test]
    fn exact_path_is_bit_identical_to_naive() {
        for (m, k, n, seed) in [(40, 1, 50, 1), (33, 5, 77, 2), (130, 16, 120, 3)] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 10);
            let fast = rank_k_matmul(&a, &b, Fuse::Exact);
            assert_eq!(fast, naive_matmul(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn fold_is_bit_identical_to_gemm_then_add() {
        for (m, k, n, seed) in [(40, 1, 50, 21), (33, 5, 77, 22), (130, 16, 120, 23)] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 10);
            let mut fused = Matrix::random_uniform(m, n, seed + 20);
            let mut two_step = fused.clone();
            rank_k_fold(&mut fused, &a, &b, Fuse::Exact);
            two_step.add_assign_from(&naive_matmul(&a, &b)).unwrap();
            assert_eq!(fused, two_step, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn zero_heavy_factors_stay_bit_exact() {
        let mut a = Matrix::random_uniform(50, 8, 4);
        for r in 0..50 {
            for c in 0..8 {
                if (r + c) % 3 != 0 {
                    a.set(r, c, 0.0);
                }
            }
        }
        let b = Matrix::random_uniform(8, 60, 5);
        assert_eq!(rank_k_matmul(&a, &b, Fuse::Exact), naive_matmul(&a, &b));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_any_thread_count() {
        let _guard = test_config_lock();
        // 300·8·400 = 960k ≥ the parallel threshold, 3 row chunks.
        let a = Matrix::random_uniform(300, 8, 6);
        let b = Matrix::random_uniform(8, 400, 7);
        set_gemm_threads(Some(1));
        let serial = rank_k_matmul(&a, &b, Fuse::Exact);
        let mut serial_fold = Matrix::random_uniform(300, 400, 8);
        let fold_base = serial_fold.clone();
        rank_k_fold(&mut serial_fold, &a, &b, Fuse::Exact);
        for threads in [2usize, 3, 8] {
            set_gemm_threads(Some(threads));
            assert_eq!(
                rank_k_matmul(&a, &b, Fuse::Exact),
                serial,
                "threads = {threads}"
            );
            let mut fold = fold_base.clone();
            rank_k_fold(&mut fold, &a, &b, Fuse::Exact);
            assert_eq!(fold, serial_fold, "fold, threads = {threads}");
        }
        set_gemm_threads(None);
    }

    #[test]
    fn fused_path_stays_within_the_oracle_budget() {
        let _guard = test_config_lock();
        let a = Matrix::random_uniform(200, 12, 8);
        let b = Matrix::random_uniform(12, 150, 9);
        let fused = rank_k_matmul(&a, &b, Fuse::Fused);
        assert!(fused.approx_eq(&naive_matmul(&a, &b), 1e-10));
        let mut fold = Matrix::zeros(200, 150);
        rank_k_fold(&mut fold, &a, &b, Fuse::Fused);
        assert!(fold.approx_eq(&naive_matmul(&a, &b), 1e-10));
    }

    #[test]
    fn ragged_tail_blocks_are_covered() {
        // n deliberately not a multiple of JB, m not of IR or
        // ROWS_PER_CHUNK — exercises the right edge and the tail rows.
        for (m, k, n) in [(131, 3, JB + 5), (IR + 1, 2, JB - 1), (IR - 1, 1, 3)] {
            let a = Matrix::random_uniform(m, k, 11);
            let b = Matrix::random_uniform(k, n, 12);
            assert_eq!(
                rank_k_matmul(&a, &b, Fuse::Exact),
                naive_matmul(&a, &b),
                "{m}x{k}x{n}"
            );
        }
    }
}
