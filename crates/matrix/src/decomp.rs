//! LU decomposition with partial pivoting: the `O(n^γ)` inversion/solve
//! substrate that OLS re-evaluation pays for on every update (§5.1), and the
//! baseline the Sherman–Morrison incremental path is compared against.

use crate::{flops, Matrix, MatrixError, Result};

/// Pivot magnitudes below this are treated as singular.
const PIVOT_TOL: f64 = 1e-12;

/// A packed LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` has an implicit unit diagonal and is stored in the strict lower
/// triangle of the packed factor ([`Lu::packed`]); `U` occupies the upper triangle.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: output row `i` of `P·A` is input row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used by `det`.
    perm_sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. `O(n³/3)` multiply-adds.
    pub fn factorize(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(MatrixError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        flops::add((2 * n * n * n / 3) as u64);
        for k in 0..n {
            // Partial pivoting: pick the row with the largest |entry| in col k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(MatrixError::Singular { pivot: k });
            }
            if pivot_row != k {
                swap_rows(&mut lu, k, pivot_row);
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(k, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Packed `L\U` storage (mainly for tests and diagnostics).
    pub fn packed(&self) -> &Matrix {
        &self.lu
    }

    /// Solves `A·X = B` for (possibly multi-column) `B`. `O(n²·ncols)`.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.order();
        if b.rows() != n {
            return Err(MatrixError::DimMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let ncols = b.cols();
        flops::add((2 * n * n * ncols) as u64);
        // Apply permutation.
        let mut x = Matrix::zeros(n, ncols);
        for i in 0..n {
            let src = self.perm[i];
            x.row_mut(i).copy_from_slice(b.row(src));
        }
        // Forward substitution: L·y = P·b (unit diagonal).
        for i in 1..n {
            for k in 0..i {
                let f = self.lu.get(i, k);
                if f == 0.0 {
                    continue;
                }
                for c in 0..ncols {
                    let v = x.get(i, c) - f * x.get(k, c);
                    x.set(i, c, v);
                }
            }
        }
        // Back substitution: U·x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let f = self.lu.get(i, k);
                if f == 0.0 {
                    continue;
                }
                for c in 0..ncols {
                    let v = x.get(i, c) - f * x.get(k, c);
                    x.set(i, c, v);
                }
            }
            let d = self.lu.get(i, i);
            for c in 0..ncols {
                x.set(i, c, x.get(i, c) / d);
            }
        }
        Ok(x)
    }

    /// Computes `A⁻¹` by solving against the identity. `O(n³)`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.order()))
    }

    /// Determinant from the product of pivots.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.order() {
            d *= self.lu.get(i, i);
        }
        d
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for c in 0..cols {
        let t = m.get(a, c);
        m.set(a, c, m.get(b, c));
        m.set(b, c, t);
    }
}

impl Matrix {
    /// Convenience: `A⁻¹` via LU with partial pivoting.
    pub fn inverse(&self) -> Result<Matrix> {
        Lu::factorize(self)?.inverse()
    }

    /// Convenience: solves `A·X = B` via LU.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        Lu::factorize(self)?.solve(b)
    }

    /// Convenience: determinant via LU (0.0 for singular matrices).
    pub fn det(&self) -> Result<f64> {
        match Lu::factorize(self) {
            Ok(lu) => Ok(lu.det()),
            Err(MatrixError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn rejects_rectangular() {
        assert!(Lu::factorize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn detects_singular() {
        let s = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::factorize(&s).unwrap_err(),
            MatrixError::Singular { .. }
        ));
        assert_eq!(s.det().unwrap(), 0.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Matrix::col_vector(&[5.0, 10.0]);
        let x = a.solve(&b).unwrap();
        assert!((x.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((x.get(1, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::random_diag_dominant(24, 42);
        let inv = a.inverse().unwrap();
        let prod = a.try_matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(24), 1e-8));
    }

    #[test]
    fn inverse_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let inv = a.inverse().unwrap();
        assert!(inv.approx_eq(&a, 1e-12));
    }

    #[test]
    fn det_of_triangular_is_product_of_diagonal() {
        let a = Matrix::from_rows(vec![
            vec![2.0, 5.0, 1.0],
            vec![0.0, 3.0, 7.0],
            vec![0.0, 0.0, 4.0],
        ])
        .unwrap();
        assert!((a.det().unwrap() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn det_sign_flips_with_row_swap() {
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!((a.det().unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rhs_solve_matches_inverse_product() {
        let a = Matrix::random_diag_dominant(12, 7);
        let b = Matrix::random_uniform(12, 4, 8);
        let x = a.solve(&b).unwrap();
        let x2 = a.inverse().unwrap().try_matmul(&b).unwrap();
        assert!(x.approx_eq(&x2, 1e-8));
    }
}
