//! # linview-matrix
//!
//! Dense matrix substrate for the LINVIEW incremental view maintenance
//! framework (Nikolic, ElSeidy, Koch — SIGMOD 2014).
//!
//! The paper's evaluation runs on Octave/ATLAS and Spark/Jblas; this crate is
//! the from-scratch replacement substrate. It provides exactly the primitives
//! the paper's computational model needs:
//!
//! * `O(n^γ)` dense matrix multiplication — a packed, register-blocked
//!   GEMM microkernel with a pluggable kernel family ([`GemmKernel`]) and a
//!   persistent worker pool — the cost that re-evaluation pays per
//!   iteration;
//! * `O(n^γ)` LU-based inversion — the cost OLS re-evaluation pays;
//! * `O(kn^2)` skinny products (matvec, outer products, `(n×k)·(k×n)` block
//!   products) — the cost incremental maintenance pays;
//! * block stacking (`hstack`/`vstack`) used to build the factored deltas
//!   `Δ = U Vᵀ` of §4.2–4.3;
//! * global FLOP accounting so benchmarks can verify the asymptotic claims of
//!   Table 2 independently of wall-clock noise.
//!
//! All matrices are row-major `f64`. Fallible operations return
//! [`MatrixError`]; the arithmetic operator impls panic on dimension
//! mismatches (they are thin wrappers over the `try_*` APIs).
//!
//! ```
//! use linview_matrix::Matrix;
//! let a = Matrix::identity(3);
//! let b = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]; 3]).unwrap();
//! let c = (&a * &b).unwrap();
//! assert_eq!(c.get(1, 2), 3.0);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod block;
mod cholesky;
mod compress;
mod decomp;
mod dense;
mod error;
pub mod flops;
pub mod gemm;
mod matmul;
mod norms;
mod ops;
mod pack;
mod pool;
mod qr;
mod random;
mod rankk;
mod sparsity;
mod strassen;
mod svd;

pub use block::BlockBuilder;
pub use cholesky::{random_spd, Cholesky};
pub use compress::{recompress, Recompressed};
pub use decomp::Lu;
pub use dense::Matrix;
pub use error::MatrixError;
pub use gemm::{
    default_kernel, env_kernel_error, env_threads_error, force_general_nest,
    force_portable_microkernel, gemm_threads, set_default_kernel, set_gemm_threads, GemmKernel,
};
pub use norms::ApproxEq;
pub use qr::Qr;
pub use rankk::RANK_K_MAX_K;
pub use sparsity::{
    factor_nnz, fold_low_rank, set_sparse_folds, sparse_folds_enabled, FoldPath,
    SPARSE_FOLD_CROSSOVER,
};
pub use strassen::STRASSEN_GAMMA;
pub use svd::{numerical_rank, Svd};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MatrixError>;
