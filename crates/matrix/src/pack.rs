//! Panel packing for the register-blocked GEMM kernel.
//!
//! The packed kernel (BLIS/GotoBLAS layout) never walks the operands in
//! their row-major form inside the hot loop. Instead, `A` is repacked into
//! `MR`-tall *column-major micro-panels* (all `MR` values of one `k` step
//! adjacent) and `B` into `NR`-wide *row-major micro-panels* (all `NR`
//! values of one `k` step adjacent), so the microkernel streams both with
//! unit stride and zero index arithmetic. Ragged edges are zero-padded to
//! the full panel height/width — padding multiplies against implicit zero
//! rows/columns, which keeps the microkernel free of edge branches without
//! changing any output value.

use crate::Matrix;

/// Packs `a[r0+i][p0+p]` for `i < mc`, `p < kc` into `MR`-tall panels.
///
/// Layout: panel `i/MR` occupies `kc·mr` consecutive values; within a
/// panel, step `p` stores the `mr` column values `a[r0 + panel·mr + 0..mr][p0+p]`
/// contiguously (zero-padded when the last panel is short of `mr` rows).
pub(crate) fn pack_a(
    a: &Matrix,
    r0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    mr: usize,
    buf: &mut Vec<f64>,
) {
    let panels = mc.div_ceil(mr);
    buf.clear();
    buf.resize(panels * kc * mr, 0.0);
    for panel in 0..panels {
        let i0 = panel * mr;
        let h = mr.min(mc - i0);
        let dst = &mut buf[panel * kc * mr..(panel + 1) * kc * mr];
        for i in 0..h {
            let row = &a.row(r0 + i0 + i)[p0..p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                dst[p * mr + i] = v;
            }
        }
    }
}

/// Packs `b[p0+p][c0+j]` for `p < kc`, `j < nc` into `NR`-wide panels.
///
/// Layout: panel `j/NR` occupies `kc·nr` consecutive values; within a
/// panel, step `p` stores the `nr` row values `b[p0+p][c0 + panel·nr + 0..nr]`
/// contiguously (zero-padded when the last panel is short of `nr` columns).
pub(crate) fn pack_b(
    b: &Matrix,
    p0: usize,
    kc: usize,
    c0: usize,
    nc: usize,
    nr: usize,
    buf: &mut Vec<f64>,
) {
    let panels = nc.div_ceil(nr);
    buf.clear();
    buf.resize(panels * kc * nr, 0.0);
    pack_b_panels(b, p0, kc, c0, nc, nr, 0, panels, buf);
}

/// Packs the panel subrange `[panel0, panel0 + panels)` of the slab that
/// [`pack_b`] lays out, into `dst` (exactly `panels·kc·nr` values, already
/// zeroed). Panel ranges are disjoint slices of the full slab buffer, so
/// disjoint ranges can be packed concurrently by different workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b_panels(
    b: &Matrix,
    p0: usize,
    kc: usize,
    c0: usize,
    nc: usize,
    nr: usize,
    panel0: usize,
    panels: usize,
    dst: &mut [f64],
) {
    debug_assert_eq!(dst.len(), panels * kc * nr);
    for p in 0..kc {
        let row = &b.row(p0 + p)[c0..c0 + nc];
        for panel in 0..panels {
            let j0 = (panel0 + panel) * nr;
            let w = nr.min(nc - j0);
            let at = panel * kc * nr + p * nr;
            dst[at..at + w].copy_from_slice(&row[j0..j0 + w]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_is_panelwise_column_major_with_zero_padding() {
        // 3×4 block of a 5×6 matrix, MR = 2 -> two panels, second half-full.
        let a = Matrix::from_vec(5, 6, (0..30).map(|x| x as f64).collect()).unwrap();
        let mut buf = Vec::new();
        pack_a(&a, 1, 3, 2, 4, 2, &mut buf);
        assert_eq!(buf.len(), 2 * 4 * 2);
        // Panel 0, k-step 0: a[1][2], a[2][2].
        assert_eq!(&buf[0..2], &[8.0, 14.0]);
        // Panel 0, k-step 3: a[1][5], a[2][5].
        assert_eq!(&buf[6..8], &[11.0, 17.0]);
        // Panel 1, k-step 0: a[3][2], padding.
        assert_eq!(&buf[8..10], &[20.0, 0.0]);
        // Panel 1, k-step 3: a[3][5], padding.
        assert_eq!(&buf[14..16], &[23.0, 0.0]);
    }

    #[test]
    fn pack_b_is_panelwise_row_major_with_zero_padding() {
        // 2×5 block of a 4×6 matrix, NR = 4 -> two panels, second 1-wide.
        let b = Matrix::from_vec(4, 6, (0..24).map(|x| x as f64).collect()).unwrap();
        let mut buf = Vec::new();
        pack_b(&b, 1, 2, 1, 5, 4, &mut buf);
        assert_eq!(buf.len(), 2 * 2 * 4);
        // Panel 0, k-step 0: b[1][1..5].
        assert_eq!(&buf[0..4], &[7.0, 8.0, 9.0, 10.0]);
        // Panel 0, k-step 1: b[2][1..5].
        assert_eq!(&buf[4..8], &[13.0, 14.0, 15.0, 16.0]);
        // Panel 1, k-step 0: b[1][5], then padding.
        assert_eq!(&buf[8..12], &[11.0, 0.0, 0.0, 0.0]);
        // Panel 1, k-step 1: b[2][5], then padding.
        assert_eq!(&buf[12..16], &[17.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn packing_reuses_the_buffer_allocation() {
        let a = Matrix::random_uniform(16, 16, 1);
        let mut buf = Vec::new();
        pack_a(&a, 0, 16, 0, 16, 4, &mut buf);
        let cap = buf.capacity();
        pack_a(&a, 0, 8, 0, 8, 4, &mut buf);
        assert_eq!(buf.capacity(), cap, "second pack must not reallocate");
        assert_eq!(buf.len(), 2 * 8 * 4);
    }

    #[test]
    fn empty_ranges_pack_to_empty_buffers() {
        let a = Matrix::random_uniform(4, 4, 2);
        let mut buf = vec![1.0; 8];
        pack_a(&a, 0, 0, 0, 4, 4, &mut buf);
        assert!(buf.is_empty());
        pack_b(&a, 0, 4, 0, 0, 8, &mut buf);
        assert!(buf.is_empty());
    }
}
