//! A persistent, process-wide worker pool for the dense kernels.
//!
//! The original parallel matmul spawned OS threads through
//! `std::thread::scope` on every call — microseconds of setup per product,
//! paid again on every trigger firing. This pool spawns its workers once
//! (lazily, on the first parallel product) and keeps them parked on a
//! shared job channel, so a parallel GEMM costs one channel send per band
//! instead of one `clone(2)` per band.
//!
//! [`run_scoped`] is the batch entry point: it takes a batch of closures
//! that may borrow local data, runs one on the calling thread and the rest
//! on the pool, and **blocks until every closure has finished** — that
//! barrier is what makes handing non-`'static` borrows to long-lived
//! workers sound. Panics inside a task are caught on the worker and
//! re-raised on the caller after the barrier, so a poisoned product cannot
//! leave a detached thread writing into a freed buffer.
//!
//! [`run_stealing`] layers chunked work-stealing on top: a range of chunk
//! indices is dealt into per-worker deques (contiguous blocks, for
//! locality), each worker drains its own deque front-to-back, and a worker
//! whose deque runs dry steals single chunks from the *back* of its
//! siblings' deques. This fixes the unbalanced-band-split stall of the
//! one-coarse-band-per-thread schedule: when the ragged tail (or a
//! descheduled worker) leaves one band still running, idle workers now
//! take chunks off its plate instead of spinning the barrier.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased pool job. Lifetimes are erased in [`run_scoped`]; the
/// completion barrier restores the borrow discipline.
type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Grows the pool to at least `want` parked workers (never shrinks — the
/// pool is shared by every kernel invocation for the process lifetime).
fn ensure_workers(want: usize) {
    let p = pool();
    loop {
        let cur = p.spawned.load(Ordering::Acquire);
        if cur >= want {
            return;
        }
        if p.spawned
            .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue;
        }
        std::thread::Builder::new()
            .name(format!("linview-gemm-{cur}"))
            .spawn(|| {
                let p = pool();
                loop {
                    let job = {
                        let mut q = p.queue.lock().expect("gemm pool queue poisoned");
                        loop {
                            if let Some(job) = q.pop_front() {
                                break job;
                            }
                            q = p.available.wait(q).expect("gemm pool queue poisoned");
                        }
                    };
                    job();
                }
            })
            .expect("spawning a gemm pool worker");
    }
}

/// Synchronization record for one `run_scoped` batch.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// Runs every task to completion, the first on the calling thread and the
/// rest on the persistent pool, then returns. Tasks may borrow from the
/// caller's stack: the function does not return (or unwind) until all of
/// them have finished, and a panic in any task is re-raised here.
pub(crate) fn run_scoped<'scope>(mut tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let Some(local) = tasks.pop() else { return };
    if tasks.is_empty() {
        return local();
    }
    ensure_workers(tasks.len());
    let batch = Arc::new(Batch {
        remaining: Mutex::new(tasks.len()),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let p = pool();
    {
        let mut q = p.queue.lock().expect("gemm pool queue poisoned");
        for task in tasks {
            let b = Arc::clone(&batch);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    b.panicked.store(true, Ordering::Release);
                }
                let mut left = b.remaining.lock().expect("gemm batch lock poisoned");
                *left -= 1;
                if *left == 0 {
                    b.done.notify_all();
                }
            });
            // SAFETY: the barrier below blocks until `remaining` reaches
            // zero — on the normal path and before any re-panic — so every
            // borrow captured by `job` strictly outlives its execution.
            // The transmute only erases the `'scope` lifetime so the job
            // can sit in the pool's 'static queue.
            let job: Job = unsafe { std::mem::transmute(job) };
            q.push_back(job);
        }
        p.available.notify_all();
    }
    let local_result = catch_unwind(AssertUnwindSafe(local));
    let mut left = batch.remaining.lock().expect("gemm batch lock poisoned");
    while *left > 0 {
        left = batch.done.wait(left).expect("gemm batch lock poisoned");
    }
    drop(left);
    if let Err(payload) = local_result {
        resume_unwind(payload);
    }
    if batch.panicked.load(Ordering::Acquire) {
        panic!("a gemm pool task panicked");
    }
}

/// Runs `run(worker, chunk)` for every `chunk in 0..chunks` across
/// `workers` pool workers with chunked work-stealing.
///
/// Chunk indices are dealt into per-worker deques as contiguous blocks
/// (worker 0 gets the lowest chunks). Each worker pops its own deque from
/// the front; on empty it steals one chunk from the back of the first
/// non-empty sibling deque, scanning upward from its own index. The
/// `worker` argument passed to `run` identifies the executing worker (for
/// per-worker scratch reuse); every chunk is executed exactly once, and
/// the call blocks until all chunks have finished.
///
/// `run` must tolerate concurrent invocation for distinct chunks — chunks
/// that write shared output must own disjoint regions of it.
pub(crate) fn run_stealing(workers: usize, chunks: usize, run: &(dyn Fn(usize, usize) + Sync)) {
    let workers = workers.max(1).min(chunks.max(1));
    if workers <= 1 {
        for c in 0..chunks {
            run(0, c);
        }
        return;
    }
    // Contiguous block deal: worker w owns chunks [w·per + extra, ...) so
    // neighbouring chunks (adjacent output rows) stay on one worker.
    let per = chunks / workers;
    let extra = chunks % workers;
    let mut start = 0;
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let len = per + usize::from(w < extra);
            let d = (start..start + len).collect();
            start += len;
            Mutex::new(d)
        })
        .collect();
    let deques = &deques;
    let worker_loop = move |w: usize| loop {
        let own = deques[w].lock().expect("steal deque poisoned").pop_front();
        let next = own.or_else(|| {
            // Steal-on-empty: scan siblings from w+1 wrapping around,
            // taking one chunk from the back (the coldest end for the
            // victim, so owner and thief keep touching disjoint rows).
            (1..workers).find_map(|off| {
                deques[(w + off) % workers]
                    .lock()
                    .expect("steal deque poisoned")
                    .pop_back()
            })
        });
        match next {
            Some(c) => run(w, c),
            // All deques empty: no task generates new chunks, so done.
            None => break,
        }
    };
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..workers)
        .map(|w| Box::new(move || worker_loop(w)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    run_scoped(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_a_noop() {
        run_scoped(Vec::new());
    }

    #[test]
    fn single_task_runs_inline() {
        // A single task executes on the calling thread (observable via a
        // plain &mut borrow that a detached worker could never have).
        let mut hit = false;
        run_scoped(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn tasks_borrow_disjoint_caller_state() {
        let mut data = vec![0usize; 64];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                tasks.push(Box::new(move || {
                    for x in chunk.iter_mut() {
                        *x = i + 1;
                    }
                }));
            }
            run_scoped(tasks);
        }
        for (i, chunk) in data.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&x| x == i + 1));
        }
    }

    #[test]
    fn worker_panic_is_reraised_after_the_barrier() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> =
                vec![Box::new(|| panic!("boom")), Box::new(|| {})];
            run_scoped(tasks);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stealing_runs_every_chunk_exactly_once() {
        for (workers, chunks) in [(1, 7), (3, 1), (4, 13), (8, 3), (2, 0)] {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            run_stealing(workers, chunks, &|_, c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            for (c, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "chunk {c} with {workers} workers / {chunks} chunks"
                );
            }
        }
    }

    #[test]
    fn stealing_rebalances_a_loaded_deque() {
        // Worker 0 owns the first half of the chunks but every chunk it
        // runs is slow; with stealing, other workers must end up running
        // at least one of worker 0's originally-dealt chunks.
        let ran_by: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(usize::MAX)).collect();
        run_stealing(4, 16, &|w, c| {
            ran_by[c].store(w, Ordering::Relaxed);
            if c < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        let all_ran = ran_by
            .iter()
            .all(|w| w.load(Ordering::Relaxed) != usize::MAX);
        assert!(all_ran, "every chunk must run");
    }

    #[test]
    fn stealing_chunks_may_write_disjoint_borrows() {
        let mut data = vec![0usize; 40];
        {
            let cells: Vec<Mutex<&mut [usize]>> = data.chunks_mut(5).map(Mutex::new).collect();
            run_stealing(3, cells.len(), &|_, c| {
                for x in cells[c].lock().unwrap().iter_mut() {
                    *x = c + 1;
                }
            });
        }
        for (c, chunk) in data.chunks(5).enumerate() {
            assert!(chunk.iter().all(|&x| x == c + 1), "chunk {c}");
        }
    }

    #[test]
    fn pool_is_reused_across_batches() {
        for round in 0..8 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 4, "round {round}");
        }
    }
}
