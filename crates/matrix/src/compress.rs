//! Numerical recompression of factored deltas `Δ = U·Vᵀ`.
//!
//! §4.3 of the paper keeps factored deltas small by *syntactic*
//! common-factor extraction and explicitly rejects value inspection:
//! "computing the exact rank of the delta matrix requires inspection of the
//! matrix values, which we deem too expensive". That is the right call when
//! the only tool considered is a full decomposition of the `n×n` delta — but
//! the factored form makes rank inspection cheap: for `U : (n×k)`,
//! `V : (m×k)` a *numerically minimal* refactoring costs only
//! `O((n+m)k² + k³)`, asymptotically free next to the `O(k(n²+nm))` the next
//! propagation step pays per unit of rank.
//!
//! [`recompress`] implements that pass: it projects the pair onto
//! orthonormal bases (via SVD of each skinny factor), decomposes the small
//! `k×k` core, and drops singular directions below `rel_tol · σ_max`. The
//! result is the Eckart–Young-optimal factored representation of the same
//! delta. The trigger executor applies it optionally after each delta block
//! pair is evaluated — the ablation benchmark `ablation_recompress`
//! quantifies when it pays off.

use crate::svd::Svd;
use crate::{flops, Matrix, MatrixError, Result};

/// Outcome of a [`recompress`] call.
#[derive(Debug, Clone)]
pub struct Recompressed {
    /// New left factor `U' : (n×r)`.
    pub u: Matrix,
    /// New right factor `V' : (m×r)`.
    pub v: Matrix,
    /// Rank before recompression (`k`).
    pub rank_before: usize,
    /// Numerical rank after recompression (`r ≤ k`).
    pub rank_after: usize,
}

impl Recompressed {
    /// True when the pass actually shrank the representation.
    pub fn reduced(&self) -> bool {
        self.rank_after < self.rank_before
    }
}

/// Recompresses the factored delta `U·Vᵀ` to its numerical rank.
///
/// `u` is `(n×k)`, `v` is `(m×k)`; both must have the same number of
/// columns. Singular values of the product below `rel_tol · σ_max` are
/// dropped. A delta that is numerically zero is returned as a rank-1 pair
/// of zero vectors (rank 0 has no matrix representation here, and a zero
/// outer product is harmless downstream).
pub fn recompress(u: &Matrix, v: &Matrix, rel_tol: f64) -> Result<Recompressed> {
    let k = u.cols();
    if v.cols() != k {
        return Err(MatrixError::DimMismatch {
            op: "recompress",
            lhs: u.shape(),
            rhs: v.shape(),
        });
    }
    if k == 0 {
        return Err(MatrixError::Empty);
    }
    let (n, m) = (u.rows(), v.rows());
    flops::add((4 * (n + m) * k * k + 8 * k * k * k) as u64);

    // Orthonormalize each skinny factor: U = Pu·Su·Wuᵀ, V = Pv·Sv·Wvᵀ.
    let su = Svd::factorize(u)?;
    let sv = Svd::factorize(v)?;

    // Core C = (Su Wuᵀ)(Sv Wvᵀ)ᵀ : (k×k); then U Vᵀ = Pu · C · Pvᵀ.
    let mut left = su.v().transpose(); // Wuᵀ
    for (i, &s) in su.singular_values().iter().enumerate() {
        for c in 0..k {
            left.set(i, c, left.get(i, c) * s);
        }
    }
    let mut right = sv.v().transpose(); // Wvᵀ
    for (i, &s) in sv.singular_values().iter().enumerate() {
        for c in 0..k {
            right.set(i, c, right.get(i, c) * s);
        }
    }
    let core = left.try_matmul(&right.transpose())?;
    let sc = Svd::factorize(&core)?;

    // The cutoff is relative to the *input* scale, not the core's own
    // largest singular value: a delta that cancels to numerical zero must
    // report rank 0, not rank 1.
    let scale = su.spectral_norm() * sv.spectral_norm();
    let cutoff = rel_tol * scale;
    let numeric_rank = sc.singular_values().iter().filter(|&&s| s > cutoff).count();

    if numeric_rank == 0 {
        return Ok(Recompressed {
            u: Matrix::zeros(n, 1),
            v: Matrix::zeros(m, 1),
            rank_before: k,
            rank_after: 0,
        });
    }
    let (p, q) = sc.truncate(numeric_rank)?; // core ≈ P·Qᵀ, σ folded into P
    let new_u = su.u().try_matmul(&p)?;
    let new_v = sv.u().try_matmul(&q)?;
    Ok(Recompressed {
        u: new_u,
        v: new_v,
        rank_before: k,
        rank_after: numeric_rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    fn product(u: &Matrix, v: &Matrix) -> Matrix {
        u.try_matmul(&v.transpose()).unwrap()
    }

    #[test]
    fn preserves_the_delta_exactly_at_full_rank() {
        let u = Matrix::random_uniform(12, 3, 1);
        let v = Matrix::random_uniform(9, 3, 2);
        let r = recompress(&u, &v, 1e-12).unwrap();
        assert_eq!(r.rank_after, 3);
        assert!(product(&r.u, &r.v).approx_eq(&product(&u, &v), 1e-9));
    }

    #[test]
    fn collapses_duplicated_columns() {
        // The §4.3 motivating case: U_B / V_B with linearly dependent
        // columns. Stack the same rank-1 pair three times.
        let ucol = Matrix::random_col(10, 3);
        let vcol = Matrix::random_col(8, 4);
        let u = Matrix::hstack(&[&ucol, &ucol, &ucol]).unwrap();
        let v = Matrix::hstack(&[&vcol, &vcol.scale(2.0), &vcol.scale(-0.5)]).unwrap();
        let r = recompress(&u, &v, 1e-10).unwrap();
        assert_eq!(r.rank_after, 1);
        assert!(r.reduced());
        assert!(product(&r.u, &r.v).approx_eq(&product(&u, &v), 1e-9));
    }

    #[test]
    fn finds_hidden_rank_deficiency_across_factors() {
        // Columns of U independent, columns of V independent, but the
        // *product* has lower rank: v2 chosen so contributions cancel.
        let u1 = Matrix::random_col(10, 5);
        let u2 = Matrix::random_col(10, 6);
        let w = Matrix::random_col(6, 7);
        let u = Matrix::hstack(&[&u1, &u2, &u1.try_add(&u2).unwrap()]).unwrap();
        // Third column of V cancels the first two: (u1+u2)w − u1w − u2w = 0.
        let v = Matrix::hstack(&[&w.scale(-1.0), &w.scale(-1.0), &w]).unwrap();
        let r = recompress(&u, &v, 1e-9).unwrap();
        assert_eq!(r.rank_after, 0);
        assert!(product(&r.u, &r.v).max_abs() < 1e-9);
    }

    #[test]
    fn zero_delta_compresses_to_zero_pair() {
        let u = Matrix::zeros(6, 2);
        let v = Matrix::zeros(5, 2);
        let r = recompress(&u, &v, 1e-12).unwrap();
        assert_eq!(r.rank_after, 0);
        assert_eq!(r.u.cols(), 1);
        assert!(product(&r.u, &r.v).max_abs() == 0.0);
    }

    #[test]
    fn rejects_mismatched_ranks() {
        let u = Matrix::zeros(6, 2);
        let v = Matrix::zeros(5, 3);
        assert!(recompress(&u, &v, 1e-12).is_err());
    }

    #[test]
    fn rank_never_increases() {
        for seed in 0..5u64 {
            let u = Matrix::random_uniform(15, 6, seed * 2 + 1);
            let v = Matrix::random_uniform(11, 6, seed * 2 + 2);
            let r = recompress(&u, &v, 1e-10).unwrap();
            assert!(r.rank_after <= r.rank_before);
            assert!(product(&r.u, &r.v).approx_eq(&product(&u, &v), 1e-8));
        }
    }

    #[test]
    fn loose_tolerance_truncates_small_directions() {
        // A dominant rank-1 part plus a tiny rank-1 perturbation: with a
        // loose tolerance the pass keeps only the dominant direction.
        let u = Matrix::hstack(&[
            &Matrix::random_col(12, 9),
            &Matrix::random_col(12, 10).scale(1e-8),
        ])
        .unwrap();
        let v =
            Matrix::hstack(&[&Matrix::random_col(12, 11), &Matrix::random_col(12, 12)]).unwrap();
        let r = recompress(&u, &v, 1e-6).unwrap();
        assert_eq!(r.rank_after, 1);
        // The dropped energy is bounded by the tolerance.
        assert!(product(&r.u, &r.v).rel_diff(&product(&u, &v)) < 1e-6);
    }
}
