//! Householder QR decomposition.
//!
//! The OLS application (§5.1) solves the normal equations through
//! `(XᵀX)⁻¹`; the numerically preferred route is QR on `X` itself. This
//! module provides that substrate — both as an independent cross-check for
//! the maintained OLS estimator and as the foundation the paper's §4.2
//! points to for factorization-based extensions ("rank-1 updates in
//! different matrix factorizations").

use crate::{flops, Matrix, MatrixError, Result};

/// Columns with norm below this are rank deficient.
const RANK_TOL: f64 = 1e-12;

/// A thin QR factorization `A = Q·R` of an `m×n` matrix with `m ≥ n`:
/// `Q : (m×n)` has orthonormal columns, `R : (n×n)` is upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factorizes via Householder reflections; `O(mn²)`.
    ///
    /// Requires `m ≥ n`; returns [`MatrixError::Singular`] on (numerical)
    /// column-rank deficiency.
    pub fn factorize(a: &Matrix) -> Result<Qr> {
        let (m, n) = a.shape();
        if m < n {
            return Err(MatrixError::DimMismatch {
                op: "qr",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        flops::add((2 * m * n * n) as u64);
        let mut r_full = a.clone();
        // Accumulate Q implicitly: start from identity, apply reflectors.
        let mut q_full = Matrix::identity(m);
        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm2 = 0.0;
            for i in k..m {
                let x = r_full.get(i, k);
                norm2 += x * x;
            }
            let norm = norm2.sqrt();
            if norm < RANK_TOL {
                return Err(MatrixError::Singular { pivot: k });
            }
            let alpha = if r_full.get(k, k) >= 0.0 { -norm } else { norm };
            let mut v: Vec<f64> = (0..m)
                .map(|i| if i < k { 0.0 } else { r_full.get(i, k) })
                .collect();
            v[k] -= alpha;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 < RANK_TOL {
                continue; // column already reduced
            }
            // Apply H = I − 2 v vᵀ / (vᵀv) to R (left) and Q (right).
            // Indexed on purpose: `i` addresses `v` and a matrix column
            // simultaneously.
            #[allow(clippy::needless_range_loop)]
            for c in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * r_full.get(i, c)).sum();
                let f = 2.0 * dot / vnorm2;
                for i in k..m {
                    let val = r_full.get(i, c) - f * v[i];
                    r_full.set(i, c, val);
                }
            }
            for row in 0..m {
                let dot: f64 = (k..m).map(|i| q_full.get(row, i) * v[i]).sum();
                let f = 2.0 * dot / vnorm2;
                #[allow(clippy::needless_range_loop)]
                for i in k..m {
                    let val = q_full.get(row, i) - f * v[i];
                    q_full.set(row, i, val);
                }
            }
        }
        // Thin factors.
        let q = q_full.submatrix(0, 0, m, n)?;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r.set(i, j, r_full.get(i, j));
            }
        }
        Ok(Qr { q, r })
    }

    /// The orthonormal factor `Q` (`m×n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n×n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Reconstructs `Q·R` (tests/diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        self.q.try_matmul(&self.r).expect("conforming factors")
    }

    /// Least-squares solve: `argmin_x ‖A·x − b‖₂` via `R·x = Qᵀ·b`;
    /// `O(mn·ncols + n²·ncols)`.
    pub fn solve_least_squares(&self, b: &Matrix) -> Result<Matrix> {
        let (m, n) = self.q.shape();
        if b.rows() != m {
            return Err(MatrixError::DimMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: b.shape(),
            });
        }
        let qtb = self.q.transpose().try_matmul(b)?;
        // Back substitution with R.
        let mut x = qtb;
        flops::add((n * n * x.cols()) as u64);
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let f = self.r.get(i, k);
                for c in 0..x.cols() {
                    let v = x.get(i, c) - f * x.get(k, c);
                    x.set(i, c, v);
                }
            }
            let d = self.r.get(i, i);
            if d.abs() < RANK_TOL {
                return Err(MatrixError::Singular { pivot: i });
            }
            for c in 0..x.cols() {
                x.set(i, c, x.get(i, c) / d);
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn factorize_reconstructs_square_and_tall() {
        for (m, n, seed) in [(8usize, 8usize, 1u64), (12, 5, 2), (20, 3, 3)] {
            let a = Matrix::random_uniform(m, n, seed);
            let qr = Qr::factorize(&a).unwrap();
            assert!(qr.reconstruct().approx_eq(&a, 1e-9), "({m},{n}) failed");
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::random_uniform(10, 4, 4);
        let qr = Qr::factorize(&a).unwrap();
        let qtq = qr.q().transpose().try_matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::random_uniform(9, 5, 5);
        let qr = Qr::factorize(&a).unwrap();
        for i in 0..5 {
            for j in 0..i {
                assert!(qr.r().get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_wide_and_rank_deficient() {
        assert!(Qr::factorize(&Matrix::zeros(3, 5)).is_err());
        // Duplicate columns -> rank deficient.
        let col = Matrix::random_col(6, 6);
        let a = Matrix::hstack(&[&col, &col]).unwrap();
        assert!(Qr::factorize(&a).is_err());
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let x = Matrix::random_uniform(16, 6, 7);
        let y = Matrix::random_uniform(16, 2, 8);
        let qr = Qr::factorize(&x).unwrap();
        let beta_qr = qr.solve_least_squares(&y).unwrap();
        // Normal equations: (XᵀX)⁻¹XᵀY.
        let xtx = x.transpose().try_matmul(&x).unwrap();
        let beta_ne = xtx
            .inverse()
            .unwrap()
            .try_matmul(&x.transpose().try_matmul(&y).unwrap())
            .unwrap();
        assert!(beta_qr.approx_eq(&beta_ne, 1e-7));
        assert!(qr.solve_least_squares(&Matrix::zeros(4, 1)).is_err());
    }

    #[test]
    fn exact_solve_on_square_systems() {
        let a = Matrix::random_diag_dominant(8, 9);
        let b = Matrix::random_col(8, 10);
        let qr = Qr::factorize(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let residual = a.try_matmul(&x).unwrap().try_sub(&b).unwrap();
        assert!(residual.max_abs() < 1e-9);
    }
}
