//! Packed, register-blocked GEMM — the tuned dense hot path.
//!
//! Every cost the paper compares — `O(nᵞ)` re-evaluation, `O(kn²)` rank-k
//! view folds, Strassen's base case — bottoms out in this multiply. The
//! kernel follows the BLIS/GotoBLAS design:
//!
//! 1. a three-level loop nest walks `C` in `NC`-wide column slabs (L3),
//!    `KC`-deep rank updates (packed `B` slab stays L2/L3-resident) and
//!    `MC`-tall row panels (packed `A` panel stays L2-resident);
//! 2. the `pack` module rewrites both operands into zero-padded
//!    micro-panels so the inner loop is branch-free and unit-stride;
//! 3. an `MR×NR` register-tile microkernel does the arithmetic — on AVX2
//!    hosts a hand-written intrinsics rendering holds the 6×8 f64 tile in
//!    twelve ymm accumulators, bit-identical to the portable body that
//!    remains the fallback and the reference;
//! 4. skinny `n×k · k×n` products (`k ≤ 16` — the shape every low-rank
//!    delta fold emits) skip the packed nest entirely and run the
//!    dedicated rank-k fast path (the in-crate `rankk` module).
//!
//! Parallelism comes from `MC`-row output chunks scheduled onto the
//! work-stealing queue of the persistent `pool` module, with the shared
//! packed-`B` slab built cooperatively by the same workers. Each chunk
//! replays the identical serial accumulation chain over its own rows, so
//! the parallel product is **bit-identical** to the serial one for every
//! thread count and every steal schedule, and results are reproducible
//! run-to-run by construction.
//!
//! [`GemmKernel`] names the whole kernel family; the process-wide default
//! (used by [`Matrix::try_matmul`]) is `Packed` and can be overridden
//! programmatically ([`set_default_kernel`]) or with the `LINVIEW_GEMM`
//! environment variable (an unrecognized value is surfaced through
//! [`env_kernel_error`] and otherwise ignored); thread count follows
//! [`set_gemm_threads`] / `LINVIEW_THREADS`.
//!
//! The opt-in [`GemmKernel::PackedFma`] mode (`LINVIEW_GEMM=packed-fma` /
//! `--gemm packed-fma`) swaps the microkernels for fused multiply-add
//! renderings: one rounding instead of two per multiply-add, so it is
//! faster and at least as accurate, but **not bit-comparable** to the
//! exact kernels — the differential suite holds it to ≤ 1e-10 relative
//! error against a Kahan-compensated oracle instead. Hosts without FMA
//! fall back to the exact renderings.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::pack::{pack_a, pack_b, pack_b_panels};
use crate::{flops, pool, rankk, Matrix, MatrixError, Result};

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 6;
/// Microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 8;
/// Rows of `A` packed per L2-resident panel (also the parallel row-chunk
/// height handed to the work-stealing queue).
const MC: usize = 128;
/// Depth of one packed rank-`KC` update.
const KC: usize = 256;
/// Columns of `B` packed per outer slab.
const NC: usize = 2048;

/// Products with at least this many multiply-adds fan out across the
/// worker pool; below it, thread handoff costs more than it saves.
pub(crate) const PARALLEL_THRESHOLD: usize = 96 * 96 * 96;

/// Below this many multiply-adds the packing passes cost more than they
/// save and the dispatcher falls back to the plain blocked kernel
/// (measured crossover on the bench host: ~48³).
pub(crate) const PACKED_MIN_WORK: usize = 48 * 48 * 48;

/// The dense multiplication kernels selectable at runtime.
///
/// All variants compute the same product. `Naive`, `Blocked` and `Packed`
/// differ only in constants and loop structure, never in floating-point
/// accumulation *grouping*: every one sums `k` in increasing index order
/// with plain mul-then-add, so they are mutually bit-identical (asserted
/// by the differential suite). `PackedFma` deliberately breaks that
/// contract — it fuses each multiply-add into a single rounding — and is
/// therefore opt-in; `Strassen` regroups the arithmetic algebraically and
/// agrees to roundoff rather than bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmKernel {
    /// Textbook `i-j-p` triple loop; the oracle the others are tested
    /// against.
    Naive,
    /// Cache-blocked `i-k-j` kernel (row bands on the pool above the
    /// parallel threshold) — the pre-packing hot path, kept for ablation.
    Blocked,
    /// Packed register-blocked microkernel (this module); the default.
    #[default]
    Packed,
    /// The packed kernel with fused-multiply-add microkernels: fastest and
    /// at least as accurate, but not bit-identical to the exact kernels.
    /// Opt-in via `LINVIEW_GEMM=packed-fma` / `--gemm packed-fma`.
    PackedFma,
    /// Strassen recursion (`γ = log₂ 7`) for square operands, its base
    /// case routed through the packed kernel; non-square shapes fall back
    /// to `Packed`.
    Strassen,
}

impl GemmKernel {
    /// Every kernel, in oracle-to-fastest order (as benched and tested).
    pub const ALL: [GemmKernel; 5] = [
        GemmKernel::Naive,
        GemmKernel::Blocked,
        GemmKernel::Packed,
        GemmKernel::PackedFma,
        GemmKernel::Strassen,
    ];

    /// Lower-case kernel name (CLI flag / `LINVIEW_GEMM` spelling).
    pub fn label(self) -> &'static str {
        match self {
            GemmKernel::Naive => "naive",
            GemmKernel::Blocked => "blocked",
            GemmKernel::Packed => "packed",
            GemmKernel::PackedFma => "packed-fma",
            GemmKernel::Strassen => "strassen",
        }
    }

    /// Parses a kernel name as accepted by `LINVIEW_GEMM` and `--gemm`,
    /// returning a typed [`MatrixError::UnknownKernel`] (which lists the
    /// valid spellings) when the name matches no kernel.
    pub fn from_name(name: &str) -> Result<GemmKernel> {
        let k = match name.trim().to_ascii_lowercase().as_str() {
            "naive" => GemmKernel::Naive,
            "blocked" => GemmKernel::Blocked,
            "packed" => GemmKernel::Packed,
            "packed-fma" | "packed_fma" => GemmKernel::PackedFma,
            "strassen" => GemmKernel::Strassen,
            _ => {
                return Err(MatrixError::UnknownKernel {
                    name: name.trim().to_string(),
                })
            }
        };
        Ok(k)
    }

    /// [`GemmKernel::from_name`] with the error flattened away, for
    /// callers that only need the yes/no answer.
    pub fn parse(name: &str) -> Option<GemmKernel> {
        GemmKernel::from_name(name).ok()
    }

    /// True when this kernel may fuse `a·b + c` into a single rounding —
    /// i.e. it trades the family's bit-identity contract for speed.
    pub fn fuses(self) -> bool {
        matches!(self, GemmKernel::PackedFma)
    }
}

impl std::fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sentinel for "no programmatic kernel override".
const KERNEL_UNSET: u8 = u8::MAX;
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(KERNEL_UNSET);
/// `LINVIEW_GEMM`, read once per process: `None` when unset, `Ok` when it
/// named a kernel, `Err(raw value)` when it named nothing.
static ENV_KERNEL: OnceLock<Option<std::result::Result<GemmKernel, String>>> = OnceLock::new();

/// Sentinel 0 = "no programmatic thread override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `LINVIEW_THREADS`, read once per process: `None` when unset, `Ok` when
/// it named a positive thread count, `Err(raw value)` when it was zero or
/// unparsable.
static ENV_THREADS: OnceLock<Option<std::result::Result<usize, String>>> = OnceLock::new();

fn encode(k: GemmKernel) -> u8 {
    match k {
        GemmKernel::Naive => 0,
        GemmKernel::Blocked => 1,
        GemmKernel::Packed => 2,
        GemmKernel::Strassen => 3,
        GemmKernel::PackedFma => 4,
    }
}

fn decode(v: u8) -> Option<GemmKernel> {
    GemmKernel::ALL.into_iter().find(|&k| encode(k) == v)
}

fn env_kernel() -> &'static Option<std::result::Result<GemmKernel, String>> {
    ENV_KERNEL.get_or_init(|| {
        std::env::var("LINVIEW_GEMM")
            .ok()
            .map(|raw| GemmKernel::from_name(&raw).map_err(|_| raw))
    })
}

/// The kernel [`Matrix::try_matmul`] dispatches to.
///
/// Precedence: the last [`set_default_kernel`] call, else `LINVIEW_GEMM`
/// (read once per process; unknown values are ignored — see
/// [`env_kernel_error`]), else [`GemmKernel::Packed`].
pub fn default_kernel() -> GemmKernel {
    if let Some(k) = decode(KERNEL_OVERRIDE.load(Ordering::Relaxed)) {
        return k;
    }
    env_kernel()
        .as_ref()
        .and_then(|r| r.as_ref().ok())
        .copied()
        .unwrap_or_default()
}

/// The parse error for a `LINVIEW_GEMM` value that named no kernel, if the
/// variable was set to one.
///
/// [`default_kernel`] silently falls back to the default in that case (a
/// library must not write to stderr); front ends should call this once at
/// startup and surface the error as a warning so a typo'd
/// `LINVIEW_GEMM=packd` does not quietly benchmark the wrong kernel.
pub fn env_kernel_error() -> Option<MatrixError> {
    env_kernel()
        .as_ref()
        .and_then(|r| r.as_ref().err())
        .map(|raw| MatrixError::UnknownKernel {
            name: raw.trim().to_string(),
        })
}

/// Overrides the process-wide default kernel (`None` restores the
/// `LINVIEW_GEMM` / built-in default).
pub fn set_default_kernel(kernel: Option<GemmKernel>) {
    let v = kernel.map(encode).unwrap_or(KERNEL_UNSET);
    KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The thread budget parallel kernels may use.
///
/// Precedence: the last [`set_gemm_threads`] call, else `LINVIEW_THREADS`
/// (read once per process; zero or non-numeric values are *invalid* and
/// fall back to auto — see [`env_threads_error`]), else the machine's
/// available parallelism. Always ≥ 1. The answer only affects wall-clock:
/// row-chunk parallelism makes every thread count produce bit-identical
/// results.
pub fn gemm_threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    env_threads()
        .as_ref()
        .and_then(|r| r.as_ref().ok())
        .copied()
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn env_threads() -> &'static Option<std::result::Result<usize, String>> {
    ENV_THREADS.get_or_init(|| {
        std::env::var("LINVIEW_THREADS")
            .ok()
            .map(|raw| match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(raw),
            })
    })
}

/// The parse error for a `LINVIEW_THREADS` value that was zero or not a
/// number, if the variable was set to one.
///
/// [`gemm_threads`] silently falls back to auto-detected parallelism in
/// that case (a library must not write to stderr); front ends should call
/// this once at startup and surface it as a warning — mirroring
/// [`env_kernel_error`] — so `LINVIEW_THREADS=0` or `=max` does not
/// quietly run on a default-sized pool the operator never chose.
pub fn env_threads_error() -> Option<MatrixError> {
    env_threads()
        .as_ref()
        .and_then(|r| r.as_ref().err())
        .map(|raw| MatrixError::InvalidThreadBudget {
            value: raw.trim().to_string(),
        })
}

/// Overrides the GEMM thread budget (`None` restores the `LINVIEW_THREADS`
/// / auto default; `Some(0)` is treated as `Some(1)`).
pub fn set_gemm_threads(threads: Option<usize>) {
    THREADS_OVERRIDE.store(threads.map(|n| n.max(1)).unwrap_or(0), Ordering::Relaxed);
}

static FORCE_PORTABLE: AtomicBool = AtomicBool::new(false);

/// Ablation/testing knob: forces the portable (non-intrinsics) microkernel
/// renderings even on hosts with AVX2/FMA.
///
/// The exact renderings are bit-identical either way — this knob is how
/// that claim is tested. Forcing portable under [`GemmKernel::PackedFma`]
/// also disables fusion (the portable body never fuses), which is the same
/// fallback hosts without FMA take.
pub fn force_portable_microkernel(on: bool) {
    FORCE_PORTABLE.store(on, Ordering::Relaxed);
}

pub(crate) fn portable_forced() -> bool {
    FORCE_PORTABLE.load(Ordering::Relaxed)
}

static DISABLE_RANK_K: AtomicBool = AtomicBool::new(false);

/// Ablation/benchmarking knob: routes skinny rank-k shapes through the
/// general packed nest instead of the dedicated rank-k fast path.
///
/// The bench harness uses this to measure the fast path's speedup against
/// the nest on identical shapes, and the differential suite to assert the
/// two paths agree bitwise.
pub fn force_general_nest(on: bool) {
    DISABLE_RANK_K.store(on, Ordering::Relaxed);
}

pub(crate) fn rank_k_disabled() -> bool {
    DISABLE_RANK_K.load(Ordering::Relaxed)
}

/// Whether a kernel rendering may fuse `a·b + c` into one rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fuse {
    /// Plain mul-then-add — the bit-identity contract the exact kernels
    /// share.
    Exact,
    /// Fused multiply-add allowed ([`GemmKernel::PackedFma`]): not
    /// bit-comparable to `Exact`, held to ≤ 1e-10 of the Kahan oracle by
    /// the differential suite.
    Fused,
}

/// True when the host can run the AVX2 microkernel renderings.
pub(crate) fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the host can run the fused (AVX2 + FMA) renderings.
pub(crate) fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static FMA: OnceLock<bool> = OnceLock::new();
        *FMA.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Serializes unit tests that mutate process-wide kernel state (the
/// kernel/thread overrides, the microkernel/rank-k knobs and the global
/// FLOP counter), so they cannot race each other under the default
/// parallel test runner.
#[cfg(test)]
pub(crate) fn test_config_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The `MR×NR` register-tile loop: a full-depth dot-product block over
/// one packed `A` micro-panel (`kc·MR` values) and one packed `B`
/// micro-panel (`kc·NR` values). Fixed trip counts let LLVM fully unroll
/// the tile and keep `acc` in vector registers; the arithmetic is plain
/// mul-then-add (never fused), so every instruction-set rendering of this
/// body computes bit-identical results. This portable body is the
/// reference the intrinsics renderings are differenced against.
#[inline(always)]
fn microkernel_portable(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (arow, &ai) in acc.iter_mut().zip(a) {
            for (o, &bv) in arow.iter_mut().zip(b) {
                *o += ai * bv;
            }
        }
    }
    acc
}

/// Loads `s[0..4]` into one ymm register (unaligned load).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
fn load4(s: &[f64]) -> std::arch::x86_64::__m256d {
    debug_assert!(s.len() >= 4);
    let p = s.as_ptr();
    // SAFETY: `s` is a borrowed slice of at least 4 f64s (asserted above;
    // every caller passes an exact 4-wide subslice), so `p` points at 16
    // readable, initialized bytes ×2. `loadu` has no alignment demand.
    unsafe { std::arch::x86_64::_mm256_loadu_pd(p) }
}

/// Stores one ymm register into `d[0..4]` (unaligned store).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
fn store4(d: &mut [f64], v: std::arch::x86_64::__m256d) {
    debug_assert!(d.len() >= 4);
    let p = d.as_mut_ptr();
    // SAFETY: `d` is a uniquely borrowed slice of at least 4 f64s
    // (asserted above; every caller passes an exact 4-wide subslice), so
    // `p` points at 32 writable bytes. `storeu` has no alignment demand.
    unsafe { std::arch::x86_64::_mm256_storeu_pd(p, v) }
}

/// Spills the twelve-ymm accumulator tile back to a scalar `MR×NR` array.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
fn spill(acc: &[[std::arch::x86_64::__m256d; 2]; MR]) -> [[f64; NR]; MR] {
    let mut out = [[0.0f64; NR]; MR];
    for (orow, arow) in out.iter_mut().zip(acc) {
        store4(&mut orow[..4], arow[0]);
        store4(&mut orow[4..], arow[1]);
    }
    out
}

/// [`microkernel_portable`] hand-rendered in AVX2 intrinsics: the 6×8 f64
/// tile lives in twelve ymm accumulators (two per `A` lane), with one
/// broadcast and two mul/add pairs per lane per `k` step. The arithmetic
/// is the same plain mul-then-add chain in the same order as the portable
/// body — FMA is *not* used — so this rendering is bit-identical to it
/// (asserted by the differential suite via [`force_portable_microkernel`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,avx2")]
fn microkernel_avx2(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    use std::arch::x86_64::{_mm256_add_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd};
    let mut acc = [[_mm256_setzero_pd(); 2]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let b0 = load4(&b[..4]);
        let b1 = load4(&b[4..]);
        for (arow, &ai) in acc.iter_mut().zip(a) {
            let av = _mm256_set1_pd(ai);
            arow[0] = _mm256_add_pd(arow[0], _mm256_mul_pd(av, b0));
            arow[1] = _mm256_add_pd(arow[1], _mm256_mul_pd(av, b1));
        }
    }
    spill(&acc)
}

/// [`microkernel_avx2`] with the mul/add pairs fused into `vfmadd`: one
/// rounding per multiply-add and half the arithmetic µops. Only reachable
/// through [`GemmKernel::PackedFma`] — fusing changes low-order bits, so
/// this rendering is differential-tested against the Kahan oracle rather
/// than asserted bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,avx2,fma")]
fn microkernel_fma(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    use std::arch::x86_64::{_mm256_fmadd_pd, _mm256_set1_pd, _mm256_setzero_pd};
    let mut acc = [[_mm256_setzero_pd(); 2]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let b0 = load4(&b[..4]);
        let b1 = load4(&b[4..]);
        for (arow, &ai) in acc.iter_mut().zip(a) {
            let av = _mm256_set1_pd(ai);
            arow[0] = _mm256_fmadd_pd(av, b0, arow[0]);
            arow[1] = _mm256_fmadd_pd(av, b1, arow[1]);
        }
    }
    spill(&acc)
}

/// Picks the fastest microkernel rendering compatible with `fuse` that the
/// host supports (decided once per process). `Exact` renderings are
/// mutually bit-identical; `Fused` takes the FMA rendering when the host
/// has it and falls back to the exact rendering otherwise.
#[inline]
fn microkernel(ap: &[f64], bp: &[f64], fuse: Fuse) -> [[f64; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    if !portable_forced() {
        if fuse == Fuse::Fused && fma_available() {
            // SAFETY: `fma_available` verified AVX2+FMA on this host.
            return unsafe { microkernel_fma(ap, bp) };
        }
        if avx2_available() {
            // SAFETY: `avx2_available` verified AVX2 on this host.
            return unsafe { microkernel_avx2(ap, bp) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = fuse;
    microkernel_portable(ap, bp)
}

/// One `MC`-block of microkernel calls against an already-packed `B` slab:
/// packs `A[r0..r0+mc][pc..pc+kc]` into `abuf` and accumulates the block's
/// contribution into `out_rows` (the block's `mc` full-width output rows,
/// written at columns `jc..jc+nc`).
#[allow(clippy::too_many_arguments)]
fn packed_block(
    a: &Matrix,
    r0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bbuf: &[f64],
    out_rows: &mut [f64],
    n: usize,
    abuf: &mut Vec<f64>,
    fuse: Fuse,
) {
    pack_a(a, r0, mc, pc, kc, MR, abuf);
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let bp = &bbuf[(jr / NR) * kc * NR..][..kc * NR];
        for ir in (0..mc).step_by(MR) {
            let mr = MR.min(mc - ir);
            let ap = &abuf[(ir / MR) * kc * MR..][..kc * MR];
            let acc = microkernel(ap, bp, fuse);
            for (i, arow) in acc.iter().enumerate().take(mr) {
                let row = &mut out_rows[(ir + i) * n + jc + jr..][..nr];
                for (o, &v) in row.iter_mut().zip(arow) {
                    *o += v;
                }
            }
        }
    }
}

/// The serial packed loop nest over one row band: computes
/// `C[r0..r0+mc_total][..] += A[r0..r0+mc_total][..] · B` into `out`, a
/// row-major `mc_total × n` buffer.
fn packed_band(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize, mc_total: usize, fuse: Fuse) {
    let k = a.cols();
    let n = b.cols();
    let mut abuf = Vec::new();
    let mut bbuf = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, pc, kc, jc, nc, NR, &mut bbuf);
            for ic in (0..mc_total).step_by(MC) {
                let mc = MC.min(mc_total - ic);
                packed_block(
                    a,
                    r0 + ic,
                    mc,
                    pc,
                    kc,
                    jc,
                    nc,
                    &bbuf,
                    &mut out[ic * n..(ic + mc) * n],
                    n,
                    &mut abuf,
                    fuse,
                );
            }
        }
    }
}

/// The parallel packed nest: `MC`-row output chunks run on the pool's
/// work-stealing queue, and the shared packed-`B` slab is built
/// cooperatively (disjoint panel ranges) by the same workers before each
/// rank-`KC` update. Chunks own disjoint output rows and each replays the
/// serial nest's per-element accumulation chain, so any worker-to-chunk
/// assignment — including mid-flight steals — is bit-identical to the
/// serial product. This replaces the one-coarse-band-per-thread split,
/// whose ragged tail left the barrier stalled on a single worker.
fn packed_parallel(a: &Matrix, b: &Matrix, out: &mut [f64], threads: usize, fuse: Fuse) {
    let (m, k) = a.shape();
    let n = b.cols();
    // Chunk height: at most MC (one packed A panel), shrunk so every
    // worker sees ~4 chunks of stealable granularity, MR-aligned for full
    // register tiles. The split never affects output bits — rows are
    // independent in the nest, so any chunking replays the same
    // per-element accumulation chains.
    let chunk_rows = MC.min(m.div_ceil(4 * threads).next_multiple_of(MR)).max(MR);
    let cells: Vec<Mutex<&mut [f64]>> = out.chunks_mut(chunk_rows * n).map(Mutex::new).collect();
    let workers = threads.min(cells.len()).max(1);
    // Per-worker `A`-panel scratch: each worker locks only its own slot
    // (uncontended), reusing the allocation across chunks and slabs.
    let scratch: Vec<Mutex<Vec<f64>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let mut bbuf: Vec<f64> = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panels = nc.div_ceil(NR);
            bbuf.clear();
            bbuf.resize(panels * kc * NR, 0.0);
            {
                // Parallel B packing: disjoint panel ranges of the slab,
                // a few cells per worker so a slow worker can be robbed.
                let per_cell = panels.div_ceil(4 * workers).max(1);
                let bcells: Vec<Mutex<&mut [f64]>> = bbuf
                    .chunks_mut(per_cell * kc * NR)
                    .map(Mutex::new)
                    .collect();
                pool::run_stealing(workers, bcells.len(), &|_, c| {
                    let mut dst = bcells[c].lock().expect("pack cell poisoned");
                    let count = dst.len() / (kc * NR);
                    pack_b_panels(b, pc, kc, jc, nc, NR, c * per_cell, count, &mut dst[..]);
                });
            }
            let bbuf = &bbuf;
            let scratch = &scratch;
            pool::run_stealing(workers, cells.len(), &|w, c| {
                let mut rows = cells[c].lock().expect("row chunk poisoned");
                let mc = rows.len() / n;
                let mut abuf = scratch[w].lock().expect("scratch poisoned");
                packed_block(
                    a,
                    c * chunk_rows,
                    mc,
                    pc,
                    kc,
                    jc,
                    nc,
                    bbuf,
                    &mut rows[..],
                    n,
                    &mut abuf,
                    fuse,
                );
            });
        }
    }
}

/// The packed product `a · b` (shapes already validated, FLOPs already
/// counted by the caller). Skinny `k ≤ 16` products take the dedicated
/// rank-k fast path; everything else runs the packed nest, fanning
/// `MC`-row chunks out across the work-stealing pool when the product is
/// heavy and more than one thread is budgeted. With `Fuse::Exact` the
/// result is bit-identical for every thread count and to every other exact
/// kernel.
pub(crate) fn packed_matmul(a: &Matrix, b: &Matrix, fuse: Fuse) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    if rankk::eligible(m, k, n) && !rank_k_disabled() {
        return rankk::rank_k_matmul(a, b, fuse);
    }
    let mut out = Matrix::zeros(m, n);
    let threads = gemm_threads().min(m.div_ceil(MR).max(1));
    if threads <= 1 || m * k * n < PARALLEL_THRESHOLD {
        packed_band(a, b, out.as_mut_slice(), 0, m, fuse);
        return out;
    }
    packed_parallel(a, b, out.as_mut_slice(), threads, fuse);
    out
}

impl Matrix {
    /// General matrix product through an explicit [`GemmKernel`].
    ///
    /// `Naive`, `Blocked`, `Packed` and `PackedFma` run exactly the named
    /// kernel (no size-based dispatch — this is the differential-testing
    /// entry point; the packed kernels still route eligible skinny shapes
    /// to their rank-k fast path, which is part of the kernel, not a
    /// fallback) and count `2·m·k·n` FLOPs. `Strassen` requires square,
    /// equally-shaped operands to recurse (counting its own, fewer, FLOPs)
    /// and otherwise falls back to the packed kernel.
    pub fn matmul_with(&self, rhs: &Matrix, kernel: GemmKernel) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        match kernel {
            GemmKernel::Strassen if self.is_square() && self.shape() == rhs.shape() => {
                self.matmul_strassen(rhs)
            }
            GemmKernel::Naive => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(naive_matmul(self, rhs))
            }
            GemmKernel::Blocked => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(self.blocked_matmul_auto(rhs))
            }
            GemmKernel::Packed | GemmKernel::Strassen => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(packed_matmul(self, rhs, Fuse::Exact))
            }
            GemmKernel::PackedFma => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(packed_matmul(self, rhs, Fuse::Fused))
            }
        }
    }

    /// The packed register-blocked product (counts `2·m·k·n` FLOPs).
    /// Equivalent to [`Matrix::matmul_with`] with [`GemmKernel::Packed`].
    pub fn matmul_packed(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with(rhs, GemmKernel::Packed)
    }
}

/// Textbook `i-j-p` product — the f64 oracle.
pub(crate) fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn kernel_labels_roundtrip_through_parse() {
        for k in GemmKernel::ALL {
            assert_eq!(GemmKernel::parse(k.label()), Some(k));
            assert_eq!(GemmKernel::parse(&k.label().to_uppercase()), Some(k));
        }
        assert_eq!(GemmKernel::parse("turbo"), None);
        assert_eq!(format!("{}", GemmKernel::Packed), "packed");
        assert_eq!(format!("{}", GemmKernel::PackedFma), "packed-fma");
    }

    #[test]
    fn from_name_returns_a_typed_error_listing_the_kernels() {
        assert_eq!(
            GemmKernel::from_name(" Packed-FMA "),
            Ok(GemmKernel::PackedFma)
        );
        let err = GemmKernel::from_name("turbo").unwrap_err();
        assert_eq!(
            err,
            MatrixError::UnknownKernel {
                name: "turbo".to_string()
            }
        );
        let msg = err.to_string();
        for k in GemmKernel::ALL {
            assert!(msg.contains(k.label()), "{msg:?} must list {k}");
        }
    }

    #[test]
    fn only_the_fma_kernel_fuses() {
        for k in GemmKernel::ALL {
            assert_eq!(k.fuses(), k == GemmKernel::PackedFma, "{k}");
        }
    }

    #[test]
    fn default_kernel_override_wins_and_resets() {
        let _guard = test_config_lock();
        let before = default_kernel();
        set_default_kernel(Some(GemmKernel::Naive));
        assert_eq!(default_kernel(), GemmKernel::Naive);
        set_default_kernel(None);
        assert_eq!(default_kernel(), before);
    }

    #[test]
    fn thread_override_wins_and_resets() {
        let _guard = test_config_lock();
        set_gemm_threads(Some(3));
        assert_eq!(gemm_threads(), 3);
        set_gemm_threads(Some(0));
        assert_eq!(gemm_threads(), 1);
        set_gemm_threads(None);
        assert!(gemm_threads() >= 1);
    }

    #[test]
    fn packed_matches_naive_on_rectangular_shapes() {
        for (m, k, n, seed) in [
            (17, 33, 9, 1),
            (64, 64, 64, 2),
            (5, 200, 3, 3),
            (1, 1, 1, 4),
        ] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 100);
            let packed = a.matmul_packed(&b).unwrap();
            let oracle = naive_matmul(&a, &b);
            assert!(packed.approx_eq(&oracle, 1e-10), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_fma_matches_naive_on_rectangular_shapes() {
        for (m, k, n, seed) in [(17, 33, 9, 1), (64, 64, 64, 2), (130, 4, 70, 3)] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 100);
            let fused = a.matmul_with(&b, GemmKernel::PackedFma).unwrap();
            let oracle = naive_matmul(&a, &b);
            assert!(fused.approx_eq(&oracle, 1e-10), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_handles_empty_dimensions() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(a.matmul_packed(&b).unwrap().shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul_packed(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packed_parallel_is_bit_identical_to_serial() {
        let _guard = test_config_lock();
        // Past the parallel threshold so the stealing path actually runs,
        // with k > 16 so the nest (not the rank-k path) is exercised.
        let n = 128;
        let a = Matrix::random_uniform(n, n, 7);
        let b = Matrix::random_uniform(n, n, 8);
        set_gemm_threads(Some(1));
        let serial = a.matmul_packed(&b).unwrap();
        set_gemm_threads(Some(4));
        let parallel = a.matmul_packed(&b).unwrap();
        set_gemm_threads(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn intrinsics_and_portable_renderings_agree_bitwise() {
        let _guard = test_config_lock();
        // Shapes straddling the register tiles and the KC blocking, plus a
        // parallel-threshold-crossing square; k > 16 keeps the nest (the
        // rank-k path has its own portable-vs-intrinsics test in-module).
        for (m, k, n, seed) in [
            (MR + 1, 37, NR + 3, 1),
            (64, 300, 40, 2),
            (128, 128, 128, 3),
        ] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 9);
            let simd = a.matmul_packed(&b).unwrap();
            force_portable_microkernel(true);
            let portable = a.matmul_packed(&b).unwrap();
            force_portable_microkernel(false);
            assert_eq!(simd, portable, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn rank_k_fast_path_is_bit_identical_to_the_general_nest() {
        let _guard = test_config_lock();
        for (m, k, n, seed) in [(64, 1, 64, 1), (97, 4, 130, 2), (200, 16, 77, 3)] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 50);
            let fast = a.matmul_packed(&b).unwrap();
            force_general_nest(true);
            let nest = a.matmul_packed(&b).unwrap();
            force_general_nest(false);
            assert_eq!(fast, nest, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_with_counts_exact_flops_for_cubic_kernels() {
        let _guard = test_config_lock();
        let a = Matrix::random_uniform(13, 21, 9);
        let b = Matrix::random_uniform(21, 7, 10);
        for kernel in [
            GemmKernel::Naive,
            GemmKernel::Blocked,
            GemmKernel::Packed,
            GemmKernel::PackedFma,
        ] {
            let before = flops::read();
            a.matmul_with(&b, kernel).unwrap();
            assert_eq!(flops::read() - before, 2 * 13 * 21 * 7, "{kernel}");
        }
    }

    #[test]
    fn strassen_kernel_falls_back_to_packed_on_rectangular() {
        let a = Matrix::random_uniform(12, 20, 11);
        let b = Matrix::random_uniform(20, 6, 12);
        let via_strassen = a.matmul_with(&b, GemmKernel::Strassen).unwrap();
        assert!(via_strassen.approx_eq(&naive_matmul(&a, &b), 1e-10));
    }

    #[test]
    fn matmul_with_rejects_dim_mismatch_for_every_kernel() {
        let a = Matrix::zeros(2, 3);
        for kernel in GemmKernel::ALL {
            assert!(a.matmul_with(&a, kernel).is_err(), "{kernel}");
        }
    }
}
