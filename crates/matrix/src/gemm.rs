//! Packed, register-blocked GEMM — the tuned dense hot path.
//!
//! Every cost the paper compares — `O(nᵞ)` re-evaluation, `O(kn²)` rank-k
//! view folds, Strassen's base case — bottoms out in this multiply. The
//! kernel follows the BLIS/GotoBLAS design:
//!
//! 1. a three-level loop nest walks `C` in `NC`-wide column slabs (L3),
//!    `KC`-deep rank updates (packed `B` slab stays L2/L3-resident) and
//!    `MC`-tall row panels (packed `A` panel stays L2-resident);
//! 2. the `pack` module rewrites both operands into zero-padded
//!    micro-panels so the inner loop is branch-free and unit-stride;
//! 3. an `MR×NR` register-tile microkernel with fixed trip counts does the
//!    arithmetic — LLVM fully unrolls and auto-vectorizes it, no
//!    intrinsics required.
//!
//! Parallelism comes from splitting the `M` dimension into `MR`-aligned
//! row bands executed on the persistent `pool` module — each band
//! runs the identical serial loop nest over its own rows, so the parallel
//! product is **bit-identical** to the serial one for every thread count,
//! and results are reproducible run-to-run by construction.
//!
//! [`GemmKernel`] names the whole kernel family; the process-wide default
//! (used by [`Matrix::try_matmul`]) is `Packed` and can be overridden
//! programmatically ([`set_default_kernel`]) or with the `LINVIEW_GEMM`
//! environment variable; thread count follows [`set_gemm_threads`] /
//! `LINVIEW_THREADS`.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::pack::{pack_a, pack_b};
use crate::{flops, pool, Matrix, MatrixError, Result};

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 6;
/// Microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 8;
/// Rows of `A` packed per L2-resident panel.
const MC: usize = 128;
/// Depth of one packed rank-`KC` update.
const KC: usize = 256;
/// Columns of `B` packed per outer slab.
const NC: usize = 2048;

/// Products with at least this many multiply-adds fan out across the
/// worker pool; below it, thread handoff costs more than it saves.
pub(crate) const PARALLEL_THRESHOLD: usize = 96 * 96 * 96;

/// Below this many multiply-adds the packing passes cost more than they
/// save and the dispatcher falls back to the plain blocked kernel
/// (measured crossover on the bench host: ~48³).
pub(crate) const PACKED_MIN_WORK: usize = 48 * 48 * 48;

/// The dense multiplication kernels selectable at runtime.
///
/// All variants compute the same product; they differ in constants and in
/// floating-point accumulation *grouping* (every kernel sums `k` in
/// increasing index order, so results agree to roundoff and are each
/// individually deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmKernel {
    /// Textbook `i-j-p` triple loop; the oracle the others are tested
    /// against.
    Naive,
    /// Cache-blocked `i-k-j` kernel (row bands on the pool above the
    /// parallel threshold) — the pre-packing hot path, kept for ablation.
    Blocked,
    /// Packed register-blocked microkernel (this module); the default.
    #[default]
    Packed,
    /// Strassen recursion (`γ = log₂ 7`) for square operands, its base
    /// case routed through the packed kernel; non-square shapes fall back
    /// to `Packed`.
    Strassen,
}

impl GemmKernel {
    /// Every kernel, in oracle-to-fastest order (as benched and tested).
    pub const ALL: [GemmKernel; 4] = [
        GemmKernel::Naive,
        GemmKernel::Blocked,
        GemmKernel::Packed,
        GemmKernel::Strassen,
    ];

    /// Lower-case kernel name (CLI flag / `LINVIEW_GEMM` spelling).
    pub fn label(self) -> &'static str {
        match self {
            GemmKernel::Naive => "naive",
            GemmKernel::Blocked => "blocked",
            GemmKernel::Packed => "packed",
            GemmKernel::Strassen => "strassen",
        }
    }

    /// Parses a kernel name as accepted by `LINVIEW_GEMM` and `--gemm`.
    pub fn parse(name: &str) -> Option<GemmKernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "naive" => Some(GemmKernel::Naive),
            "blocked" => Some(GemmKernel::Blocked),
            "packed" => Some(GemmKernel::Packed),
            "strassen" => Some(GemmKernel::Strassen),
            _ => None,
        }
    }
}

impl std::fmt::Display for GemmKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sentinel for "no programmatic kernel override".
const KERNEL_UNSET: u8 = u8::MAX;
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(KERNEL_UNSET);
/// `LINVIEW_GEMM`, read once per process.
static ENV_KERNEL: OnceLock<Option<GemmKernel>> = OnceLock::new();

/// Sentinel 0 = "no programmatic thread override".
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// `LINVIEW_THREADS`, read once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

fn encode(k: GemmKernel) -> u8 {
    match k {
        GemmKernel::Naive => 0,
        GemmKernel::Blocked => 1,
        GemmKernel::Packed => 2,
        GemmKernel::Strassen => 3,
    }
}

fn decode(v: u8) -> Option<GemmKernel> {
    GemmKernel::ALL.into_iter().find(|&k| encode(k) == v)
}

/// The kernel [`Matrix::try_matmul`] dispatches to.
///
/// Precedence: the last [`set_default_kernel`] call, else `LINVIEW_GEMM`
/// (read once per process; unknown values are ignored), else
/// [`GemmKernel::Packed`].
pub fn default_kernel() -> GemmKernel {
    if let Some(k) = decode(KERNEL_OVERRIDE.load(Ordering::Relaxed)) {
        return k;
    }
    ENV_KERNEL
        .get_or_init(|| {
            std::env::var("LINVIEW_GEMM")
                .ok()
                .as_deref()
                .and_then(GemmKernel::parse)
        })
        .unwrap_or_default()
}

/// Overrides the process-wide default kernel (`None` restores the
/// `LINVIEW_GEMM` / built-in default).
pub fn set_default_kernel(kernel: Option<GemmKernel>) {
    let v = kernel.map(encode).unwrap_or(KERNEL_UNSET);
    KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The thread budget parallel kernels may use.
///
/// Precedence: the last [`set_gemm_threads`] call, else `LINVIEW_THREADS`
/// (read once per process; non-numeric or zero values are ignored), else
/// the machine's available parallelism. Always ≥ 1. The answer only
/// affects wall-clock: row-band parallelism makes every thread count
/// produce bit-identical results.
pub fn gemm_threads() -> usize {
    let forced = THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    ENV_THREADS
        .get_or_init(|| {
            std::env::var("LINVIEW_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Overrides the GEMM thread budget (`None` restores the `LINVIEW_THREADS`
/// / auto default; `Some(0)` is treated as `Some(1)`).
pub fn set_gemm_threads(threads: Option<usize>) {
    THREADS_OVERRIDE.store(threads.map(|n| n.max(1)).unwrap_or(0), Ordering::Relaxed);
}

/// Serializes unit tests that mutate process-wide kernel state (the
/// kernel/thread overrides and the global FLOP counter), so they cannot
/// race each other under the default parallel test runner.
#[cfg(test)]
pub(crate) fn test_config_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The `MR×NR` register-tile loop: a full-depth dot-product block over
/// one packed `A` micro-panel (`kc·MR` values) and one packed `B`
/// micro-panel (`kc·NR` values). Fixed trip counts let LLVM fully unroll
/// the tile and keep `acc` in vector registers; the arithmetic is plain
/// mul-then-add (never fused), so every instruction-set rendering of this
/// body computes bit-identical results.
#[inline(always)]
fn microkernel_body(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (arow, &ai) in acc.iter_mut().zip(a) {
            for (o, &bv) in arow.iter_mut().zip(b) {
                *o += ai * bv;
            }
        }
    }
    acc
}

/// [`microkernel_body`] compiled for AVX2: the 6×8 f64 tile fits in
/// twelve ymm accumulators instead of spilling twenty-four xmm ones. FMA
/// is *not* enabled — Rust never contracts `a*b + c`, so this path is
/// bit-identical to the baseline rendering (asserted in tests).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,avx2")]
unsafe fn microkernel_avx2(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    microkernel_body(ap, bp)
}

/// Picks the widest microkernel rendering the host supports (decided once
/// per process; the choice affects speed only, never output bits).
#[inline]
fn microkernel(ap: &[f64], bp: &[f64]) -> [[f64; NR]; MR] {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        if *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2")) {
            // SAFETY: gated on runtime AVX2 detection.
            return unsafe { microkernel_avx2(ap, bp) };
        }
    }
    microkernel_body(ap, bp)
}

/// The serial packed loop nest over one row band: computes
/// `C[r0..r0+mc_total][..] += A[r0..r0+mc_total][..] · B` into `out`, a
/// row-major `mc_total × n` buffer.
fn packed_band(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize, mc_total: usize) {
    let k = a.cols();
    let n = b.cols();
    let mut abuf = Vec::new();
    let mut bbuf = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, pc, kc, jc, nc, NR, &mut bbuf);
            for ic in (0..mc_total).step_by(MC) {
                let mc = MC.min(mc_total - ic);
                pack_a(a, r0 + ic, mc, pc, kc, MR, &mut abuf);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bbuf[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &abuf[(ir / MR) * kc * MR..][..kc * MR];
                        let acc = microkernel(ap, bp);
                        for (i, arow) in acc.iter().enumerate().take(mr) {
                            let row = &mut out[(ic + ir + i) * n + jc + jr..][..nr];
                            for (o, &v) in row.iter_mut().zip(arow) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The packed product `a · b` (shapes already validated, FLOPs already
/// counted by the caller). Fans row bands out across the persistent pool
/// when the product is heavy and more than one thread is budgeted; the
/// result is bit-identical for every thread count.
pub(crate) fn packed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let bands = m.div_ceil(MR).max(1);
    let threads = gemm_threads().min(bands);
    if threads <= 1 || m * k * n < PARALLEL_THRESHOLD {
        packed_band(a, b, out.as_mut_slice(), 0, m);
        return out;
    }
    // MR-aligned row bands: each band's serial loop nest touches exactly
    // the accumulation chain the single-threaded nest would, so the split
    // never changes a bit of the output.
    let band = m.div_ceil(threads).div_ceil(MR) * MR;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest = out.as_mut_slice();
    let mut r0 = 0;
    while r0 < m {
        let h = band.min(m - r0);
        let (head, tail) = rest.split_at_mut(h * n);
        tasks.push(Box::new(move || packed_band(a, b, head, r0, h)));
        rest = tail;
        r0 += h;
    }
    pool::run_scoped(tasks);
    out
}

impl Matrix {
    /// General matrix product through an explicit [`GemmKernel`].
    ///
    /// `Naive`, `Blocked` and `Packed` run exactly the named kernel
    /// (no size-based dispatch — this is the differential-testing entry
    /// point) and count `2·m·k·n` FLOPs. `Strassen` requires square,
    /// equally-shaped operands to recurse (counting its own, fewer, FLOPs)
    /// and otherwise falls back to the packed kernel.
    pub fn matmul_with(&self, rhs: &Matrix, kernel: GemmKernel) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        match kernel {
            GemmKernel::Strassen if self.is_square() && self.shape() == rhs.shape() => {
                self.matmul_strassen(rhs)
            }
            GemmKernel::Naive => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(naive_matmul(self, rhs))
            }
            GemmKernel::Blocked => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(self.blocked_matmul_auto(rhs))
            }
            GemmKernel::Packed | GemmKernel::Strassen => {
                flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
                Ok(packed_matmul(self, rhs))
            }
        }
    }

    /// The packed register-blocked product (counts `2·m·k·n` FLOPs).
    /// Equivalent to [`Matrix::matmul_with`] with [`GemmKernel::Packed`].
    pub fn matmul_packed(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with(rhs, GemmKernel::Packed)
    }
}

/// Textbook `i-j-p` product — the f64 oracle.
pub(crate) fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn kernel_labels_roundtrip_through_parse() {
        for k in GemmKernel::ALL {
            assert_eq!(GemmKernel::parse(k.label()), Some(k));
            assert_eq!(GemmKernel::parse(&k.label().to_uppercase()), Some(k));
        }
        assert_eq!(GemmKernel::parse("turbo"), None);
        assert_eq!(format!("{}", GemmKernel::Packed), "packed");
    }

    #[test]
    fn default_kernel_override_wins_and_resets() {
        let _guard = test_config_lock();
        let before = default_kernel();
        set_default_kernel(Some(GemmKernel::Naive));
        assert_eq!(default_kernel(), GemmKernel::Naive);
        set_default_kernel(None);
        assert_eq!(default_kernel(), before);
    }

    #[test]
    fn thread_override_wins_and_resets() {
        let _guard = test_config_lock();
        set_gemm_threads(Some(3));
        assert_eq!(gemm_threads(), 3);
        set_gemm_threads(Some(0));
        assert_eq!(gemm_threads(), 1);
        set_gemm_threads(None);
        assert!(gemm_threads() >= 1);
    }

    #[test]
    fn packed_matches_naive_on_rectangular_shapes() {
        for (m, k, n, seed) in [
            (17, 33, 9, 1),
            (64, 64, 64, 2),
            (5, 200, 3, 3),
            (1, 1, 1, 4),
        ] {
            let a = Matrix::random_uniform(m, k, seed);
            let b = Matrix::random_uniform(k, n, seed + 100);
            let packed = a.matmul_packed(&b).unwrap();
            let oracle = naive_matmul(&a, &b);
            assert!(packed.approx_eq(&oracle, 1e-10), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_handles_empty_dimensions() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(a.matmul_packed(&b).unwrap().shape(), (0, 4));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul_packed(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn packed_parallel_is_bit_identical_to_serial() {
        let _guard = test_config_lock();
        // Past the parallel threshold so the pool path actually runs.
        let n = 128;
        let a = Matrix::random_uniform(n, n, 7);
        let b = Matrix::random_uniform(n, n, 8);
        set_gemm_threads(Some(1));
        let serial = a.matmul_packed(&b).unwrap();
        set_gemm_threads(Some(4));
        let parallel = a.matmul_packed(&b).unwrap();
        set_gemm_threads(None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn matmul_with_counts_exact_flops_for_cubic_kernels() {
        let _guard = test_config_lock();
        let a = Matrix::random_uniform(13, 21, 9);
        let b = Matrix::random_uniform(21, 7, 10);
        for kernel in [GemmKernel::Naive, GemmKernel::Blocked, GemmKernel::Packed] {
            let before = flops::read();
            a.matmul_with(&b, kernel).unwrap();
            assert_eq!(flops::read() - before, 2 * 13 * 21 * 7, "{kernel}");
        }
    }

    #[test]
    fn strassen_kernel_falls_back_to_packed_on_rectangular() {
        let a = Matrix::random_uniform(12, 20, 11);
        let b = Matrix::random_uniform(20, 6, 12);
        let via_strassen = a.matmul_with(&b, GemmKernel::Strassen).unwrap();
        assert!(via_strassen.approx_eq(&naive_matmul(&a, &b), 1e-10));
    }

    #[test]
    fn matmul_with_rejects_dim_mismatch_for_every_kernel() {
        let a = Matrix::zeros(2, 3);
        for kernel in GemmKernel::ALL {
            assert!(a.matmul_with(&a, kernel).is_err(), "{kernel}");
        }
    }
}
