//! Block-matrix assembly.
//!
//! The factored delta representation of §4.2–4.3 stacks column vectors and
//! previously computed blocks into `(n×k)` block matrices:
//!
//! > "A sum of k outer products is equivalent to a single product of two
//! >  matrices of sizes (n×k) and (k×n), which are obtained by stacking the
//! >  corresponding vectors together."
//!
//! `hstack` builds the `U`/`V` block matrices of trigger programs like
//! Example 4.6 (`U_B := [ u_A  (A u_A + u_A (v_Aᵀ u_A)) ]`).

use crate::{Matrix, MatrixError, Result};

impl Matrix {
    /// Horizontally concatenates matrices that share a row count.
    pub fn hstack(parts: &[&Matrix]) -> Result<Matrix> {
        if parts.is_empty() {
            return Err(MatrixError::Empty);
        }
        let rows = parts[0].rows();
        let mut cols = 0;
        for p in parts {
            if p.rows() != rows {
                return Err(MatrixError::DimMismatch {
                    op: "hstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            cols += p.cols();
        }
        let mut out = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for p in parts {
            out.set_submatrix(0, c0, p)?;
            c0 += p.cols();
        }
        Ok(out)
    }

    /// Vertically concatenates matrices that share a column count.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        if parts.is_empty() {
            return Err(MatrixError::Empty);
        }
        let cols = parts[0].cols();
        let mut rows = 0;
        for p in parts {
            if p.cols() != cols {
                return Err(MatrixError::DimMismatch {
                    op: "vstack",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            rows += p.rows();
        }
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for p in parts {
            out.set_submatrix(r0, 0, p)?;
            r0 += p.rows();
        }
        Ok(out)
    }

    /// Splits a matrix into `g×g` equally sized grid blocks (the hybrid
    /// partitioning of §6). Requires both dimensions divisible by `g`.
    pub fn grid_split(&self, g: usize) -> Result<Vec<Vec<Matrix>>> {
        if g == 0 || !self.rows().is_multiple_of(g) || !self.cols().is_multiple_of(g) {
            return Err(MatrixError::DimMismatch {
                op: "grid_split",
                lhs: self.shape(),
                rhs: (g, g),
            });
        }
        let bh = self.rows() / g;
        let bw = self.cols() / g;
        let mut blocks = Vec::with_capacity(g);
        for br in 0..g {
            let mut row = Vec::with_capacity(g);
            for bc in 0..g {
                row.push(self.submatrix(br * bh, bc * bw, bh, bw)?);
            }
            blocks.push(row);
        }
        Ok(blocks)
    }

    /// Reassembles a matrix from a grid of equally sized blocks.
    pub fn grid_join(blocks: &[Vec<Matrix>]) -> Result<Matrix> {
        if blocks.is_empty() || blocks[0].is_empty() {
            return Err(MatrixError::Empty);
        }
        let bh = blocks[0][0].rows();
        let bw = blocks[0][0].cols();
        let g_rows = blocks.len();
        let g_cols = blocks[0].len();
        let mut out = Matrix::zeros(g_rows * bh, g_cols * bw);
        for (br, row) in blocks.iter().enumerate() {
            if row.len() != g_cols {
                return Err(MatrixError::RaggedRows {
                    row: br,
                    expected: g_cols,
                    got: row.len(),
                });
            }
            for (bc, b) in row.iter().enumerate() {
                if b.shape() != (bh, bw) {
                    return Err(MatrixError::DimMismatch {
                        op: "grid_join",
                        lhs: (bh, bw),
                        rhs: b.shape(),
                    });
                }
                out.set_submatrix(br * bh, bc * bw, b)?;
            }
        }
        Ok(out)
    }
}

/// Incremental builder for horizontal block concatenation.
///
/// Trigger compilation appends delta blocks one monomial at a time; this
/// builder avoids materializing intermediate stacks.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    parts: Vec<Matrix>,
    rows: Option<usize>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block; all blocks must share a row count.
    pub fn push(&mut self, block: Matrix) -> Result<()> {
        match self.rows {
            None => self.rows = Some(block.rows()),
            Some(r) if r != block.rows() => {
                return Err(MatrixError::DimMismatch {
                    op: "block_builder",
                    lhs: (r, 0),
                    rhs: block.shape(),
                })
            }
            _ => {}
        }
        self.parts.push(block);
        Ok(())
    }

    /// Number of blocks pushed so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no blocks have been pushed.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total column count of the assembled matrix.
    pub fn total_cols(&self) -> usize {
        self.parts.iter().map(|p| p.cols()).sum()
    }

    /// Assembles the blocks into one matrix.
    pub fn build(self) -> Result<Matrix> {
        let refs: Vec<&Matrix> = self.parts.iter().collect();
        Matrix::hstack(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstack_vectors() {
        let u = Matrix::col_vector(&[1.0, 2.0]);
        let v = Matrix::col_vector(&[3.0, 4.0]);
        let s = Matrix::hstack(&[&u, &v]).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(1, 1), 4.0);
    }

    #[test]
    fn hstack_rejects_mismatched_rows() {
        let u = Matrix::col_vector(&[1.0, 2.0]);
        let v = Matrix::col_vector(&[3.0]);
        assert!(Matrix::hstack(&[&u, &v]).is_err());
        assert!(Matrix::hstack(&[]).is_err());
    }

    #[test]
    fn vstack_rows() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::from_rows(vec![vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.get(2, 0), 5.0);
        assert!(Matrix::vstack(&[&a, &Matrix::zeros(1, 3)]).is_err());
    }

    #[test]
    fn grid_split_join_roundtrip() {
        let m = Matrix::random_uniform(12, 12, 3);
        let blocks = m.grid_split(3).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0][0].shape(), (4, 4));
        let back = Matrix::grid_join(&blocks).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn grid_split_requires_divisibility() {
        assert!(Matrix::zeros(10, 10).grid_split(3).is_err());
        assert!(Matrix::zeros(10, 10).grid_split(0).is_err());
    }

    #[test]
    fn block_builder_accumulates() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        b.push(Matrix::col_vector(&[1.0, 2.0])).unwrap();
        b.push(Matrix::zeros(2, 3)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_cols(), 4);
        assert!(b.push(Matrix::zeros(5, 1)).is_err());
        let m = b.build().unwrap();
        assert_eq!(m.shape(), (2, 4));
    }
}
