//! Density-aware low-rank view folds.
//!
//! Every trigger update statement bottoms out in the fold
//! `X += U·Vᵀ` with skinny `n×k` factors. On the paper's graph/Zipf
//! workloads (§7) the left factor is overwhelmingly sparse — a row update
//! contributes one basis column, so `U` carries ~`k` nonzeros out of
//! `n·k` — and a dense rank-`k` GEMM wastes `O(n·k·m)` work on zeros.
//! [`fold_low_rank`] measures the factor's density and, below the
//! benchmarked [`SPARSE_FOLD_CROSSOVER`], replays the fold row by row over
//! the stored nonzeros only, in `O(nnz(U)·m)`.
//!
//! **Bit-identity.** The dense path computes
//! `delta[r][j] = Σₖ u[r,k]·v[j,k]` with `k` ascending (the documented
//! [`GemmKernel`](crate::GemmKernel) contract — plain mul-then-add, never
//! fused) and then performs one elementwise `X += delta`. The sparse path
//! replays exactly that per-element order, skipping only terms where
//! `u[r,k]` is exactly `0.0` and rows of `U` that are entirely zero.
//! Skipped terms contribute `±0.0`; under IEEE-754 round-to-nearest,
//! adding an exact zero never changes a finite accumulator except possibly
//! in the sign of a zero result — and `f64::==` (hence `Matrix::==`, the
//! relation every conformance suite asserts) treats `-0.0 == +0.0`. So
//! sparse and dense folds agree under `==` for every kernel and thread
//! count.
//!
//! The opt-out knob mirrors `LINVIEW_GEMM`: [`set_sparse_folds`] overrides
//! programmatically, `LINVIEW_SPARSE=0` (or `off`/`false`) disables via
//! the environment, default is enabled.
//!
//! **Interaction with `packed-fma`.** The opt-in fused kernel
//! ([`GemmKernel::PackedFma`](crate::GemmKernel)) breaks the mul-then-add
//! contract the replay argument above rests on, so while it is the default
//! kernel every fold runs dense — folds stay mutually consistent (all
//! fused) and replicated backends keep folding identical values.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::{flops, Matrix, MatrixError, Result};

/// Density of the left factor below which the sparse row-replay fold beats
/// the packed GEMM + elementwise add.
///
/// Benchmarked with the `sparsity` experiment table: the packed kernel
/// sustains roughly 6–8× the scalar fold's FLOP rate, so the naive
/// break-even sits near density ≈ 1/7; `0.05` leaves a 2–3× margin so the
/// sparse path only engages where it wins clearly (basis-vector factors
/// from row-update streams have density `1/n`, far below it).
pub const SPARSE_FOLD_CROSSOVER: f64 = 0.05;

/// Sentinel 0 = "no programmatic override".
static SPARSE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
/// `LINVIEW_SPARSE`, read once per process.
static ENV_SPARSE: OnceLock<Option<bool>> = OnceLock::new();

/// Whether density-aware folds (and the matching sparse factor frames) are
/// enabled process-wide.
///
/// Precedence: the last [`set_sparse_folds`] call, else `LINVIEW_SPARSE`
/// (read once per process; `0`/`off`/`false` disable, `1`/`on`/`true`
/// enable, anything else is ignored), else enabled.
pub fn sparse_folds_enabled() -> bool {
    match SPARSE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    ENV_SPARSE
        .get_or_init(|| {
            let v = std::env::var("LINVIEW_SPARSE").ok()?;
            match v.trim().to_ascii_lowercase().as_str() {
                "0" | "off" | "false" | "no" => Some(false),
                "1" | "on" | "true" | "yes" => Some(true),
                _ => None,
            }
        })
        .unwrap_or(true)
}

/// Overrides the process-wide sparse-fold default (`None` restores the
/// `LINVIEW_SPARSE` / built-in default).
pub fn set_sparse_folds(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SPARSE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Which execution path [`fold_low_rank`] took, with the work it saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldPath {
    /// Sparse row-replay over the stored nonzeros of `U`.
    Sparse {
        /// Exact nonzeros of the left factor.
        nnz: usize,
        /// Rows of `U` with at least one nonzero (= rows of `X` written).
        rows_touched: usize,
    },
    /// Dense rank-`k` GEMM + elementwise accumulation.
    Dense,
}

impl FoldPath {
    /// True when the sparse replay ran.
    pub fn is_sparse(self) -> bool {
        matches!(self, FoldPath::Sparse { .. })
    }
}

/// Exact nonzero count of a factor (entries not equal to `±0.0`).
pub fn factor_nnz(m: &Matrix) -> usize {
    m.as_slice().iter().filter(|&&x| x != 0.0).count()
}

/// Folds `target += u · vᵀ`, picking the sparse row-replay when the left
/// factor's measured density is at or below [`SPARSE_FOLD_CROSSOVER`] (and
/// `allow_sparse` is set), the dense rank-`k` GEMM otherwise.
///
/// Shapes: `u` is `n×k`, `v` is `m×k`, `target` is `n×m`. Both paths are
/// `==`-identical (see the module docs); the FLOP meter records the work
/// the chosen path actually performed, which is the whole point — sparse
/// folds cost `O(nnz(U)·m)` instead of `O(n·k·m)`.
pub fn fold_low_rank(
    target: &mut Matrix,
    u: &Matrix,
    v: &Matrix,
    allow_sparse: bool,
) -> Result<FoldPath> {
    if u.cols() != v.cols() || u.rows() != target.rows() || v.rows() != target.cols() {
        return Err(MatrixError::DimMismatch {
            op: "fold_low_rank",
            lhs: u.shape(),
            rhs: v.shape(),
        });
    }
    let (n, k) = u.shape();
    let m = v.rows();
    // Under the opt-in fused (`packed-fma`) kernel the dense fold fuses
    // its multiply-adds, which the scalar replay cannot reproduce — and a
    // sparse/dense decision must never change fold values, or mirrored
    // backends would drift apart. Fall back to all-dense in that mode.
    if allow_sparse && n * k > 0 && !crate::gemm::default_kernel().fuses() {
        let nnz = factor_nnz(u);
        if (nnz as f64) <= SPARSE_FOLD_CROSSOVER * (n * k) as f64 {
            return sparse_fold(target, u, v, nnz, m);
        }
    }
    // Fused rank-k fold: skip the n×m delta temporary when the shape is
    // skinny enough that the product would take the packed family's
    // rank-k fast path anyway. Mirroring try_matmul's small-work gate
    // keeps kernel selection — and therefore bit-exact values — aligned
    // with the GEMM-then-add fold this replaces; the per-element chain
    // (ascending-k accumulate, one add into the target) is identical.
    let kernel = crate::gemm::default_kernel();
    if crate::rankk::eligible(n, k, m)
        && !crate::gemm::rank_k_disabled()
        && matches!(
            kernel,
            crate::GemmKernel::Packed | crate::GemmKernel::PackedFma
        )
        && n * k * m >= crate::gemm::PACKED_MIN_WORK
        && m >= crate::gemm::NR
    {
        let fuse = if kernel.fuses() {
            crate::gemm::Fuse::Fused
        } else {
            crate::gemm::Fuse::Exact
        };
        crate::rankk::rank_k_fold(target, u, &v.transpose(), fuse);
        // Same meter charge as the two-step: 2nkm for the product, nm for
        // the fold into the target.
        flops::add((2 * n * k * m + n * m) as u64);
        return Ok(FoldPath::Dense);
    }
    let delta = u.try_matmul(&v.transpose())?;
    target.add_assign_from(&delta)?;
    Ok(FoldPath::Dense)
}

/// The sparse replay: for each nonzero row `r` of `u`, accumulate
/// `Σₖ u[r,k]·v[j,k]` over the stored `k` in ascending order into a scalar
/// and add it into `target[r][j]` once — the exact per-element grouping of
/// GEMM-then-add, minus the terms that are exactly zero.
fn sparse_fold(
    target: &mut Matrix,
    u: &Matrix,
    v: &Matrix,
    nnz: usize,
    m: usize,
) -> Result<FoldPath> {
    let mut cols: Vec<(usize, f64)> = Vec::new();
    let mut rows_touched = 0usize;
    for r in 0..u.rows() {
        cols.clear();
        cols.extend(
            u.row(r)
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(k, &x)| (k, x)),
        );
        if cols.is_empty() {
            continue;
        }
        rows_touched += 1;
        let out_row = target.row_mut(r);
        for (j, out) in out_row.iter_mut().enumerate() {
            let v_row = v.row(j);
            let mut acc = 0.0f64;
            for &(k, uval) in &cols {
                acc += uval * v_row[k];
            }
            *out += acc;
        }
    }
    // 2 flops per (stored nonzero × output column) plus the per-row fold.
    flops::add((2 * nnz * m + rows_touched * m) as u64);
    Ok(FoldPath::Sparse { nnz, rows_touched })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fold(target: &mut Matrix, u: &Matrix, v: &Matrix) {
        let delta = u.try_matmul(&v.transpose()).unwrap();
        target.add_assign_from(&delta).unwrap();
    }

    /// A skinny factor with exactly `per_col` nonzeros per column.
    fn basisish(n: usize, k: usize, per_col: usize, seed: u64) -> Matrix {
        let mut u = Matrix::zeros(n, k);
        let mut s = seed;
        for c in 0..k {
            for _ in 0..per_col {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (s >> 33) as usize % n;
                let val = ((s >> 11) & 0xffff) as f64 / 65536.0 - 0.5;
                u.set(r, c, if val == 0.0 { 0.25 } else { val });
            }
        }
        u
    }

    #[test]
    fn sparse_fold_is_bit_identical_to_dense() {
        let _guard = crate::gemm::test_config_lock();
        for &(n, m, k) in &[(40, 40, 1), (64, 48, 3), (33, 57, 5)] {
            let u = basisish(n, k, 1, 7 + n as u64);
            let v = Matrix::random_uniform(m, k, 11 + m as u64);
            let base = Matrix::random_uniform(n, m, 13);
            let mut sparse_t = base.clone();
            let path = fold_low_rank(&mut sparse_t, &u, &v, true).unwrap();
            assert!(
                path.is_sparse(),
                "density {} should take the sparse path",
                n
            );
            let mut dense_t = base.clone();
            dense_fold(&mut dense_t, &u, &v);
            assert_eq!(sparse_t, dense_t, "sparse fold diverged at ({n},{m},{k})");
        }
    }

    #[test]
    fn dense_factors_take_the_dense_path() {
        let u = Matrix::random_uniform(32, 2, 3);
        let v = Matrix::random_uniform(32, 2, 4);
        let mut t = Matrix::zeros(32, 32);
        let path = fold_low_rank(&mut t, &u, &v, true).unwrap();
        assert_eq!(path, FoldPath::Dense);
        let mut want = Matrix::zeros(32, 32);
        dense_fold(&mut want, &u, &v);
        assert_eq!(t, want);
    }

    #[test]
    fn opt_out_forces_dense() {
        let u = basisish(64, 2, 1, 5);
        let v = Matrix::random_uniform(48, 2, 6);
        let mut t = Matrix::zeros(64, 48);
        assert_eq!(
            fold_low_rank(&mut t, &u, &v, false).unwrap(),
            FoldPath::Dense
        );
    }

    #[test]
    fn fused_default_kernel_forces_dense_folds() {
        let _guard = crate::gemm::test_config_lock();
        // The factor is sparse enough for the replay, but while the fused
        // kernel is the default every fold must stay dense (and mutually
        // fused-consistent).
        let u = basisish(64, 2, 1, 5);
        let v = Matrix::random_uniform(48, 2, 6);
        crate::set_default_kernel(Some(crate::GemmKernel::PackedFma));
        let mut fused_t = Matrix::zeros(64, 48);
        let path = fold_low_rank(&mut fused_t, &u, &v, true).unwrap();
        // The values it folded are the pinned kernel's own dense fold.
        let mut want = Matrix::zeros(64, 48);
        dense_fold(&mut want, &u, &v);
        crate::set_default_kernel(None);
        assert_eq!(path, FoldPath::Dense);
        assert_eq!(fused_t, want);
    }

    #[test]
    fn fused_rank_k_fold_is_bit_identical_to_the_two_step_fold() {
        let _guard = crate::gemm::test_config_lock();
        // Dense factors above try_matmul's small-work gate
        // (256·2·256 ≥ 48³), so the fold takes the fused rank-k path
        // while the reference materializes the delta and adds it.
        for k in [1usize, 2, 7, 16] {
            let u = Matrix::random_uniform(256, k, 41 + k as u64);
            let v = Matrix::random_uniform(256, k, 43 + k as u64);
            let base = Matrix::random_uniform(256, 256, 45);
            let mut fused = base.clone();
            let path = fold_low_rank(&mut fused, &u, &v, false).unwrap();
            assert_eq!(path, FoldPath::Dense);
            let mut two_step = base.clone();
            dense_fold(&mut two_step, &u, &v);
            assert_eq!(fused, two_step, "rank-k fold diverged at k = {k}");
        }
    }

    #[test]
    fn all_zero_factor_is_a_sparse_noop() {
        let _guard = crate::gemm::test_config_lock();
        let u = Matrix::zeros(16, 2);
        let v = Matrix::random_uniform(16, 2, 9);
        let base = Matrix::random_uniform(16, 16, 10);
        let mut t = base.clone();
        let path = fold_low_rank(&mut t, &u, &v, true).unwrap();
        assert_eq!(
            path,
            FoldPath::Sparse {
                nnz: 0,
                rows_touched: 0
            }
        );
        assert_eq!(t, base);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let u = Matrix::zeros(4, 2);
        let v = Matrix::zeros(5, 3);
        let mut t = Matrix::zeros(4, 5);
        assert!(fold_low_rank(&mut t, &u, &v, true).is_err());
    }

    #[test]
    fn sparse_fold_meters_nnz_scaled_flops() {
        let n = 200;
        let u = basisish(n, 4, 1, 21);
        let v = Matrix::random_uniform(n, 4, 22);
        let mut t = Matrix::zeros(n, n);
        let before = flops::read();
        let path = fold_low_rank(&mut t, &u, &v, true).unwrap();
        let spent = flops::read() - before;
        let FoldPath::Sparse { nnz, rows_touched } = path else {
            panic!("expected the sparse path");
        };
        assert_eq!(spent, (2 * nnz * n + rows_touched * n) as u64);
        // Far below the dense fold's 2·n·k·m + n·m.
        assert!(spent < (2 * n * 4 * n + n * n) as u64 / 10);
    }

    #[test]
    fn env_knob_parses() {
        // Only exercises the override layer (the env layer is read once
        // per process and owned by whichever test process runs first).
        set_sparse_folds(Some(false));
        assert!(!sparse_folds_enabled());
        set_sparse_folds(Some(true));
        assert!(sparse_folds_enabled());
        set_sparse_folds(None);
    }
}
