//! Seeded random matrix generation.
//!
//! The paper's workload uses "dense random matrices … preconditioned
//! appropriately for numerical stability" (§7). Iterating `Aᵏ` on an
//! unconditioned random matrix overflows quickly, so the generators here
//! offer spectral scaling: entries are drawn uniformly then the matrix is
//! scaled so its infinity-norm hits a target (< 1 keeps powers bounded).

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

impl Matrix {
    /// Uniform entries in `[-1, 1)` from a seeded PRNG (deterministic).
    pub fn random_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.random::<f64>() * 2.0 - 1.0)
            .collect();
        Matrix::from_vec(rows, cols, data).expect("buffer length matches shape")
    }

    /// Random square matrix scaled so `‖A‖_∞ = target_norm`.
    ///
    /// With `target_norm < 1` every power `Aᵏ` stays bounded, matching the
    /// paper's preconditioning for the matrix-powers workloads.
    pub fn random_spectral(n: usize, seed: u64, target_norm: f64) -> Matrix {
        let mut m = Matrix::random_uniform(n, n, seed);
        let norm = m.norm_inf();
        if norm > 0.0 {
            m.scale_inplace(target_norm / norm);
        }
        m
    }

    /// Random diagonally dominant matrix (always invertible, well
    /// conditioned); used to exercise the inverse/OLS paths.
    pub fn random_diag_dominant(n: usize, seed: u64) -> Matrix {
        let mut m = Matrix::random_uniform(n, n, seed);
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
            m.set(i, i, row_sum + 1.0);
        }
        m
    }

    /// Random column vector with entries in `[-1, 1)`.
    pub fn random_col(n: usize, seed: u64) -> Matrix {
        Matrix::random_uniform(n, 1, seed)
    }

    /// Random column-stochastic matrix (columns sum to 1); the transition
    /// matrix shape used by the PageRank application.
    pub fn random_stochastic(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n, n);
        for c in 0..n {
            let mut col: Vec<f64> = (0..n).map(|_| rng.random::<f64>() + 1e-6).collect();
            let s: f64 = col.iter().sum();
            for v in &mut col {
                *v /= s;
            }
            for (r, v) in col.into_iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = Matrix::random_uniform(5, 7, 99);
        let b = Matrix::random_uniform(5, 7, 99);
        assert_eq!(a, b);
        let c = Matrix::random_uniform(5, 7, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_entries_in_range() {
        let m = Matrix::random_uniform(20, 20, 1);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn spectral_scaling_hits_target() {
        let m = Matrix::random_spectral(32, 2, 0.9);
        assert!((m.norm_inf() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn diag_dominant_is_invertible() {
        let m = Matrix::random_diag_dominant(16, 3);
        assert!(m.inverse().is_ok());
    }

    #[test]
    fn stochastic_columns_sum_to_one() {
        let m = Matrix::random_stochastic(10, 4);
        for c in 0..10 {
            let s: f64 = m.col(c).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
