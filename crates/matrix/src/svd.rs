//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! §4.2 of the paper observes that "delta matrices typically have low ranks
//! … although a delta matrix might contain all nonzero entries, the number
//! of linearly independent rows or columns is relatively small", and then
//! deliberately avoids inspecting values ("computing the exact rank of the
//! delta matrix requires inspection of the matrix values, which we deem too
//! expensive"). This module supplies the primitive the paper declines to pay
//! for, so the repo can (a) *verify* the low-rank claims experimentally and
//! (b) implement the numerical delta-recompression extension (an optional
//! `O(nk²)` pass that the syntactic common-factor extraction of §4.3 cannot
//! match in compactness).
//!
//! The one-sided Jacobi method is chosen because the matrices we decompose
//! are the skinny `(n×k)` delta blocks with `k ≪ n`: its cost is
//! `O(n·k²)` per sweep, it is simple enough to verify from first principles,
//! and it is unconditionally numerically stable (every step is an exact
//! plane rotation).

use crate::{flops, Matrix, MatrixError, Result};

/// Relative threshold under which two columns count as orthogonal.
const ORTH_TOL: f64 = 1e-12;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// A thin singular value decomposition `A = U · diag(σ) · Vᵀ`.
///
/// For an `m×n` input with `m ≥ n`: `U : (m×n)` has orthonormal columns,
/// `σ` holds the `n` singular values in non-increasing order, and
/// `V : (n×n)` is orthogonal. Wide inputs (`m < n`) are handled by
/// factorizing the transpose and swapping the factors.
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
}

impl Svd {
    /// Factorizes `a` using one-sided Jacobi iteration.
    ///
    /// Cost is `O(min(m,n)² · max(m,n))` per sweep with a small constant
    /// number of sweeps in practice. Returns
    /// [`MatrixError::DidNotConverge`] if the sweep limit is exhausted
    /// (pathological inputs only).
    pub fn factorize(a: &Matrix) -> Result<Svd> {
        if a.rows() < a.cols() {
            let t = Svd::factorize(&a.transpose())?;
            return Ok(Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            });
        }
        let (m, n) = a.shape();
        flops::add((4 * m * n * n) as u64);

        // One-sided Jacobi: rotate column pairs of W = A·V until all pairs
        // are orthogonal; then σ_j = ‖w_j‖ and u_j = w_j / σ_j.
        let mut w = a.clone();
        let mut v = Matrix::identity(n);
        // Columns whose squared norm falls below this are numerically zero
        // (already fully rotated away) and must be skipped — otherwise
        // roundoff in exactly-cancelling pairs keeps triggering rotations
        // forever.
        let scale = a.max_abs().max(1.0);
        let col_floor = {
            let eps_col = f64::EPSILON * scale * (m as f64).sqrt();
            eps_col * eps_col
        };

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries of the (p,q) column pair.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    if app <= col_floor || aqq <= col_floor {
                        continue;
                    }
                    if apq.abs() <= ORTH_TOL * (app * aqq).sqrt() {
                        continue;
                    }
                    rotated = true;
                    // Jacobi rotation that zeroes the (p,q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w.get(i, p);
                        let wq = w.get(i, q);
                        w.set(i, p, c * wp - s * wq);
                        w.set(i, q, s * wp + c * wq);
                    }
                    for i in 0..n {
                        let vp = v.get(i, p);
                        let vq = v.get(i, q);
                        v.set(i, p, c * vp - s * vq);
                        v.set(i, q, s * vp + c * vq);
                    }
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(MatrixError::DidNotConverge { sweeps: MAX_SWEEPS });
        }

        // Extract σ and normalize U; order by descending σ.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| w.get(i, j).powi(2)).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&a, &b| norms[b].partial_cmp(&norms[a]).expect("finite norms"));

        let mut u = Matrix::zeros(m, n);
        let mut vv = Matrix::zeros(n, n);
        let mut sigma = Vec::with_capacity(n);
        for (dst, &src) in order.iter().enumerate() {
            let s = norms[src];
            sigma.push(s);
            if s > 0.0 {
                for i in 0..m {
                    u.set(i, dst, w.get(i, src) / s);
                }
            } else {
                // Null column: keep a zero column in U (thin SVD of a
                // rank-deficient matrix); V still carries the basis vector.
                u.set(dst.min(m - 1), dst, 0.0);
            }
            for i in 0..n {
                vv.set(i, dst, v.get(i, src));
            }
        }
        Ok(Svd { u, sigma, v: vv })
    }

    /// The left factor `U` (`m×n`, orthonormal columns where σ > 0).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The singular values, non-increasing.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// The right factor `V` (`n×n`, orthogonal).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Largest singular value (the spectral norm of the input).
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// Numerical rank: the number of singular values above
    /// `rel_tol · σ_max`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let cutoff = self.spectral_norm() * rel_tol;
        self.sigma.iter().filter(|&&s| s > cutoff).count()
    }

    /// Condition number `σ_max / σ_min` (∞ for singular inputs).
    pub fn condition_number(&self) -> f64 {
        let max = self.spectral_norm();
        let min = self.sigma.last().copied().unwrap_or(0.0);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Reconstructs `U · diag(σ) · Vᵀ` (tests/diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let us = self.scaled_u(self.sigma.len());
        us.try_matmul(&self.v.transpose()).expect("conforming")
    }

    /// The best rank-`k` approximation as a factored pair `(P, Q)` with
    /// `P : (m×k)`, `Q : (n×k)` and `A ≈ P·Qᵀ` (Eckart–Young). `σ` is folded
    /// into `P`.
    pub fn truncate(&self, k: usize) -> Result<(Matrix, Matrix)> {
        let n = self.sigma.len();
        if k == 0 || k > n {
            return Err(MatrixError::OutOfBounds {
                index: (k, 0),
                shape: (n, n),
            });
        }
        let p = self.scaled_u(k);
        let q = self.v.submatrix(0, 0, self.v.rows(), k)?;
        Ok((p, q))
    }

    /// Energy captured by the top-`k` singular values:
    /// `Σ_{i<k} σᵢ² / Σ σᵢ²` (1.0 for `k = n` or a zero matrix).
    pub fn energy(&self, k: usize) -> f64 {
        let total: f64 = self.sigma.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return 1.0;
        }
        self.sigma.iter().take(k).map(|s| s * s).sum::<f64>() / total
    }

    /// First `k` columns of `U` with σ folded in.
    fn scaled_u(&self, k: usize) -> Matrix {
        let m = self.u.rows();
        let mut p = Matrix::zeros(m, k);
        for j in 0..k {
            let s = self.sigma[j];
            for i in 0..m {
                p.set(i, j, self.u.get(i, j) * s);
            }
        }
        p
    }
}

/// Convenience: numerical rank of a matrix (SVD-based).
///
/// This is the value-inspecting rank the paper's §4.3 declines to compute
/// on the hot path; exposed here for diagnostics and tests of the low-rank
/// delta claims.
pub fn numerical_rank(a: &Matrix, rel_tol: f64) -> Result<usize> {
    Ok(Svd::factorize(a)?.rank(rel_tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn reconstructs_tall_square_and_wide() {
        for (m, n, seed) in [(10usize, 4usize, 1u64), (6, 6, 2), (4, 9, 3)] {
            let a = Matrix::random_uniform(m, n, seed);
            let svd = Svd::factorize(&a).unwrap();
            assert!(svd.reconstruct().approx_eq(&a, 1e-9), "({m},{n})");
        }
    }

    #[test]
    fn singular_values_are_sorted_and_nonnegative() {
        let a = Matrix::random_uniform(12, 5, 4);
        let svd = Svd::factorize(&a).unwrap();
        let s = svd.singular_values();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = Matrix::random_uniform(9, 4, 5);
        let svd = Svd::factorize(&a).unwrap();
        let utu = svd.u().transpose().try_matmul(svd.u()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(4), 1e-9));
        let vtv = svd.v().transpose().try_matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let svd = Svd::factorize(&Matrix::identity(5)).unwrap();
        for &s in svd.singular_values() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(svd.rank(1e-9), 5);
        assert!((svd.condition_number() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_recovers_diagonal() {
        let a = Matrix::diagonal(&[3.0, 1.0, 2.0]);
        let svd = Svd::factorize(&a).unwrap();
        let s = svd.singular_values();
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_detects_outer_product() {
        // u vᵀ has rank exactly 1 no matter how dense it looks (the Fig. 1
        // observation the factored representation is built on).
        let u = Matrix::random_col(20, 6);
        let v = Matrix::random_col(20, 7);
        let a = Matrix::outer(&u, &v).unwrap();
        assert_eq!(numerical_rank(&a, 1e-9).unwrap(), 1);
    }

    #[test]
    fn rank_of_stacked_outer_products_is_bounded_by_block_count() {
        let blocks = 3;
        let n = 15;
        let mut a = Matrix::zeros(n, n);
        for s in 0..blocks {
            let u = Matrix::random_col(n, 10 + s as u64);
            let v = Matrix::random_col(n, 20 + s as u64);
            a.add_outer(&u, &v).unwrap();
        }
        assert_eq!(numerical_rank(&a, 1e-9).unwrap(), blocks);
    }

    #[test]
    fn truncation_is_exact_on_low_rank_input() {
        let u = Matrix::random_uniform(12, 2, 8);
        let v = Matrix::random_uniform(10, 2, 9);
        let a = u.try_matmul(&v.transpose()).unwrap();
        let svd = Svd::factorize(&a).unwrap();
        let (p, q) = svd.truncate(2).unwrap();
        let back = p.try_matmul(&q.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
        assert!(svd.energy(2) > 1.0 - 1e-12);
    }

    #[test]
    fn truncation_error_matches_dropped_singular_value() {
        // Eckart–Young: ‖A − A_k‖₂ = σ_{k+1}.
        let a = Matrix::random_uniform(8, 8, 11);
        let svd = Svd::factorize(&a).unwrap();
        let (p, q) = svd.truncate(5).unwrap();
        let residual = a.try_sub(&p.try_matmul(&q.transpose()).unwrap()).unwrap();
        let resid_norm = Svd::factorize(&residual).unwrap().spectral_norm();
        assert!((resid_norm - svd.singular_values()[5]).abs() < 1e-8);
    }

    #[test]
    fn truncate_rejects_bad_k() {
        let svd = Svd::factorize(&Matrix::identity(3)).unwrap();
        assert!(svd.truncate(0).is_err());
        assert!(svd.truncate(4).is_err());
    }

    #[test]
    fn duplicated_basis_columns_converge() {
        // Regression: repeated identical basis-vector columns rotate to
        // exact zeros; the zero-column floor must stop further rotations
        // (this input used to exhaust the sweep budget).
        let n = 64;
        let mut e = Matrix::zeros(n, 1);
        e.set(7, 0, 1.0);
        let a = Matrix::hstack(&[&e, &e, &e, &e]).unwrap();
        let svd = Svd::factorize(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 1);
        assert!((svd.spectral_norm() - 2.0).abs() < 1e-12); // ‖[e e e e]‖₂ = 2
        assert!(svd.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let svd = Svd::factorize(&Matrix::zeros(6, 3)).unwrap();
        assert_eq!(svd.rank(1e-9), 0);
        assert!(svd.condition_number().is_infinite());
        assert_eq!(svd.energy(1), 1.0);
    }

    #[test]
    fn spectral_norm_matches_known_value() {
        // [[3,0],[4,0]] has spectral norm 5.
        let a = Matrix::from_rows(vec![vec![3.0, 0.0], vec![4.0, 0.0]]).unwrap();
        let svd = Svd::factorize(&a).unwrap();
        assert!((svd.spectral_norm() - 5.0).abs() < 1e-12);
    }
}
