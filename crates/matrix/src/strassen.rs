//! Strassen's matrix multiplication — a real `γ < 3` kernel.
//!
//! The paper's cost model parameterizes multiplication as `O(nᵞ)` with
//! `2 ≤ γ ≤ 3` (§3): "our incremental techniques remain relevant as long
//! as matrix multiplication stays asymptotically worse than quadratic
//! time". This module supplies an actual sub-cubic kernel
//! (`γ = log₂ 7 ≈ 2.807`) so the claim can be exercised rather than just
//! modeled: even against Strassen re-evaluation, the `O(kn²)` incremental
//! path wins, with a smaller constant-factor gap.
//!
//! Implementation: classic seven-product recursion with zero-padding to
//! even dimensions at each level and a cutoff below which the blocked
//! cubic kernel takes over.

use crate::{flops, Matrix, MatrixError, Result};

/// Below this edge length the recursion falls back to the cubic kernel.
const CUTOFF: usize = 64;

/// The effective exponent of this kernel, `log₂ 7`.
pub const STRASSEN_GAMMA: f64 = 2.807_354_922_057_604;

impl Matrix {
    /// Strassen product `self · rhs` for square, equally sized operands.
    ///
    /// Odd dimensions are zero-padded per recursion level. For
    /// rectangular or mismatched operands use [`Matrix::try_matmul`].
    pub fn matmul_strassen(&self, rhs: &Matrix) -> Result<Matrix> {
        if !self.is_square() || self.shape() != rhs.shape() {
            return Err(MatrixError::DimMismatch {
                op: "strassen",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(strassen_rec(self, rhs))
    }
}

fn strassen_rec(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.rows();
    if n <= CUTOFF {
        // The base case is where nearly all of the arithmetic happens;
        // route it through the tuned packed kernel (identical FLOP
        // accounting to the blocked kernel it replaced).
        return a.matmul_packed(b).expect("shapes checked by caller");
    }
    // Pad to even.
    if n % 2 == 1 {
        let m = n + 1;
        let mut ap = Matrix::zeros(m, m);
        let mut bp = Matrix::zeros(m, m);
        ap.set_submatrix(0, 0, a).expect("fits");
        bp.set_submatrix(0, 0, b).expect("fits");
        let cp = strassen_rec(&ap, &bp);
        return cp.submatrix(0, 0, n, n).expect("fits");
    }
    let h = n / 2;
    let a11 = a.submatrix(0, 0, h, h).expect("fits");
    let a12 = a.submatrix(0, h, h, h).expect("fits");
    let a21 = a.submatrix(h, 0, h, h).expect("fits");
    let a22 = a.submatrix(h, h, h, h).expect("fits");
    let b11 = b.submatrix(0, 0, h, h).expect("fits");
    let b12 = b.submatrix(0, h, h, h).expect("fits");
    let b21 = b.submatrix(h, 0, h, h).expect("fits");
    let b22 = b.submatrix(h, h, h, h).expect("fits");

    let add = |x: &Matrix, y: &Matrix| x.try_add(y).expect("same shape");
    let sub = |x: &Matrix, y: &Matrix| x.try_sub(y).expect("same shape");

    // The seven Strassen products.
    let m1 = strassen_rec(&add(&a11, &a22), &add(&b11, &b22));
    let m2 = strassen_rec(&add(&a21, &a22), &b11);
    let m3 = strassen_rec(&a11, &sub(&b12, &b22));
    let m4 = strassen_rec(&a22, &sub(&b21, &b11));
    let m5 = strassen_rec(&add(&a11, &a12), &b22);
    let m6 = strassen_rec(&sub(&a21, &a11), &add(&b11, &b12));
    let m7 = strassen_rec(&sub(&a12, &a22), &add(&b21, &b22));

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&sub(&add(&m1, &m3), &m2), &m6);

    let mut c = Matrix::zeros(n, n);
    c.set_submatrix(0, 0, &c11).expect("fits");
    c.set_submatrix(0, h, &c12).expect("fits");
    c.set_submatrix(h, 0, &c21).expect("fits");
    c.set_submatrix(h, h, &c22).expect("fits");
    // Additions above already count their FLOPs; the recursive products
    // count theirs. Nothing extra to add here.
    let _ = flops::read();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    #[test]
    fn matches_cubic_kernel_above_cutoff() {
        let n = 96; // forces one recursion level
        let a = Matrix::random_uniform(n, n, 1);
        let b = Matrix::random_uniform(n, n, 2);
        let fast = a.matmul_strassen(&b).unwrap();
        let slow = a.matmul_serial(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn handles_odd_dimensions_via_padding() {
        let n = 97;
        let a = Matrix::random_uniform(n, n, 3);
        let b = Matrix::random_uniform(n, n, 4);
        let fast = a.matmul_strassen(&b).unwrap();
        let slow = a.matmul_serial(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-9));
    }

    #[test]
    fn small_inputs_use_base_case() {
        let a = Matrix::random_uniform(8, 8, 5);
        let b = Matrix::random_uniform(8, 8, 6);
        assert!(a
            .matmul_strassen(&b)
            .unwrap()
            .approx_eq(&a.matmul_serial(&b).unwrap(), 1e-12));
    }

    #[test]
    fn rejects_rectangular_or_mismatched() {
        let a = Matrix::zeros(4, 6);
        assert!(a.matmul_strassen(&a).is_err());
        let b = Matrix::zeros(4, 4);
        let c = Matrix::zeros(6, 6);
        assert!(b.matmul_strassen(&c).is_err());
    }

    #[test]
    fn strassen_does_fewer_multiplications_at_depth() {
        // Resets the process-global FLOP counter; serialize against the
        // exact-accounting tests.
        let _guard = crate::gemm::test_config_lock();
        // FLOP counters: one level of Strassen at n=2·CUTOFF does 7 base
        // products of (n/2)³ instead of 8 — plus O(n²) additions.
        let n = 2 * CUTOFF;
        let a = Matrix::random_uniform(n, n, 7);
        let b = Matrix::random_uniform(n, n, 8);
        flops::reset();
        let _ = a.matmul_strassen(&b).unwrap();
        let strassen_flops = flops::reset();
        let _ = a.matmul_serial(&b).unwrap();
        let cubic_flops = flops::reset();
        assert!(
            (strassen_flops as f64) < 0.95 * cubic_flops as f64,
            "strassen {strassen_flops} !< cubic {cubic_flops}"
        );
    }

    #[test]
    fn tiny_inputs_down_to_empty_stay_exact() {
        for n in [0usize, 1, 2, 3] {
            let a = Matrix::random_uniform(n, n, 40 + n as u64);
            let b = Matrix::random_uniform(n, n, 50 + n as u64);
            let fast = a.matmul_strassen(&b).unwrap();
            let slow = a.matmul_serial(&b).unwrap();
            assert_eq!(fast.shape(), (n, n));
            assert!(fast.approx_eq(&slow, 1e-12), "n = {n}");
        }
    }

    #[test]
    fn non_power_of_two_sizes_match_the_packed_oracle() {
        // Sizes chosen to exercise every padding path: odd at depth 1,
        // odd again at depth 2, and a prime edge well past the cutoff.
        for n in [65usize, 66, 97, 131] {
            let a = Matrix::random_uniform(n, n, 60 + n as u64).scale(0.5);
            let b = Matrix::random_uniform(n, n, 70 + n as u64).scale(0.5);
            let fast = a.matmul_strassen(&b).unwrap();
            let oracle = a.matmul_packed(&b).unwrap();
            assert!(fast.approx_eq(&oracle, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn base_case_agrees_bitwise_with_the_packed_kernel() {
        // At or below the cutoff the recursion IS the packed kernel.
        let a = Matrix::random_uniform(CUTOFF, CUTOFF, 80);
        let b = Matrix::random_uniform(CUTOFF, CUTOFF, 81);
        assert_eq!(a.matmul_strassen(&b).unwrap(), a.matmul_packed(&b).unwrap());
    }

    #[test]
    fn deep_recursion_stays_accurate() {
        let n = 4 * CUTOFF; // two levels
        let a = Matrix::random_uniform(n, n, 9).scale(0.5);
        let b = Matrix::random_uniform(n, n, 10).scale(0.5);
        let fast = a.matmul_strassen(&b).unwrap();
        let slow = a.matmul_serial(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-8));
    }
}
