//! Norms and approximate comparison.
//!
//! Correctness of incremental maintenance is always checked against full
//! re-evaluation with a relative tolerance (`‖INCR − REEVAL‖ / ‖REEVAL‖`);
//! these helpers centralize that comparison.

use crate::Matrix;

impl Matrix {
    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (`‖A‖_max`).
    pub fn max_abs(&self) -> f64 {
        self.as_slice().iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// One-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0f64;
        for c in 0..self.cols() {
            let s: f64 = (0..self.rows()).map(|r| self.get(r, c).abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Infinity-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0f64;
        for r in 0..self.rows() {
            let s: f64 = self.row(r).iter().map(|x| x.abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Largest absolute entrywise difference between two matrices.
    ///
    /// Returns `f64::INFINITY` on shape mismatch so callers comparing views
    /// never silently pass.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Relative difference: `max_abs_diff / max(1, ‖other‖_max)`.
    pub fn rel_diff(&self, other: &Matrix) -> f64 {
        self.max_abs_diff(other) / other.max_abs().max(1.0)
    }
}

/// Tolerance-based comparison used pervasively in tests.
pub trait ApproxEq {
    /// True when `self` and `other` differ by at most `tol` relative to the
    /// magnitude of `other`.
    fn approx_eq(&self, other: &Self, tol: f64) -> bool;
}

impl ApproxEq for Matrix {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rel_diff(other) <= tol
    }
}

impl ApproxEq for f64 {
    fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        (self - other).abs() <= tol * other.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn norms_on_known_matrix() {
        let m = Matrix::from_rows(vec![vec![1.0, -2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.norm_one(), 6.0); // col 1: |−2|+4 = 6
        assert_eq!(m.norm_inf(), 7.0); // row 1: 3+4 = 7
    }

    #[test]
    fn diff_is_infinite_on_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(a.max_abs_diff(&b).is_infinite());
        assert!(!a.approx_eq(&b, 1e9));
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-9);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-11));
    }

    #[test]
    fn scalar_approx_eq() {
        assert!(1.0f64.approx_eq(&(1.0 + 1e-12), 1e-9));
        assert!(!1.0f64.approx_eq(&1.1, 1e-9));
    }
}
