//! Matrix multiplication entry points.
//!
//! The actual kernels live in [`gemm`](crate::gemm) (packed
//! register-blocked microkernel, the default), this module (cache-blocked
//! `i-k-j` and the row-band parallel wrapper over the persistent worker
//! pool) and [`strassen`](crate::Matrix::matmul_strassen). Dispatch:
//!
//! * [`Matrix::try_matmul`] — the public entry point. Routes through the
//!   process-wide default [`GemmKernel`](crate::GemmKernel) (`Packed`
//!   unless overridden via [`crate::set_default_kernel`] / `LINVIEW_GEMM`)
//!   with size-based fallbacks: products too small to amortize packing run
//!   the serial blocked kernel instead.
//! * [`Matrix::matmul_with`](crate::Matrix::matmul_with) — explicit kernel
//!   choice, no size dispatch (the differential suite's entry point).
//! * [`Matrix::matmul_serial`] / [`Matrix::matmul_parallel`] — the blocked
//!   kernel pinned serial / row-band parallel, kept for ablation.
//!
//! Skinny products (`matvec`, `outer`) are the `O(n²)`-class primitives
//! that incremental maintenance is built from.

use crate::gemm::{self, GemmKernel};
use crate::{flops, pool, Matrix, MatrixError, Result};

/// Cache block edge for the serial blocked kernel.
const BLOCK: usize = 64;

impl Matrix {
    /// General matrix product `self · rhs` through the default kernel.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let work = self.rows() * self.cols() * rhs.cols();
        let kernel = gemm::default_kernel();
        // Size-based fallback: packing three buffers for a tiny or
        // vector-shaped product costs more than the multiply. The blocked
        // kernel keeps its own serial/parallel gate, so large skinny
        // products still fan out across the pool. (Large low-rank shapes
        // never reach this arm — they pass the work gate and take the
        // packed kernels' rank-k fast path, which does not pack at all.)
        if matches!(kernel, GemmKernel::Packed | GemmKernel::PackedFma)
            && (work < gemm::PACKED_MIN_WORK || rhs.cols() < gemm::NR)
        {
            flops::add((2 * work) as u64);
            return Ok(self.blocked_matmul_auto(rhs));
        }
        self.matmul_with(rhs, kernel)
    }

    /// Serial cache-blocked product (for benchmarking the kernels in
    /// isolation; [`Matrix::try_matmul`] picks automatically).
    pub fn matmul_serial(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
        Ok(self.matmul_serial_impl(rhs))
    }

    /// Blocked product with row bands on the persistent worker pool.
    pub fn matmul_parallel(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        flops::add((2 * self.rows() * self.cols() * rhs.cols()) as u64);
        Ok(self.matmul_parallel_impl(rhs))
    }

    fn matmul_serial_impl(&self, rhs: &Matrix) -> Matrix {
        let (m, k) = self.shape();
        let n = rhs.cols();
        let mut out = Matrix::zeros(m, n);
        mul_into(self, rhs, out.as_mut_slice(), 0, m, k, n);
        out
    }

    fn matmul_parallel_impl(&self, rhs: &Matrix) -> Matrix {
        let (m, k) = self.shape();
        let n = rhs.cols();
        let threads = gemm::gemm_threads().min(m.max(1));
        if threads <= 1 {
            return self.matmul_serial_impl(rhs);
        }
        let mut out = Matrix::zeros(m, n);
        let band = m.div_ceil(threads);
        // Row bands accumulate disjoint output rows in the same per-element
        // order as the serial kernel, so any thread count is bit-identical.
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let mut rest = out.as_mut_slice();
        let mut r0 = 0;
        while r0 < m {
            let h = band.min(m - r0);
            let (head, tail) = rest.split_at_mut(h * n);
            tasks.push(Box::new(move || mul_into(self, rhs, head, r0, h, k, n)));
            rest = tail;
            r0 += h;
        }
        pool::run_scoped(tasks);
        out
    }

    /// Blocked kernel with the historical size gate: serial below the
    /// parallel threshold, row-band parallel above it.
    pub(crate) fn blocked_matmul_auto(&self, rhs: &Matrix) -> Matrix {
        if self.rows() * self.cols() * rhs.cols() >= gemm::PARALLEL_THRESHOLD {
            self.matmul_parallel_impl(rhs)
        } else {
            self.matmul_serial_impl(rhs)
        }
    }

    /// Matrix–vector product `self · v` where `v` is `k×1`; `O(mk)`.
    pub fn matvec(&self, v: &Matrix) -> Result<Matrix> {
        if v.cols() != 1 || self.cols() != v.rows() {
            return Err(MatrixError::DimMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: v.shape(),
            });
        }
        flops::add((2 * self.rows() * self.cols()) as u64);
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (c, &x) in row.iter().enumerate() {
                acc += x * v.get(c, 0);
            }
            out.set(r, 0, acc);
        }
        Ok(out)
    }

    /// Vector–matrix product `vᵀ · self` where `v` is `m×1`; returns `1×n`.
    pub fn vecmat(&self, v: &Matrix) -> Result<Matrix> {
        if v.cols() != 1 || self.rows() != v.rows() {
            return Err(MatrixError::DimMismatch {
                op: "vecmat",
                lhs: v.shape(),
                rhs: self.shape(),
            });
        }
        flops::add((2 * self.rows() * self.cols()) as u64);
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            let coeff = v.get(r, 0);
            if coeff == 0.0 {
                continue;
            }
            let row = self.row(r);
            let o = out.row_mut(0);
            for (c, &x) in row.iter().enumerate() {
                o[c] += coeff * x;
            }
        }
        Ok(out)
    }

    /// Outer product `u vᵀ` of two column vectors.
    pub fn outer(u: &Matrix, v: &Matrix) -> Result<Matrix> {
        if u.cols() != 1 || v.cols() != 1 {
            return Err(MatrixError::DimMismatch {
                op: "outer",
                lhs: u.shape(),
                rhs: v.shape(),
            });
        }
        flops::add((u.rows() * v.rows()) as u64);
        let mut out = Matrix::zeros(u.rows(), v.rows());
        for r in 0..u.rows() {
            let ur = u.get(r, 0);
            for (o, &vc) in out.row_mut(r).iter_mut().zip(v.as_slice()) {
                *o = ur * vc;
            }
        }
        Ok(out)
    }

    /// Dot product of two column vectors.
    pub fn dot(u: &Matrix, v: &Matrix) -> Result<f64> {
        if u.cols() != 1 || v.cols() != 1 || u.rows() != v.rows() {
            return Err(MatrixError::DimMismatch {
                op: "dot",
                lhs: u.shape(),
                rhs: v.shape(),
            });
        }
        flops::add((2 * u.rows()) as u64);
        Ok(u.as_slice()
            .iter()
            .zip(v.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

/// Cache-blocked i-k-j kernel writing `a[r0..r0+h] · b` into `out`.
fn mul_into(a: &Matrix, b: &Matrix, out: &mut [f64], r0: usize, h: usize, k: usize, n: usize) {
    for kb in (0..k).step_by(BLOCK) {
        let kend = (kb + BLOCK).min(k);
        for i in 0..h {
            let arow = a.row(r0 + i);
            let orow = &mut out[i * n..(i + 1) * n];
            // Indexed on purpose: `kk` addresses both `arow` and `b`'s rows.
            #[allow(clippy::needless_range_loop)]
            for kk in kb..kend {
                let aval = arow[kk];
                if aval == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aval * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxEq;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn small_product_matches_hand_computed() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.try_matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn serial_matches_naive_rectangular() {
        let a = Matrix::random_uniform(17, 33, 1);
        let b = Matrix::random_uniform(33, 9, 2);
        let fast = a.matmul_serial(&b).unwrap();
        assert!(fast.approx_eq(&naive(&a, &b), 1e-10));
    }

    #[test]
    fn parallel_matches_serial() {
        let a = Matrix::random_uniform(130, 70, 3);
        let b = Matrix::random_uniform(70, 110, 4);
        let p = a.matmul_parallel(&b).unwrap();
        let s = a.matmul_serial(&b).unwrap();
        assert!(p.approx_eq(&s, 1e-10));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_any_thread_count() {
        let _guard = gemm::test_config_lock();
        let a = Matrix::random_uniform(97, 64, 11);
        let b = Matrix::random_uniform(64, 55, 12);
        let s = a.matmul_serial(&b).unwrap();
        for threads in [1, 2, 5] {
            gemm::set_gemm_threads(Some(threads));
            assert_eq!(a.matmul_parallel(&b).unwrap(), s, "threads = {threads}");
        }
        gemm::set_gemm_threads(None);
    }

    #[test]
    fn try_matmul_dispatches_every_default_kernel() {
        let _guard = gemm::test_config_lock();
        let a = Matrix::random_uniform(40, 40, 13);
        let b = Matrix::random_uniform(40, 40, 14);
        let oracle = naive(&a, &b);
        for kernel in GemmKernel::ALL {
            gemm::set_default_kernel(Some(kernel));
            let c = a.try_matmul(&b).unwrap();
            assert!(c.approx_eq(&oracle, 1e-10), "{kernel}");
        }
        gemm::set_default_kernel(None);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random_uniform(20, 20, 5);
        let i = Matrix::identity(20);
        assert!(a.try_matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.try_matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::random_uniform(12, 8, 6);
        let v = Matrix::random_uniform(8, 1, 7);
        let fast = a.matvec(&v).unwrap();
        let slow = a.try_matmul(&v).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn vecmat_matches_transpose_matmul() {
        let a = Matrix::random_uniform(8, 12, 8);
        let v = Matrix::random_uniform(8, 1, 9);
        let fast = a.vecmat(&v).unwrap();
        let slow = v.transpose().try_matmul(&a).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn outer_and_dot() {
        let u = Matrix::col_vector(&[1.0, 2.0]);
        let v = Matrix::col_vector(&[3.0, 4.0, 5.0]);
        let o = Matrix::outer(&u, &v).unwrap();
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o.get(1, 2), 10.0);
        let w = Matrix::col_vector(&[1.0, 1.0, 2.0]);
        assert_eq!(Matrix::dot(&v, &w).unwrap(), 17.0);
        assert!(Matrix::dot(&u, &v).is_err());
    }

    #[test]
    fn matmul_counts_flops() {
        let _guard = gemm::test_config_lock();
        let a = Matrix::identity(10);
        let before = flops::read();
        let _ = a.try_matmul(&a).unwrap();
        assert!(flops::read() - before >= 2000);
    }
}
