//! Global floating-point-operation accounting.
//!
//! The complexity claims of the paper (Table 2) are about *operation counts*,
//! not wall-clock time. Every kernel in this crate reports the number of
//! multiply-add operations it performs to a process-wide counter, so the
//! benchmark harness can fit measured counts against the claimed exponents
//! (`n²k²`, `n²k`, `nᵞk`, …) deterministically.
//!
//! Counters are cheap relaxed atomics; a labeled-counter registry (backed by
//! `parking_lot`) lets experiments attribute cost to phases (e.g. "delta
//! blocks" vs "view update").

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static FLOPS: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<BTreeMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Adds `n` floating-point operations to the global counter.
#[inline]
pub fn add(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Current value of the global counter.
#[inline]
pub fn read() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Resets the global counter to zero and returns the previous value.
pub fn reset() -> u64 {
    FLOPS.swap(0, Ordering::Relaxed)
}

/// Adds `n` operations to the labeled counter `label` (and the global one).
pub fn add_labeled(label: &str, n: u64) {
    add(n);
    *registry().lock().entry(label.to_string()).or_insert(0) += n;
}

/// Snapshot of all labeled counters.
pub fn labeled_snapshot() -> BTreeMap<String, u64> {
    registry().lock().clone()
}

/// Clears all labeled counters.
pub fn clear_labels() {
    registry().lock().clear();
}

/// Throughput in GFLOP/s for `ops` floating-point operations over `wall`
/// time (0 when the interval is empty) — the unit the kernel benchmarks
/// report.
pub fn gflops(ops: u64, wall: std::time::Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    ops as f64 / secs / 1e9
}

/// RAII scope measuring the FLOPs executed between construction and
/// [`FlopScope::finish`] (or drop).
///
/// ```
/// use linview_matrix::flops::FlopScope;
/// use linview_matrix::Matrix;
/// let scope = FlopScope::start();
/// let a = Matrix::identity(8);
/// let _ = (&a * &a).unwrap();
/// assert!(scope.finish() >= 2 * 8 * 8 * 8);
/// ```
#[derive(Debug)]
pub struct FlopScope {
    start: u64,
}

impl FlopScope {
    /// Begins measuring from the current global counter value.
    pub fn start() -> Self {
        FlopScope { start: read() }
    }

    /// FLOPs observed so far without ending the scope.
    pub fn elapsed(&self) -> u64 {
        read().saturating_sub(self.start)
    }

    /// Ends the scope and returns the observed FLOP count.
    pub fn finish(self) -> u64 {
        self.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_are_monotonic() {
        let before = read();
        add(42);
        assert!(read() >= before + 42);
    }

    #[test]
    fn scope_measures_delta() {
        let s = FlopScope::start();
        add(1000);
        assert!(s.elapsed() >= 1000);
        assert!(s.finish() >= 1000);
    }

    #[test]
    fn gflops_handles_zero_intervals() {
        use std::time::Duration;
        assert_eq!(gflops(1_000, Duration::ZERO), 0.0);
        assert!((gflops(2_000_000_000, Duration::from_secs(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn labeled_counters_accumulate() {
        clear_labels();
        add_labeled("test-phase", 5);
        add_labeled("test-phase", 7);
        assert_eq!(labeled_snapshot().get("test-phase"), Some(&12));
        clear_labels();
        assert!(!labeled_snapshot().contains_key("test-phase"));
    }
}
