use crate::{MatrixError, Result};

/// A dense, row-major, heap-allocated `f64` matrix.
///
/// This is the single concrete matrix type used throughout the LINVIEW
/// reproduction: base relations, materialized views, factored delta blocks
/// (`U`, `V`), and vectors (as `n×1` / `1×n` matrices) are all `Matrix`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates an all-ones matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from nested row vectors.
    ///
    /// Returns [`MatrixError::RaggedRows`] if the rows have different lengths
    /// and [`MatrixError::Empty`] for an empty input.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MatrixError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MatrixError::RaggedRows {
                    row: i,
                    expected: cols,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::RaggedRows {
                row: 0,
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds an `n×1` column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Builds a `1×n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// True for `n×1` or `1×n` shapes.
    #[inline]
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// Reads the entry at `(r, c)`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Checked read of the entry at `(r, c)`.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f64> {
        if r >= self.rows || c >= self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Writes the entry at `(r, c)`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Checked write of the entry at `(r, c)`.
    pub fn try_set(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r, c),
                shape: self.shape(),
            });
        }
        self.data[r * self.cols + c] = v;
        Ok(())
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Extracts column `c` as an `n×1` matrix.
    pub fn col_matrix(&self, c: usize) -> Matrix {
        Matrix::col_vector(&self.col(c))
    }

    /// Extracts row `r` as a `1×n` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::row_vector(self.row(r))
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Entrywise combination of two equally shaped matrices.
    pub fn zip_with(&self, other: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch {
                op: "zip_with",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Extracts the contiguous submatrix `[r0, r0+h) × [c0, c0+w)`.
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Result<Matrix> {
        if r0 + h > self.rows || c0 + w > self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r0 + h, c0 + w),
                shape: self.shape(),
            });
        }
        let mut out = Matrix::zeros(h, w);
        for r in 0..h {
            out.row_mut(r)
                .copy_from_slice(&self.row(r0 + r)[c0..c0 + w]);
        }
        Ok(out)
    }

    /// Overwrites the block starting at `(r0, c0)` with `block`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(MatrixError::OutOfBounds {
                index: (r0 + block.rows, c0 + block.cols),
                shape: self.shape(),
            });
        }
        for r in 0..block.rows {
            self.row_mut(r0 + r)[c0..c0 + block.cols].copy_from_slice(block.row(r));
        }
        Ok(())
    }

    /// Number of entries whose absolute value exceeds `tol`.
    pub fn nnz(&self, tol: f64) -> usize {
        self.data.iter().filter(|x| x.abs() > tol).count()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// Approximate heap footprint in bytes (used by the Table 3 memory study).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, MatrixError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(vec![]).unwrap_err(), MatrixError::Empty);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(4, 4);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert!(m.try_get(4, 0).is_err());
        assert!(m.try_set(0, 4, 1.0).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert_eq!(m.col_matrix(1).shape(), (2, 1));
        assert_eq!(m.row_matrix(0).shape(), (1, 2));
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let s = m.submatrix(1, 1, 2, 2).unwrap();
        assert_eq!(s.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
        let mut t = Matrix::zeros(3, 3);
        t.set_submatrix(1, 1, &s).unwrap();
        assert_eq!(t.get(2, 2), 9.0);
        assert!(m.submatrix(2, 2, 2, 2).is_err());
    }

    #[test]
    fn map_and_zip() {
        let m = Matrix::ones(2, 2);
        let d = m.map(|x| x * 3.0);
        assert_eq!(d.sum(), 12.0);
        let z = m.zip_with(&d, |a, b| a + b).unwrap();
        assert_eq!(z.sum(), 16.0);
        assert!(m.zip_with(&Matrix::ones(3, 2), |a, _| a).is_err());
    }

    #[test]
    fn nnz_counts_above_tolerance() {
        let m = Matrix::from_rows(vec![vec![0.0, 1e-12], vec![0.5, -2.0]]).unwrap();
        assert_eq!(m.nnz(1e-9), 2);
    }

    #[test]
    fn diagonal_builder() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace().unwrap(), 6.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn iter_yields_row_major() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples[1], (0, 1, 2.0));
        assert_eq!(triples[2], (1, 0, 3.0));
    }

    #[test]
    fn memory_bytes_scales_with_size() {
        assert_eq!(Matrix::zeros(10, 10).memory_bytes(), 800);
    }
}
