//! Property-based tests for the decomposition kernels (SVD, recompression,
//! QR, Cholesky, LU) — the numerical invariants every LINVIEW maintenance
//! path leans on.

use linview_matrix::{numerical_rank, recompress, ApproxEq, Cholesky, Matrix, Qr, Svd};
use proptest::prelude::*;

/// Strategy: shape plus seed for a random dense matrix.
fn shaped() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..10, 2usize..10, 0u64..10_000)
}

proptest! {
    #[test]
    fn svd_reconstructs((m, n, seed) in shaped()) {
        let a = Matrix::random_uniform(m, n, seed);
        let svd = Svd::factorize(&a).unwrap();
        prop_assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_values_sorted_nonnegative((m, n, seed) in shaped()) {
        let a = Matrix::random_uniform(m, n, seed);
        let svd = Svd::factorize(&a).unwrap();
        let s = svd.singular_values();
        prop_assert!(s.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(s.iter().all(|&x| x >= 0.0));
        prop_assert_eq!(s.len(), m.min(n));
    }

    #[test]
    fn svd_spectral_norm_bounds_frobenius((m, n, seed) in shaped()) {
        // σ_max <= ‖A‖_F <= √rank · σ_max.
        let a = Matrix::random_uniform(m, n, seed);
        let svd = Svd::factorize(&a).unwrap();
        let fro = a.frobenius_norm();
        let smax = svd.spectral_norm();
        prop_assert!(smax <= fro + 1e-9);
        prop_assert!(fro <= smax * (m.min(n) as f64).sqrt() + 1e-9);
    }

    #[test]
    fn svd_transpose_has_same_singular_values((m, n, seed) in shaped()) {
        let a = Matrix::random_uniform(m, n, seed);
        let s1 = Svd::factorize(&a).unwrap();
        let s2 = Svd::factorize(&a.transpose()).unwrap();
        for (x, y) in s1.singular_values().iter().zip(s2.singular_values()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn rank_of_outer_product_sum_is_bounded(
        (n, seed) in (4usize..12, 0u64..10_000),
        k in 1usize..4
    ) {
        let mut a = Matrix::zeros(n, n);
        for i in 0..k {
            let u = Matrix::random_col(n, seed + 2 * i as u64);
            let v = Matrix::random_col(n, seed + 2 * i as u64 + 1);
            a.add_outer(&u, &v).unwrap();
        }
        prop_assert!(numerical_rank(&a, 1e-9).unwrap() <= k);
    }

    #[test]
    fn recompress_preserves_product((m, n, seed) in shaped(), k in 1usize..6) {
        let u = Matrix::random_uniform(m, k, seed);
        let v = Matrix::random_uniform(n, k, seed + 1);
        let rc = recompress(&u, &v, 1e-11).unwrap();
        prop_assert!(rc.rank_after <= rc.rank_before);
        let before = u.try_matmul(&v.transpose()).unwrap();
        let after = rc.u.try_matmul(&rc.v.transpose()).unwrap();
        prop_assert!(after.approx_eq(&before, 1e-7));
    }

    #[test]
    fn recompress_collapses_duplicate_columns((m, n, seed) in shaped()) {
        let ucol = Matrix::random_col(m, seed);
        let vcol = Matrix::random_col(n, seed + 1);
        let u = Matrix::hstack(&[&ucol, &ucol]).unwrap();
        let v = Matrix::hstack(&[&vcol, &vcol]).unwrap();
        let rc = recompress(&u, &v, 1e-9).unwrap();
        prop_assert_eq!(rc.rank_after, 1);
    }

    #[test]
    fn qr_least_squares_minimizes_residual((n, seed) in (3usize..8, 0u64..10_000)) {
        // Perturbing the LS solution never decreases the residual.
        let m = n + 4;
        let x = Matrix::random_uniform(m, n, seed);
        let y = Matrix::random_col(m, seed + 1);
        let qr = match Qr::factorize(&x) {
            Ok(qr) => qr,
            Err(_) => return Ok(()), // rank-deficient draw; skip
        };
        let beta = qr.solve_least_squares(&y).unwrap();
        let base = x
            .try_matmul(&beta)
            .unwrap()
            .try_sub(&y)
            .unwrap()
            .frobenius_norm();
        for trial in 0..3u64 {
            let noise = Matrix::random_col(n, seed + 2 + trial).scale(0.1);
            let perturbed = beta.try_add(&noise).unwrap();
            let r = x
                .try_matmul(&perturbed)
                .unwrap()
                .try_sub(&y)
                .unwrap()
                .frobenius_norm();
            prop_assert!(r >= base - 1e-9);
        }
    }

    #[test]
    fn cholesky_update_then_downdate_roundtrips((n, seed) in (3usize..10, 0u64..10_000)) {
        let a = linview_matrix::random_spd(n, seed);
        let mut ch = Cholesky::factorize(&a).unwrap();
        let before = ch.factor().clone();
        let v = Matrix::random_col(n, seed + 1);
        ch.update(&v).unwrap();
        ch.downdate(&v).unwrap();
        prop_assert!(ch.factor().approx_eq(&before, 1e-7));
    }

    #[test]
    fn lu_solve_satisfies_system((n, seed) in (2usize..10, 0u64..10_000)) {
        let a = Matrix::random_diag_dominant(n, seed);
        let b = Matrix::random_uniform(n, 2, seed + 1);
        let x = a.solve(&b).unwrap();
        let residual = a.try_matmul(&x).unwrap().try_sub(&b).unwrap();
        prop_assert!(residual.max_abs() < 1e-8);
    }

    #[test]
    fn inverse_is_two_sided((n, seed) in (2usize..9, 0u64..10_000)) {
        let a = Matrix::random_diag_dominant(n, seed);
        let inv = a.inverse().unwrap();
        let eye = Matrix::identity(n);
        prop_assert!(a.try_matmul(&inv).unwrap().approx_eq(&eye, 1e-8));
        prop_assert!(inv.try_matmul(&a).unwrap().approx_eq(&eye, 1e-8));
    }
}
