//! Code generation backends.
//!
//! The paper's system emits Octave programs (single-node) and Spark programs
//! (cluster). Here the [`octave`] backend emits runnable GNU Octave source
//! for each trigger, and [`plan`] emits a cost-annotated textual execution
//! plan (the form consumed by humans and by golden tests). The executable
//! in-process backend is `linview-runtime`, and the simulated cluster
//! backend is `linview-dist`.

pub mod numpy;
pub mod octave;
pub mod plan;
pub mod spark;
