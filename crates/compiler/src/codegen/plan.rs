//! Cost-annotated textual execution plans.
//!
//! For every trigger statement, the plan shows the statement text, the
//! shapes involved, and the modeled FLOP cost (at the optimal chain order).
//! This is the artifact the benchmark harness prints when explaining *why*
//! incremental maintenance wins — it makes the O(n^γ) → O(kn²) conversion
//! visible statement by statement.

use linview_expr::cost::CostModel;
use linview_expr::Catalog;

use crate::{Result, Trigger, TriggerProgram, TriggerStmt};

/// Renders the plan for a whole trigger program.
pub fn render_program(tp: &TriggerProgram, model: &CostModel) -> Result<String> {
    let mut out = String::new();
    out.push_str(&format!(
        "LINVIEW incremental plan (gamma = {}):\n",
        model.gamma
    ));
    for t in &tp.triggers {
        out.push_str(&render_trigger(t, &tp.catalog, model)?);
    }
    Ok(out)
}

/// Renders the plan for one trigger.
pub fn render_trigger(t: &Trigger, cat: &Catalog, model: &CostModel) -> Result<String> {
    let mut out = String::new();
    out.push_str(&format!(
        "ON UPDATE {} (rank-{} update):\n",
        t.input, t.update_rank
    ));
    for s in &t.stmts {
        let (cost, shape) = stmt_cost_and_shape(s, cat, model)?;
        out.push_str(&format!("  {s:<60} % {shape}, {cost:.0} flops\n"));
    }
    out.push_str(&format!("  -- total: {:.0} flops\n", t.cost(cat, model)?));
    Ok(out)
}

fn stmt_cost_and_shape(s: &TriggerStmt, cat: &Catalog, model: &CostModel) -> Result<(f64, String)> {
    Ok(match s {
        TriggerStmt::Assign { var, expr } => {
            let d = expr.dim(cat)?;
            let _ = var;
            (model.expr_cost(expr, cat)?, format!("{d}"))
        }
        TriggerStmt::ShermanMorrison { inv_var, p, .. } => {
            let n = cat.get(inv_var)?.rows as f64;
            let k = p.dim(cat)?.cols as f64;
            (
                model.expr_cost(p, cat)? + k * 6.0 * n * n,
                format!("({n}x{n}), {k} S-M steps"),
            )
        }
        TriggerStmt::ApplyDelta { target, u, .. } => {
            let d = cat.get(target)?;
            let k = u.dim(cat)?.cols;
            (
                linview_expr::cost::low_rank_update_cost(d, k),
                format!("{d} += rank-{k}"),
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, Program};
    use linview_expr::Expr;

    #[test]
    fn plan_renders_costs_per_statement() {
        let mut cat = Catalog::new();
        cat.declare("A", 64, 64);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let plan = render_program(&tp, &CostModel::cubic()).unwrap();
        assert!(plan.contains("ON UPDATE A (rank-1 update):"));
        assert!(plan.contains("flops"));
        assert!(plan.contains("-- total:"));
        // The incremental trigger must cost far less than one n^3 re-evaluation.
        let t = &tp.triggers[0];
        let cost = t.cost(&tp.catalog, &CostModel::cubic()).unwrap();
        assert!(cost < 2.0 * 64f64.powi(3) / 4.0);
    }
}
