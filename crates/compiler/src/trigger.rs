//! Trigger programs — the output of Algorithm 1.

use linview_expr::cost::CostModel;
use linview_expr::{Catalog, Expr};

use crate::schedule::StmtDag;
use crate::Result;

/// One statement of a trigger body.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerStmt {
    /// `var := expr` — evaluates a delta block (or shared temporary) against
    /// the **pre-update** state. All `Assign`s precede all `ApplyDelta`s.
    Assign {
        /// Name of the block variable being defined.
        var: String,
        /// Defining expression.
        expr: Expr,
    },
    /// Incremental maintenance of a materialized inverse `W = E⁻¹` under the
    /// factored update `ΔE = P Qᵀ`, by `rank(P)` successive applications of
    /// the Sherman–Morrison formula (§4.1):
    ///
    /// ```text
    /// Δ(E⁻¹) = − E⁻¹ u vᵀ E⁻¹ / (1 + vᵀ E⁻¹ u)      per rank-1 pair (u, v)
    /// ```
    ///
    /// The runtime writes the accumulated factored delta of `W` into the
    /// block variables `out_u`/`out_v`; a later `ApplyDelta` folds it into
    /// `W` itself.
    ShermanMorrison {
        /// The materialized inverse view being maintained.
        inv_var: String,
        /// Left factor blocks of the inner delta `ΔE = P Qᵀ`.
        p: Expr,
        /// Right factor blocks of the inner delta.
        q: Expr,
        /// Output block variable receiving `U_W`.
        out_u: String,
        /// Output block variable receiving `V_W`.
        out_v: String,
    },
    /// `target += u · vᵀ` — the low-rank view update.
    ApplyDelta {
        /// The maintained view.
        target: String,
        /// Left factor blocks.
        u: Expr,
        /// Right factor blocks.
        v: Expr,
    },
}

impl std::fmt::Display for TriggerStmt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TriggerStmt::Assign { var, expr } => write!(f, "{var} := {expr};"),
            TriggerStmt::ShermanMorrison {
                inv_var,
                p,
                q,
                out_u,
                out_v,
            } => write!(
                f,
                "({out_u}, {out_v}) := sherman_morrison({inv_var}, {p}, {q});"
            ),
            TriggerStmt::ApplyDelta { target, u, v } => write!(f, "{target} += {u} {v}';"),
        }
    }
}

/// The trigger for updates to one input matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// The dynamic input matrix this trigger reacts to.
    pub input: String,
    /// Rank of the incoming update (`ΔX = dU_X dV_Xᵀ` with `k` columns).
    pub update_rank: usize,
    /// Trigger body: assignments (and Sherman–Morrison steps), then updates.
    pub stmts: Vec<TriggerStmt>,
}

impl Trigger {
    /// All `Assign`/`ShermanMorrison` statements (the "compute" phase).
    pub fn compute_phase(&self) -> impl Iterator<Item = &TriggerStmt> {
        self.stmts
            .iter()
            .filter(|s| !matches!(s, TriggerStmt::ApplyDelta { .. }))
    }

    /// All `ApplyDelta` statements (the "update" phase).
    pub fn update_phase(&self) -> impl Iterator<Item = &TriggerStmt> {
        self.stmts
            .iter()
            .filter(|s| matches!(s, TriggerStmt::ApplyDelta { .. }))
    }

    /// The `(U, V)` block-variable pairs whose product forms a view delta,
    /// deduplicated in first-occurrence order.
    ///
    /// Only pairs where both factors are plain variables qualify (those are
    /// the blocks the compute phase binds and later statements reference);
    /// this is what the runtime's optional numerical recompression pass
    /// rewrites in place. A trigger folding the same block pair into a
    /// view twice still names the pair once — the recompression pass and
    /// DAG node identity both key on the pair, not on the update count.
    pub fn delta_pairs(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = Vec::new();
        for s in &self.stmts {
            if let TriggerStmt::ApplyDelta {
                u: Expr::Var(u),
                v: Expr::Var(v),
                ..
            } = s
            {
                let pair = (u.as_str(), v.as_str());
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out
    }

    /// Names of all views this trigger maintains (targets of `ApplyDelta`),
    /// deduplicated in first-occurrence order — a trigger that updates one
    /// view twice maintains it once, and everything keyed on view identity
    /// (DAG nodes, engine statistics, partitioned-view install sets) relies
    /// on the list being exact.
    pub fn maintained_views(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.stmts {
            if let TriggerStmt::ApplyDelta { target, .. } = s {
                if !out.contains(&target.as_str()) {
                    out.push(target.as_str());
                }
            }
        }
        out
    }

    /// The statement dependency DAG of this trigger body, with its
    /// topologically-sorted parallel stages (see [`crate::schedule`]).
    /// Cyclic dependencies — impossible for Algorithm 1 output — are a
    /// compile error, and [`compile()`](crate::compile()) validates every
    /// trigger it emits through this same call.
    pub fn dag(&self) -> Result<StmtDag> {
        StmtDag::analyze(&self.stmts)
    }

    /// Modeled FLOP cost of one firing of this trigger.
    pub fn cost(&self, cat: &Catalog, model: &CostModel) -> Result<f64> {
        let mut total = 0.0;
        for s in &self.stmts {
            match s {
                TriggerStmt::Assign { expr, .. } => total += model.expr_cost(expr, cat)?,
                TriggerStmt::ShermanMorrison { inv_var, p, .. } => {
                    // k rank-1 S-M applications, each O(n²): two matvecs, an
                    // outer product, a scale, and an accumulate.
                    let n = cat.get(inv_var)?.rows as f64;
                    let k = p.dim(cat)?.cols as f64;
                    total += model.expr_cost(p, cat)?;
                    total += k * 6.0 * n * n;
                }
                TriggerStmt::ApplyDelta { target, u, .. } => {
                    let d = cat.get(target)?;
                    let k = u.dim(cat)?.cols;
                    total += model.expr_cost(u, cat)?;
                    total += linview_expr::cost::low_rank_update_cost(d, k);
                }
            }
        }
        Ok(total)
    }
}

impl std::fmt::Display for Trigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ON UPDATE {} BY (dU_{}, dV_{}):",
            self.input, self.input, self.input
        )?;
        for s in &self.stmts {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// The complete incremental program: one trigger per dynamic input plus the
/// catalog extended with every auxiliary block variable the triggers define.
#[derive(Debug, Clone)]
pub struct TriggerProgram {
    /// Triggers, one per dynamic input, in declaration order.
    pub triggers: Vec<Trigger>,
    /// Catalog covering base matrices, views, and all delta blocks.
    pub catalog: Catalog,
}

impl TriggerProgram {
    /// Finds the trigger for a given input matrix.
    pub fn trigger_for(&self, input: &str) -> Option<&Trigger> {
        self.triggers.iter().find(|t| t.input == input)
    }

    /// Total modeled FLOP cost of firing every trigger once ("the total
    /// execution cost of an incremental program is the sum of execution
    /// costs of its triggers", §4).
    pub fn cost(&self, model: &CostModel) -> Result<f64> {
        let mut total = 0.0;
        for t in &self.triggers {
            total += t.cost(&self.catalog, model)?;
        }
        Ok(total)
    }

    /// The staged schedule of every trigger, in declaration order — the
    /// program-wide view of [`Trigger::dag`].
    pub fn dags(&self) -> Result<Vec<StmtDag>> {
        self.triggers.iter().map(Trigger::dag).collect()
    }
}

impl std::fmt::Display for TriggerProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for t in &self.triggers {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trigger {
        Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![
                TriggerStmt::Assign {
                    var: "U_B".into(),
                    expr: Expr::var("dU_A"),
                },
                TriggerStmt::ApplyDelta {
                    target: "A".into(),
                    u: Expr::var("dU_A"),
                    v: Expr::var("dV_A"),
                },
                TriggerStmt::ApplyDelta {
                    target: "B".into(),
                    u: Expr::var("U_B"),
                    v: Expr::var("V_B"),
                },
            ],
        }
    }

    #[test]
    fn phases_partition_statements() {
        let t = sample();
        assert_eq!(t.compute_phase().count(), 1);
        assert_eq!(t.update_phase().count(), 2);
        assert_eq!(t.maintained_views(), vec!["A", "B"]);
    }

    #[test]
    fn display_matches_paper_syntax() {
        let t = sample();
        let s = t.to_string();
        assert!(s.starts_with("ON UPDATE A BY (dU_A, dV_A):"));
        assert!(s.contains("U_B := dU_A;"));
        assert!(s.contains("B += U_B V_B';"));
    }

    #[test]
    fn repeated_view_updates_are_reported_once() {
        // A trigger folding two deltas into the same view maintains ONE
        // view; the update count is a statement property, not a view set.
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![
                TriggerStmt::ApplyDelta {
                    target: "B".into(),
                    u: Expr::var("U_B"),
                    v: Expr::var("V_B"),
                },
                TriggerStmt::ApplyDelta {
                    target: "A".into(),
                    u: Expr::var("dU_A"),
                    v: Expr::var("dV_A"),
                },
                TriggerStmt::ApplyDelta {
                    target: "B".into(),
                    u: Expr::var("U_B"),
                    v: Expr::var("V_B"),
                },
            ],
        };
        assert_eq!(t.maintained_views(), vec!["B", "A"]);
        assert_eq!(t.delta_pairs(), vec![("U_B", "V_B"), ("dU_A", "dV_A")]);
        // The DAG still keeps both B updates as ordered nodes.
        assert_eq!(t.dag().unwrap().stage_count(), 2);
    }

    #[test]
    fn cost_counts_updates() {
        let mut cat = Catalog::new();
        cat.declare("A", 10, 10);
        cat.declare("B", 10, 10);
        cat.declare("dU_A", 10, 1);
        cat.declare("dV_A", 10, 1);
        cat.declare("U_B", 10, 2);
        cat.declare("V_B", 10, 2);
        let t = sample();
        let c = t.cost(&cat, &CostModel::cubic()).unwrap();
        // At least the two ApplyDelta costs: 2·1·100 + 2·2·100.
        assert!(c >= 600.0);
    }
}
