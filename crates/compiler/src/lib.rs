//! # linview-compiler
//!
//! The LINVIEW compiler (§4.4, §6): transforms a linear-algebra [`Program`]
//! into a [`TriggerProgram`] — one trigger per dynamic input matrix, each a
//! straight-line sequence of factored-delta block assignments followed by
//! low-rank `+=` view updates, exactly like Example 4.6 of the paper:
//!
//! ```text
//! ON UPDATE A BY (u_A, v_A):
//!   U_B := [ u_A | A u_A + u_A (v_A' u_A) ];
//!   V_B := [ A' v_A | v_A ];
//!   ...
//!   A += u_A v_A';  B += U_B V_B';  ...
//! ```
//!
//! Pipeline stages (mirroring Fig. 2's system overview):
//!
//! 1. **Frontend** — [`parse::parse_program`] accepts an APL-style textual
//!    form (`B := A * A;`), or programs are built directly with the API.
//! 2. **Normalization** — [`Program::hoist_inverses`] materializes every
//!    dynamic matrix-inverse subexpression as its own view so the
//!    Sherman–Morrison runtime primitive can maintain it.
//! 3. **Incremental compilation** — [`compile::compile`] is Algorithm 1.
//! 4. **Optimization** — [`optimizer`] runs copy propagation, common
//!    subexpression elimination, and dead-code elimination over triggers.
//!    [`schedule`] analyzes def-use dependencies between trigger
//!    statements and exposes the topologically-staged parallel execution
//!    plan ([`StmtDag`]) the runtime's staged interpreter consumes.
//! 5. **Code generation** — [`codegen::octave`] emits executable Octave
//!    source; [`codegen::plan`] emits an annotated textual plan. The
//!    in-process backend lives in `linview-runtime`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod analyze;
pub mod codegen;
pub mod compile;
pub mod optimizer;
pub mod parse;
mod program;
pub mod schedule;
mod trigger;

pub use analysis::{analyze, AnalysisReport};
pub use analyze::{
    analyze_joint, analyze_program, check_joint, check_program, derive_effects, verify_stages,
    AnalyzeOptions, AnalyzerPass, AnalyzerReport, CostEstimate, Diagnostic, Severity,
    TriggerAnalysis,
};
pub use compile::{compile, compile_joint, CompileOptions, JointTrigger};
pub use program::{Program, Statement};
pub use schedule::{StmtDag, StmtEffects};
pub use trigger::{Trigger, TriggerProgram, TriggerStmt};

/// Crate-wide result alias (errors are symbolic-layer errors).
pub type Result<T> = std::result::Result<T, linview_expr::ExprError>;
