//! Linear-algebra programs: ordered lists of assignment statements.

use linview_expr::{Catalog, Expr, ExprError};

use crate::Result;

/// One program statement `target := expr` (§3: "each consisting of an
/// expression and a variable (matrix) storing its result").
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The view (matrix variable) the result is stored into.
    pub target: String,
    /// The defining expression.
    pub expr: Expr,
}

impl Statement {
    /// Creates a statement.
    pub fn new(target: impl Into<String>, expr: Expr) -> Self {
        Statement {
            target: target.into(),
            expr,
        }
    }
}

impl std::fmt::Display for Statement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} := {};", self.target, self.expr)
    }
}

/// A straight-line linear-algebra program.
///
/// ```
/// use linview_compiler::Program;
/// use linview_expr::{Catalog, Expr};
/// let mut cat = Catalog::new();
/// cat.declare("A", 4, 4);
/// let mut p = Program::new();
/// p.assign("B", Expr::var("A") * Expr::var("A"));
/// p.assign("C", Expr::var("B") * Expr::var("B"));
/// p.infer_dims(&mut cat).unwrap();
/// assert_eq!(cat.get("C").unwrap().as_pair(), (4, 4));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    statements: Vec<Statement>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `target := expr` and returns `&mut self` for chaining.
    pub fn assign(&mut self, target: impl Into<String>, expr: Expr) -> &mut Self {
        self.statements.push(Statement::new(target, expr));
        self
    }

    /// The statements in program order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Type-checks the program top to bottom, declaring each statement's
    /// target shape in the catalog as it goes.
    ///
    /// Reassigning a view to a different shape is rejected.
    pub fn infer_dims(&self, cat: &mut Catalog) -> Result<()> {
        for stmt in &self.statements {
            let d = stmt.expr.dim(cat)?;
            if cat.contains(&stmt.target) {
                let existing = cat.get(&stmt.target)?;
                if existing != d {
                    return Err(ExprError::DimMismatch {
                        op: "reassign",
                        lhs: existing.as_pair(),
                        rhs: d.as_pair(),
                    });
                }
            }
            cat.declare(&stmt.target, d.rows, d.cols);
        }
        Ok(())
    }

    /// Hoists every `Inverse` subexpression that depends on a dynamic matrix
    /// into its own statement, so Algorithm 1 can maintain it with the
    /// Sherman–Morrison primitive (§4.1, §5.1).
    ///
    /// `dynamic` is the set of input matrices that receive updates. A view
    /// is *transitively dynamic* if its defining expression references a
    /// dynamic input or another dynamic view.
    ///
    /// Returns the normalized program; auxiliary views are named
    /// `_inv0, _inv1, …` ("the optimizer might define a number of auxiliary
    /// materialized views", §6).
    pub fn hoist_inverses(&self, dynamic: &[&str]) -> Program {
        let mut dyn_vars: Vec<String> = dynamic.iter().map(|s| s.to_string()).collect();
        let mut out = Program::new();
        let mut counter = 0usize;
        for stmt in &self.statements {
            let mut hoisted = Vec::new();
            let new_expr = hoist_expr(&stmt.expr, &dyn_vars, &mut hoisted, &mut counter);
            for (name, inner) in hoisted {
                // The hoisted inverse is dynamic by construction.
                dyn_vars.push(name.clone());
                out.assign(name, Expr::Inverse(Box::new(inner)));
            }
            if new_expr.references_any(dyn_vars.iter().map(String::as_str)) {
                dyn_vars.push(stmt.target.clone());
            }
            out.assign(stmt.target.clone(), new_expr);
        }
        out
    }
}

/// Recursively replaces dynamic `Inverse` subexpressions with fresh view
/// variables, except when the inverse is already the whole right-hand side
/// (those are handled natively by the compiler).
fn hoist_expr(
    e: &Expr,
    dynamic: &[String],
    hoisted: &mut Vec<(String, Expr)>,
    counter: &mut usize,
) -> Expr {
    // Top-level inverse: keep in place, but still normalize inside it.
    if let Expr::Inverse(inner) = e {
        return Expr::Inverse(Box::new(hoist_inner(inner, dynamic, hoisted, counter)));
    }
    hoist_inner(e, dynamic, hoisted, counter)
}

fn hoist_inner(
    e: &Expr,
    dynamic: &[String],
    hoisted: &mut Vec<(String, Expr)>,
    counter: &mut usize,
) -> Expr {
    match e {
        Expr::Inverse(inner) => {
            let inner = hoist_inner(inner, dynamic, hoisted, counter);
            if inner.references_any(dynamic.iter().map(String::as_str)) {
                let name = format!("_inv{counter}");
                *counter += 1;
                hoisted.push((name.clone(), inner));
                Expr::Var(name)
            } else {
                Expr::Inverse(Box::new(inner))
            }
        }
        Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => e.clone(),
        Expr::Add(a, b) => Expr::Add(
            Box::new(hoist_inner(a, dynamic, hoisted, counter)),
            Box::new(hoist_inner(b, dynamic, hoisted, counter)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(hoist_inner(a, dynamic, hoisted, counter)),
            Box::new(hoist_inner(b, dynamic, hoisted, counter)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(hoist_inner(a, dynamic, hoisted, counter)),
            Box::new(hoist_inner(b, dynamic, hoisted, counter)),
        ),
        Expr::Scale(s, inner) => {
            Expr::Scale(*s, Box::new(hoist_inner(inner, dynamic, hoisted, counter)))
        }
        Expr::Transpose(inner) => {
            Expr::Transpose(Box::new(hoist_inner(inner, dynamic, hoisted, counter)))
        }
        Expr::HStack(parts) => Expr::HStack(
            parts
                .iter()
                .map(|p| hoist_inner(p, dynamic, hoisted, counter))
                .collect(),
        ),
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.statements {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_dims_declares_targets() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("C", Expr::var("B") * Expr::var("B"));
        p.infer_dims(&mut cat).unwrap();
        assert_eq!(cat.get("B").unwrap().as_pair(), (4, 4));
        assert_eq!(cat.get("C").unwrap().as_pair(), (4, 4));
    }

    #[test]
    fn infer_dims_rejects_shape_change() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("X", 4, 2);
        let mut p = Program::new();
        p.assign("B", Expr::var("A"));
        p.assign("B", Expr::var("X"));
        assert!(p.infer_dims(&mut cat).is_err());
    }

    #[test]
    fn display_round_trips_statements() {
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        assert_eq!(p.to_string(), "B := A A;\n");
    }

    #[test]
    fn hoist_inverses_extracts_dynamic_inverse() {
        // OLS: beta := inv(X' X) * (X' Y) with dynamic X.
        let mut p = Program::new();
        p.assign(
            "beta",
            (Expr::var("X").t() * Expr::var("X")).inv() * (Expr::var("X").t() * Expr::var("Y")),
        );
        let h = p.hoist_inverses(&["X"]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.statements()[0].target, "_inv0");
        assert!(matches!(h.statements()[0].expr, Expr::Inverse(_)));
        assert!(h.statements()[1].expr.references("_inv0"));
        assert!(!format!("{}", h.statements()[1].expr).contains("^-1"));
    }

    #[test]
    fn hoist_keeps_static_inverse_in_place() {
        let mut p = Program::new();
        p.assign("Z", Expr::var("M").inv() * Expr::var("X"));
        let h = p.hoist_inverses(&["X"]);
        assert_eq!(h.len(), 1);
        assert!(format!("{}", h.statements()[0].expr).contains("M^-1"));
    }

    #[test]
    fn hoist_keeps_top_level_inverse() {
        let mut p = Program::new();
        p.assign("W", Expr::var("Z").inv());
        let h = p.hoist_inverses(&["Z"]);
        assert_eq!(h.len(), 1);
        assert!(matches!(h.statements()[0].expr, Expr::Inverse(_)));
    }

    #[test]
    fn hoist_tracks_transitively_dynamic_views() {
        // Z := X' X (dynamic); W := inv(Z) nested in a bigger expr.
        let mut p = Program::new();
        p.assign("Z", Expr::var("X").t() * Expr::var("X"));
        p.assign("B", Expr::var("Z").inv() * Expr::var("Y"));
        let h = p.hoist_inverses(&["X"]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.statements()[1].target, "_inv0");
    }
}
