//! Statement dependency analysis and staged scheduling.
//!
//! A trigger body is a straight-line sequence of delta statements, but the
//! program order is far stricter than the *data* order: per-view delta
//! blocks read the same input factors and write disjoint variables, so most
//! of a trigger is embarrassingly parallel. This module makes that latent
//! parallelism explicit. [`StmtDag::analyze`] runs a def-use pass over the
//! statements — reads and writes per [`TriggerStmt`], honoring the
//! compute-phase-reads-pre-update-state contract and the in-place `+=`
//! mutation of `ApplyDelta` — and emits a dependency DAG together with its
//! topologically-sorted **parallel stages**: every statement in a stage is
//! provably independent of every other statement in that stage, and a stage
//! only starts once all of its predecessors' stages have finished.
//!
//! Three kinds of hazards induce edges (always from the earlier statement
//! in program order to the later one):
//!
//! * **read-after-write** — a statement reads a block variable an earlier
//!   statement defines (`U_C` reads `U_B`);
//! * **write-after-read** — a statement mutates a view an earlier
//!   statement reads pre-update (`A += dU_A dV_Aᵀ` must wait for every
//!   `U_X := … A …`);
//! * **write-after-write** — two statements write the same variable
//!   (a trigger folding two deltas into one view keeps them ordered).
//!
//! Program order is therefore one valid linear extension of the DAG, which
//! is what makes staged execution **bit-identical** to the sequential
//! interpreter: every statement observes exactly the environment state it
//! would have observed sequentially. The runtime consumes the stages in
//! `linview_runtime::exec`; each backend decides how a stage's independent
//! deltas are folded (threaded GEMMs, merged broadcast rounds, pipelined
//! frames).

use std::collections::BTreeSet;

use linview_expr::ExprError;

use crate::{Result, Trigger, TriggerStmt};

/// The read and write sets of one trigger statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtEffects {
    /// Variables the statement reads (pre-statement state).
    pub reads: BTreeSet<String>,
    /// Variables the statement defines or mutates.
    pub writes: BTreeSet<String>,
}

impl StmtEffects {
    /// The effect sets of `stmt`.
    ///
    /// `ApplyDelta` is a read-modify-write of its target (`X += U Vᵀ`), so
    /// the target appears in both sets; `ShermanMorrison` reads the
    /// materialized inverse it maintains but writes only its output
    /// blocks (the inverse itself is updated by a later `ApplyDelta`).
    pub fn of(stmt: &TriggerStmt) -> StmtEffects {
        let mut fx = StmtEffects::default();
        match stmt {
            TriggerStmt::Assign { var, expr } => {
                fx.reads.extend(expr.variables());
                fx.writes.insert(var.clone());
            }
            TriggerStmt::ShermanMorrison {
                inv_var,
                p,
                q,
                out_u,
                out_v,
            } => {
                fx.reads.extend(p.variables());
                fx.reads.extend(q.variables());
                fx.reads.insert(inv_var.clone());
                fx.writes.insert(out_u.clone());
                fx.writes.insert(out_v.clone());
            }
            TriggerStmt::ApplyDelta { target, u, v } => {
                fx.reads.extend(u.variables());
                fx.reads.extend(v.variables());
                fx.reads.insert(target.clone());
                fx.writes.insert(target.clone());
            }
        }
        fx
    }

    fn conflicts_with(&self, later: &StmtEffects) -> bool {
        // RAW: later reads what self writes.  WAR: later writes what self
        // reads.  WAW: both write the same variable.
        !self.writes.is_disjoint(&later.reads)
            || !self.reads.is_disjoint(&later.writes)
            || !self.writes.is_disjoint(&later.writes)
    }
}

/// The dependency DAG of a trigger body, with its parallel stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtDag {
    effects: Vec<StmtEffects>,
    /// `preds[i]` — statements that must complete before statement `i`.
    preds: Vec<Vec<usize>>,
    /// Topological levels: `stages[s]` holds the (program-ordered) indices
    /// of the statements runnable in parallel once stage `s − 1` is done.
    stages: Vec<Vec<usize>>,
}

impl StmtDag {
    /// Builds the DAG for a statement sequence via def-use analysis.
    ///
    /// Hazard edges always point forward in program order, so analysis of a
    /// well-formed trigger body cannot cycle; the error path exists because
    /// the staging algorithm validates *any* predecessor relation (see
    /// [`StmtDag::from_preds`]).
    pub fn analyze(stmts: &[TriggerStmt]) -> Result<StmtDag> {
        let effects: Vec<StmtEffects> = stmts.iter().map(StmtEffects::of).collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); stmts.len()];
        for j in 0..effects.len() {
            for i in 0..j {
                if effects[i].conflicts_with(&effects[j]) {
                    preds[j].push(i);
                }
            }
        }
        Self::from_preds(effects, preds)
    }

    /// Builds a DAG from explicit effect sets and predecessor lists,
    /// computing the stage levels and rejecting cyclic inputs with
    /// [`ExprError::ScheduleCycle`].
    pub fn from_preds(effects: Vec<StmtEffects>, preds: Vec<Vec<usize>>) -> Result<StmtDag> {
        assert_eq!(effects.len(), preds.len(), "one predecessor list per stmt");
        let n = preds.len();
        let mut level = vec![usize::MAX; n];
        let mut placed = 0usize;
        let mut stages: Vec<Vec<usize>> = Vec::new();
        while placed < n {
            let mut stage = Vec::new();
            for (i, ps) in preds.iter().enumerate() {
                if level[i] == usize::MAX && ps.iter().all(|&p| level[p] < stages.len()) {
                    stage.push(i);
                }
            }
            if stage.is_empty() {
                let stuck: Vec<usize> = (0..n).filter(|&i| level[i] == usize::MAX).collect();
                return Err(ExprError::ScheduleCycle { stmts: stuck });
            }
            for &i in &stage {
                level[i] = stages.len();
            }
            placed += stage.len();
            stages.push(stage);
        }
        Ok(StmtDag {
            effects,
            preds,
            stages,
        })
    }

    /// Number of statements in the scheduled body.
    pub fn stmt_count(&self) -> usize {
        self.effects.len()
    }

    /// The parallel stages, in execution order; every inner vector is
    /// sorted by statement index (program order).
    pub fn stages(&self) -> &[Vec<usize>] {
        &self.stages
    }

    /// Number of stages (the critical-path length of the trigger body).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Widest stage — the peak number of provably independent statements.
    pub fn max_stage_width(&self) -> usize {
        self.stages.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Statements saved from the critical path: `stmt_count − stage_count`.
    /// Zero exactly when the body is a pure dependency chain.
    pub fn stmts_saved(&self) -> usize {
        self.stmt_count() - self.stage_count()
    }

    /// True when every stage holds a single statement — the body is
    /// chain-dependent and staged execution degenerates to sequential.
    pub fn is_chain(&self) -> bool {
        self.stage_count() == self.stmt_count()
    }

    /// The effect sets, one per statement.
    pub fn effects(&self) -> &[StmtEffects] {
        &self.effects
    }

    /// Direct predecessors of statement `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Renders the stage plan with the statements of `trigger`, e.g.
    ///
    /// ```text
    /// -- 6 statements in 2 stages (max width 4) --
    /// stage 1: [0] U_B := dU_A;  [1] V_B := ...
    /// stage 2: [4] A += dU_A dV_A';  ...
    /// ```
    pub fn render(&self, trigger: &Trigger) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "-- {} statements in {} stages (max width {}) --\n",
            self.stmt_count(),
            self.stage_count(),
            self.max_stage_width()
        );
        for (s, stage) in self.stages.iter().enumerate() {
            let rendered: Vec<String> = stage
                .iter()
                .map(|&i| format!("[{i}] {}", trigger.stmts[i]))
                .collect();
            let _ = writeln!(out, "stage {}: {}", s + 1, rendered.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, Program};
    use linview_expr::{Catalog, Expr};

    fn powers_trigger() -> Trigger {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("C", Expr::var("B") * Expr::var("B"));
        compile(&p, &["A"], &cat, &CompileOptions::default())
            .unwrap()
            .triggers
            .remove(0)
    }

    #[test]
    fn effects_classify_reads_and_writes() {
        let fx = StmtEffects::of(&TriggerStmt::Assign {
            var: "U_B".into(),
            expr: Expr::var("A") * Expr::var("dU_A"),
        });
        assert!(fx.reads.contains("A") && fx.reads.contains("dU_A"));
        assert_eq!(fx.writes.len(), 1);

        let fx = StmtEffects::of(&TriggerStmt::ApplyDelta {
            target: "A".into(),
            u: Expr::var("dU_A"),
            v: Expr::var("dV_A"),
        });
        // += is a read-modify-write of the target.
        assert!(fx.reads.contains("A") && fx.writes.contains("A"));

        let fx = StmtEffects::of(&TriggerStmt::ShermanMorrison {
            inv_var: "W".into(),
            p: Expr::var("P_W"),
            q: Expr::var("Q_W"),
            out_u: "U_W".into(),
            out_v: "V_W".into(),
        });
        assert!(fx.reads.contains("W") && fx.reads.contains("P_W"));
        assert!(fx.writes.contains("U_W") && fx.writes.contains("V_W"));
        assert!(!fx.writes.contains("W"), "S-M does not mutate the inverse");
    }

    #[test]
    fn powers_trigger_stages_collapse_independent_blocks() {
        // A^4: U_B, V_B are independent (stage 1); U_C, V_C read them
        // (stage 2); A's += waits for every pre-update read of A, B's for
        // U_C/V_C's reads of B, C's for its own blocks.
        let t = powers_trigger();
        let dag = t.dag().unwrap();
        assert_eq!(dag.stmt_count(), t.stmts.len());
        assert!(
            dag.stage_count() < dag.stmt_count(),
            "independent delta blocks must share stages: {}",
            dag.render(&t)
        );
        assert!(dag.max_stage_width() >= 2);
        assert_eq!(dag.stmts_saved(), dag.stmt_count() - dag.stage_count());
        assert!(!dag.is_chain());
        // Stage invariants: program order within a stage, every stage
        // nonempty, every statement placed exactly once.
        let mut seen = BTreeSet::new();
        for stage in dag.stages() {
            assert!(!stage.is_empty());
            assert!(stage.windows(2).all(|w| w[0] < w[1]));
            for &i in stage {
                assert!(seen.insert(i), "statement {i} scheduled twice");
            }
        }
        assert_eq!(seen.len(), dag.stmt_count());
    }

    #[test]
    fn edges_respect_all_three_hazards() {
        let t = powers_trigger();
        let dag = t.dag().unwrap();
        let stage_of = |i: usize| {
            dag.stages()
                .iter()
                .position(|s| s.contains(&i))
                .expect("scheduled")
        };
        for j in 0..dag.stmt_count() {
            for &i in dag.preds(j) {
                assert!(i < j, "hazard edges point forward");
                assert!(
                    stage_of(i) < stage_of(j),
                    "edge {i}->{j} not honored by stages"
                );
            }
        }
        // The A += delta must come after every compute statement that
        // reads A pre-update.
        let a_update = t
            .stmts
            .iter()
            .position(|s| matches!(s, TriggerStmt::ApplyDelta { target, .. } if target == "A"))
            .unwrap();
        for (i, s) in t.stmts.iter().enumerate() {
            if let TriggerStmt::Assign { expr, .. } = s {
                if expr.references("A") {
                    assert!(stage_of(i) < stage_of(a_update), "WAR hazard on A violated");
                }
            }
        }
    }

    #[test]
    fn chain_dependent_bodies_stage_one_per_statement() {
        // x := dU_A; y := x A; z := y A — a pure RAW chain.
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![
                TriggerStmt::Assign {
                    var: "x".into(),
                    expr: Expr::var("dU_A"),
                },
                TriggerStmt::Assign {
                    var: "y".into(),
                    expr: Expr::var("x") * Expr::var("A"),
                },
                TriggerStmt::Assign {
                    var: "z".into(),
                    expr: Expr::var("y") * Expr::var("A"),
                },
            ],
        };
        let dag = t.dag().unwrap();
        assert!(dag.is_chain());
        assert_eq!(dag.stage_count(), 3);
        assert_eq!(dag.stmts_saved(), 0);
    }

    #[test]
    fn waw_keeps_repeated_view_updates_ordered() {
        // Two += into the same view must never share a stage.
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![
                TriggerStmt::ApplyDelta {
                    target: "V".into(),
                    u: Expr::var("u1"),
                    v: Expr::var("v1"),
                },
                TriggerStmt::ApplyDelta {
                    target: "V".into(),
                    u: Expr::var("u2"),
                    v: Expr::var("v2"),
                },
            ],
        };
        let dag = t.dag().unwrap();
        assert_eq!(dag.stage_count(), 2);
        assert_eq!(dag.preds(1), &[0]);
    }

    #[test]
    fn cyclic_predecessors_are_a_compile_error() {
        let fx = vec![StmtEffects::default(), StmtEffects::default()];
        let err = StmtDag::from_preds(fx, vec![vec![1], vec![0]]).unwrap_err();
        assert!(matches!(
            err,
            ExprError::ScheduleCycle { ref stmts } if stmts == &[0, 1]
        ));
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn empty_body_schedules_to_zero_stages() {
        let dag = StmtDag::analyze(&[]).unwrap();
        assert_eq!(dag.stage_count(), 0);
        assert_eq!(dag.max_stage_width(), 0);
        assert!(dag.is_chain());
    }

    #[test]
    fn render_lists_every_stage() {
        let t = powers_trigger();
        let dag = t.dag().unwrap();
        let text = dag.render(&t);
        assert!(text.contains("statements in"));
        for s in 1..=dag.stage_count() {
            assert!(text.contains(&format!("stage {s}:")), "{text}");
        }
    }
}
