//! Trigger optimizer: copy propagation, common subexpression elimination,
//! and dead-code elimination (§6: "The optimizer analyzes intra- and
//! inter-statement dependencies … and performs transformations, like common
//! subexpression elimination and copy propagation, to reduce the overall
//! maintenance cost").

use linview_expr::{Catalog, Expr};
use std::collections::{HashMap, HashSet};

use crate::{Result, Trigger, TriggerProgram, TriggerStmt};

/// Which optimizer passes to run.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// Replace `x := y; … x …` with direct uses of `y`.
    pub copy_propagation: bool,
    /// Hoist repeated non-trivial subexpressions into shared temporaries.
    pub cse: bool,
    /// Drop assignments whose result is never read.
    pub dead_code_elimination: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            copy_propagation: true,
            cse: true,
            dead_code_elimination: true,
        }
    }
}

/// Optimizes every trigger of the program in place.
pub fn optimize(tp: &mut TriggerProgram, opts: &OptimizerOptions) -> Result<()> {
    let mut counter = 0usize;
    for t in &mut tp.triggers {
        if opts.copy_propagation {
            copy_propagation(t);
        }
        if opts.cse {
            cse(t, &mut tp.catalog, &mut counter)?;
        }
        if opts.dead_code_elimination {
            dead_code_elimination(t);
        }
    }
    Ok(())
}

/// Substitutes variable copies (`x := y`) into later statements and removes
/// the copy assignment.
fn copy_propagation(t: &mut Trigger) {
    loop {
        let mut found: Option<(usize, String, Expr)> = None;
        for (i, s) in t.stmts.iter().enumerate() {
            if let TriggerStmt::Assign { var, expr } = s {
                if matches!(expr, Expr::Var(_)) {
                    found = Some((i, var.clone(), expr.clone()));
                    break;
                }
            }
        }
        let Some((idx, var, replacement)) = found else {
            return;
        };
        t.stmts.remove(idx);
        for s in t.stmts.iter_mut().skip(idx) {
            substitute_in_stmt(s, &var, &replacement);
        }
    }
}

fn substitute_in_stmt(s: &mut TriggerStmt, name: &str, replacement: &Expr) {
    match s {
        TriggerStmt::Assign { expr, .. } => *expr = expr.substitute(name, replacement),
        TriggerStmt::ShermanMorrison { p, q, .. } => {
            *p = p.substitute(name, replacement);
            *q = q.substitute(name, replacement);
        }
        TriggerStmt::ApplyDelta { u, v, .. } => {
            *u = u.substitute(name, replacement);
            *v = v.substitute(name, replacement);
        }
    }
}

/// Expressions smaller than this many nodes are never hoisted.
const CSE_MIN_NODES: usize = 3;

/// Hoists repeated subexpressions into `_t{i}` temporaries, largest first.
fn cse(t: &mut Trigger, cat: &mut Catalog, counter: &mut usize) -> Result<()> {
    loop {
        // Count all subexpressions across read positions.
        let mut counts: HashMap<Expr, usize> = HashMap::new();
        for s in &t.stmts {
            for e in stmt_read_exprs(s) {
                e.visit(&mut |sub| {
                    if sub.node_count() >= CSE_MIN_NODES && worth_hoisting(sub) {
                        *counts.entry(sub.clone()).or_insert(0) += 1;
                    }
                });
            }
        }
        // Pick the largest expression that occurs at least twice.
        let Some(best) = counts
            .into_iter()
            .filter(|(_, c)| *c >= 2)
            .map(|(e, _)| e)
            .max_by_key(Expr::node_count)
        else {
            return Ok(());
        };
        let name = format!("_t{counter}");
        *counter += 1;
        let d = best.dim(cat)?;
        cat.declare(&name, d.rows, d.cols);
        // Replace everywhere, then insert the temporary before the first
        // statement that uses it.
        let mut first_use = t.stmts.len();
        for (i, s) in t.stmts.iter_mut().enumerate() {
            let before = format!("{s}");
            replace_in_stmt(s, &best, &Expr::var(&name));
            if format!("{s}") != before && i < first_use {
                first_use = i;
            }
        }
        t.stmts.insert(
            first_use,
            TriggerStmt::Assign {
                var: name,
                expr: best,
            },
        );
    }
}

/// Only hoist expressions that actually cost something to recompute.
fn worth_hoisting(e: &Expr) -> bool {
    matches!(e, Expr::Mul(_, _) | Expr::Add(_, _) | Expr::Sub(_, _))
}

fn stmt_read_exprs(s: &TriggerStmt) -> Vec<&Expr> {
    match s {
        TriggerStmt::Assign { expr, .. } => vec![expr],
        TriggerStmt::ShermanMorrison { p, q, .. } => vec![p, q],
        TriggerStmt::ApplyDelta { u, v, .. } => vec![u, v],
    }
}

fn replace_in_stmt(s: &mut TriggerStmt, pat: &Expr, rep: &Expr) {
    match s {
        TriggerStmt::Assign { expr, .. } => *expr = replace_subexpr(expr, pat, rep),
        TriggerStmt::ShermanMorrison { p, q, .. } => {
            *p = replace_subexpr(p, pat, rep);
            *q = replace_subexpr(q, pat, rep);
        }
        TriggerStmt::ApplyDelta { u, v, .. } => {
            *u = replace_subexpr(u, pat, rep);
            *v = replace_subexpr(v, pat, rep);
        }
    }
}

/// Structural replacement of every occurrence of `pat` inside `e`.
fn replace_subexpr(e: &Expr, pat: &Expr, rep: &Expr) -> Expr {
    if e == pat {
        return rep.clone();
    }
    match e {
        Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => e.clone(),
        Expr::Add(a, b) => Expr::Add(
            Box::new(replace_subexpr(a, pat, rep)),
            Box::new(replace_subexpr(b, pat, rep)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(replace_subexpr(a, pat, rep)),
            Box::new(replace_subexpr(b, pat, rep)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(replace_subexpr(a, pat, rep)),
            Box::new(replace_subexpr(b, pat, rep)),
        ),
        Expr::Scale(s, inner) => Expr::Scale(*s, Box::new(replace_subexpr(inner, pat, rep))),
        Expr::Transpose(inner) => Expr::Transpose(Box::new(replace_subexpr(inner, pat, rep))),
        Expr::Inverse(inner) => Expr::Inverse(Box::new(replace_subexpr(inner, pat, rep))),
        Expr::HStack(parts) => {
            Expr::HStack(parts.iter().map(|p| replace_subexpr(p, pat, rep)).collect())
        }
    }
}

/// Removes assignments whose variable is never read afterwards.
fn dead_code_elimination(t: &mut Trigger) {
    loop {
        let mut used: HashSet<String> = HashSet::new();
        for s in &t.stmts {
            for e in stmt_read_exprs(s) {
                for v in e.variables() {
                    used.insert(v);
                }
            }
            if let TriggerStmt::ShermanMorrison { inv_var, .. } = s {
                used.insert(inv_var.clone());
            }
        }
        let before = t.stmts.len();
        t.stmts.retain(|s| match s {
            TriggerStmt::Assign { var, .. } => used.contains(var),
            _ => true,
        });
        if t.stmts.len() == before {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, Program};
    use linview_expr::cost::CostModel;

    fn trigger(stmts: Vec<TriggerStmt>) -> Trigger {
        Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts,
        }
    }

    #[test]
    fn copy_propagation_removes_aliases() {
        let mut t = trigger(vec![
            TriggerStmt::Assign {
                var: "x".into(),
                expr: Expr::var("dU_A"),
            },
            TriggerStmt::Assign {
                var: "y".into(),
                expr: Expr::var("x") * Expr::var("B"),
            },
            TriggerStmt::ApplyDelta {
                target: "B".into(),
                u: Expr::var("y"),
                v: Expr::var("x"),
            },
        ]);
        copy_propagation(&mut t);
        assert_eq!(t.stmts.len(), 2);
        assert_eq!(
            t.stmts[0],
            TriggerStmt::Assign {
                var: "y".into(),
                expr: Expr::var("dU_A") * Expr::var("B"),
            }
        );
    }

    #[test]
    fn cse_hoists_repeated_products() {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("u", 8, 1);
        let shared = Expr::var("A") * Expr::var("u"); // node_count 3
        let mut t = trigger(vec![
            TriggerStmt::Assign {
                var: "x".into(),
                expr: shared.clone() + Expr::var("u"),
            },
            TriggerStmt::Assign {
                var: "y".into(),
                expr: shared.clone(),
            },
        ]);
        let mut counter = 0;
        cse(&mut t, &mut cat, &mut counter).unwrap();
        assert_eq!(t.stmts.len(), 3);
        let TriggerStmt::Assign { var, expr } = &t.stmts[0] else {
            panic!()
        };
        assert_eq!(var, "_t0");
        assert_eq!(expr, &shared);
        assert!(cat.contains("_t0"));
        assert_eq!(cat.get("_t0").unwrap().as_pair(), (8, 1));
    }

    #[test]
    fn dce_drops_unused_assignments() {
        let mut t = trigger(vec![
            TriggerStmt::Assign {
                var: "unused".into(),
                expr: Expr::var("A") * Expr::var("A"),
            },
            TriggerStmt::Assign {
                var: "used".into(),
                expr: Expr::var("A"),
            },
            TriggerStmt::ApplyDelta {
                target: "B".into(),
                u: Expr::var("used"),
                v: Expr::var("used"),
            },
        ]);
        dead_code_elimination(&mut t);
        assert_eq!(t.stmts.len(), 2);
    }

    #[test]
    fn dce_cascades_through_chains() {
        // a feeds b, b feeds nothing: both must go.
        let mut t = trigger(vec![
            TriggerStmt::Assign {
                var: "a".into(),
                expr: Expr::var("X"),
            },
            TriggerStmt::Assign {
                var: "b".into(),
                expr: Expr::var("a") * Expr::var("a"),
            },
            TriggerStmt::ApplyDelta {
                target: "V".into(),
                u: Expr::var("dU_A"),
                v: Expr::var("dV_A"),
            },
        ]);
        dead_code_elimination(&mut t);
        assert_eq!(t.stmts.len(), 1);
    }

    #[test]
    fn optimize_never_increases_model_cost() {
        let mut cat = Catalog::new();
        cat.declare("A", 16, 16);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("C", Expr::var("B") * Expr::var("B"));
        p.assign("D", Expr::var("C") * Expr::var("C"));
        let tp0 = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let mut tp1 = tp0.clone();
        optimize(&mut tp1, &OptimizerOptions::default()).unwrap();
        let model = CostModel::cubic();
        let c0 = tp0.cost(&model).unwrap();
        let c1 = tp1.cost(&model).unwrap();
        assert!(c1 <= c0 * 1.001, "optimized {c1} > original {c0}");
    }

    #[test]
    fn optimize_preserves_update_phase() {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        let mut tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        optimize(&mut tp, &OptimizerOptions::default()).unwrap();
        assert_eq!(tp.triggers[0].maintained_views(), vec!["A", "B"]);
    }
}
