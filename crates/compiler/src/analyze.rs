//! Static trigger-program analysis: shape inference, stage-disjointness
//! proofs, liveness, and cost diagnostics.
//!
//! [`compile`](crate::compile()) and [`compile_joint`](crate::compile_joint)
//! run this analyzer over every trigger program they emit and **deny by
//! default**: an error-severity [`Diagnostic`] aborts compilation before any
//! backend sees the program. Four passes run:
//!
//! 1. **Shape inference** ([`AnalyzerPass::Shape`]) — propagates
//!    `(rows, cols, rank)` through every expression with its own
//!    [`Shape`] lattice and rejects dimension-inconsistent products, sums,
//!    stacks, and update folds before execution can.
//! 2. **Stage disjointness** ([`AnalyzerPass::Disjointness`] /
//!    [`AnalyzerPass::CrossCheck`]) — an *independent* re-derivation of the
//!    per-statement def-use effect sets ([`derive_effects`]) that proves
//!    every [`StmtDag`] parallel stage writes pairwise-disjoint environment
//!    slots and reads only pre-stage state. The re-derived sets are
//!    cross-checked against [`StmtEffects::of`](crate::schedule) — any
//!    disagreement between the two implementations is a hard error, since
//!    every backend's `apply_stage` soundness rests on exactly this
//!    property.
//! 3. **Liveness** ([`AnalyzerPass::Liveness`]) — warns on delta blocks
//!    that are computed but never read and on views that are maintained but
//!    never read downstream.
//! 4. **Cost & broadcast estimation** ([`AnalyzerPass::Cost`]) — a
//!    per-trigger FLOP and wire-byte estimate with a symbolic-in-`(n, k)`
//!    term rendering, warning when a delta program is priced *worse* than
//!    re-evaluating the affected views (the paper's Table 2 criterion).
//!
//! The runtime re-uses [`derive_effects`] in debug builds to assert that
//! every observed view write lands inside the statically-proved write set
//! of its stage (see `FiringReport::writes` in `linview-runtime`). The CLI
//! surfaces the analyzer as `linview lint` and `--emit analysis`.

use std::collections::BTreeSet;

use linview_expr::cost::CostModel;
use linview_expr::{Catalog, Expr, ExprError};

use crate::schedule::{StmtDag, StmtEffects};
use crate::{JointTrigger, Program, Result, Trigger, TriggerProgram, TriggerStmt};

/// How severe a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the program runs correctly but wastes work.
    Warning,
    /// The program is ill-formed; compilation denies it.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which analyzer pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalyzerPass {
    /// Shape/dimension inference.
    Shape,
    /// Stage-disjointness verification.
    Disjointness,
    /// Re-derived effect sets disagreeing with [`crate::schedule`].
    CrossCheck,
    /// Dead-block and unread-view detection.
    Liveness,
    /// Static cost and broadcast estimation.
    Cost,
}

impl AnalyzerPass {
    /// Stable lowercase name, used in rendered diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            AnalyzerPass::Shape => "shape",
            AnalyzerPass::Disjointness => "disjointness",
            AnalyzerPass::CrossCheck => "crosscheck",
            AnalyzerPass::Liveness => "liveness",
            AnalyzerPass::Cost => "cost",
        }
    }
}

impl std::fmt::Display for AnalyzerPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One structured analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error (denies compilation) or warning (advisory).
    pub severity: Severity,
    /// The pass that produced the finding.
    pub pass: AnalyzerPass,
    /// The trigger (by input name) the finding is about.
    pub trigger: String,
    /// 0-based statement index inside the trigger body, when applicable.
    pub stmt: Option<usize>,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete idea.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Converts an error-severity diagnostic into the compiler error that
    /// denies compilation.
    pub fn to_error(&self) -> ExprError {
        ExprError::Analysis {
            pass: self.pass.name(),
            trigger: self.trigger.clone(),
            stmt: self.stmt,
            message: self.message.clone(),
            suggestion: self.suggestion.clone(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] trigger '{}'",
            self.severity, self.pass, self.trigger
        )?;
        if let Some(i) = self.stmt {
            write!(f, " stmt {i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  hint: {s}")?;
        }
        Ok(())
    }
}

/// The `(rows, cols, rank)` lattice value the shape pass propagates. The
/// rank component is an upper bound: the exact numerical rank of a block is
/// a runtime property, but the bound is what sizes every factored update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Upper bound on the numerical rank.
    pub rank: usize,
}

impl Shape {
    fn full(rows: usize, cols: usize) -> Shape {
        Shape {
            rows,
            cols,
            rank: rows.min(cols),
        }
    }
}

type ShapeIssue = (String, String); // (message, suggestion)

/// Infers the shape of `expr` against `cat`, propagating the rank bound.
/// This is the analyzer's own inference — deliberately separate from
/// `Expr::dim` so shape errors are caught by two implementations.
pub fn infer_shape(expr: &Expr, cat: &Catalog) -> std::result::Result<Shape, ShapeIssue> {
    match expr {
        Expr::Var(v) => match cat.get(v) {
            Ok(d) => Ok(Shape::full(d.rows, d.cols)),
            Err(_) => Err((
                format!("unknown matrix variable '{v}'"),
                format!("declare '{v}' in the catalog or fix the reference"),
            )),
        },
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let sa = infer_shape(a, cat)?;
            let sb = infer_shape(b, cat)?;
            if (sa.rows, sa.cols) != (sb.rows, sb.cols) {
                return Err((
                    format!(
                        "entrywise sum of ({}x{}) and ({}x{}) operands",
                        sa.rows, sa.cols, sb.rows, sb.cols
                    ),
                    "both operands of +/- must have identical shapes".into(),
                ));
            }
            Ok(Shape {
                rank: (sa.rank + sb.rank).min(sa.rows.min(sa.cols)),
                ..sa
            })
        }
        Expr::Mul(a, b) => {
            let sa = infer_shape(a, cat)?;
            let sb = infer_shape(b, cat)?;
            if sa.cols != sb.rows {
                return Err((
                    format!(
                        "product of ({}x{}) by ({}x{}): inner dimensions differ",
                        sa.rows, sa.cols, sb.rows, sb.cols
                    ),
                    "check operand order and transposes — GEMM needs lhs.cols == rhs.rows".into(),
                ));
            }
            Ok(Shape {
                rows: sa.rows,
                cols: sb.cols,
                rank: sa.rank.min(sb.rank),
            })
        }
        Expr::Scale(_, e) => infer_shape(e, cat),
        Expr::Transpose(e) => {
            let s = infer_shape(e, cat)?;
            Ok(Shape {
                rows: s.cols,
                cols: s.rows,
                rank: s.rank,
            })
        }
        Expr::Inverse(e) => {
            let s = infer_shape(e, cat)?;
            if s.rows != s.cols {
                return Err((
                    format!("inverse of a non-square ({}x{}) expression", s.rows, s.cols),
                    "only square matrices are invertible".into(),
                ));
            }
            Ok(Shape::full(s.rows, s.cols))
        }
        Expr::Identity(n) => Ok(Shape::full(*n, *n)),
        Expr::Zero(r, c) => Ok(Shape {
            rows: *r,
            cols: *c,
            rank: 0,
        }),
        Expr::HStack(parts) => {
            if parts.is_empty() {
                return Err((
                    "empty block stack".into(),
                    "a horizontal stack needs at least one block".into(),
                ));
            }
            let first = infer_shape(&parts[0], cat)?;
            let mut cols = first.cols;
            let mut rank = first.rank;
            for p in &parts[1..] {
                let s = infer_shape(p, cat)?;
                if s.rows != first.rows {
                    return Err((
                        format!("stacked blocks of {} and {} rows", first.rows, s.rows),
                        "every block of a horizontal stack must have the same row count".into(),
                    ));
                }
                cols += s.cols;
                rank += s.rank;
            }
            Ok(Shape {
                rows: first.rows,
                cols,
                rank: rank.min(first.rows.min(cols)),
            })
        }
    }
}

/// Collects the variables `expr` reads, walking the AST directly (the
/// analyzer's independent counterpart of `Expr::variables`).
fn read_vars(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            read_vars(a, out);
            read_vars(b, out);
        }
        Expr::Scale(_, e) | Expr::Transpose(e) | Expr::Inverse(e) => read_vars(e, out),
        Expr::Identity(_) | Expr::Zero(_, _) => {}
        Expr::HStack(parts) => {
            for p in parts {
                read_vars(p, out);
            }
        }
    }
}

/// Independently re-derives the def-use effect sets of a trigger body from
/// statement semantics: `Assign` defines its block from its expression's
/// reads; `ShermanMorrison` reads its factor expressions *and* the
/// materialized inverse but writes only the output blocks; `ApplyDelta` is
/// a read-modify-write of its target.
///
/// This is a second implementation of what
/// [`StmtEffects::of`](crate::schedule) computes — kept deliberately
/// separate so [`verify_stages`] can use one as a checker for the other,
/// and so the runtime can assert observed writes against it in debug
/// builds.
pub fn derive_effects(stmts: &[TriggerStmt]) -> Vec<StmtEffects> {
    stmts
        .iter()
        .map(|stmt| {
            let mut reads = BTreeSet::new();
            let mut writes = BTreeSet::new();
            match stmt {
                TriggerStmt::Assign { var, expr } => {
                    read_vars(expr, &mut reads);
                    writes.insert(var.clone());
                }
                TriggerStmt::ShermanMorrison {
                    inv_var,
                    p,
                    q,
                    out_u,
                    out_v,
                } => {
                    read_vars(p, &mut reads);
                    read_vars(q, &mut reads);
                    reads.insert(inv_var.clone());
                    writes.insert(out_u.clone());
                    writes.insert(out_v.clone());
                }
                TriggerStmt::ApplyDelta { target, u, v } => {
                    read_vars(u, &mut reads);
                    read_vars(v, &mut reads);
                    reads.insert(target.clone());
                    writes.insert(target.clone());
                }
            }
            StmtEffects { reads, writes }
        })
        .collect()
}

/// The hazard (if any) between an earlier statement's effects `a` and a
/// later statement's effects `b`, with the overlapping variables.
fn hazard_between(a: &StmtEffects, b: &StmtEffects) -> Option<(&'static str, Vec<String>)> {
    let overlap = |x: &BTreeSet<String>, y: &BTreeSet<String>| -> Vec<String> {
        x.intersection(y).cloned().collect()
    };
    let raw = overlap(&a.writes, &b.reads);
    if !raw.is_empty() {
        return Some(("read-after-write", raw));
    }
    let war = overlap(&a.reads, &b.writes);
    if !war.is_empty() {
        return Some(("write-after-read", war));
    }
    let waw = overlap(&a.writes, &b.writes);
    if !waw.is_empty() {
        return Some(("write-after-write", waw));
    }
    None
}

/// Proves every parallel stage of `dag` sound for `trigger`'s body:
/// statements are scheduled exactly once, hazardous pairs never share a
/// stage (so each stage writes pairwise-disjoint slots and reads only
/// pre-stage state), and the re-derived effect sets agree with the
/// scheduler's. Returns the (error) diagnostics found.
pub fn verify_stages(trigger: &Trigger, dag: &StmtDag) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let name = &trigger.input;
    let n = trigger.stmts.len();
    let own = derive_effects(&trigger.stmts);

    // Cross-check: two independent effect-set derivations must agree.
    for (i, (a, b)) in own.iter().zip(dag.effects()).enumerate() {
        if a != b {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: AnalyzerPass::CrossCheck,
                trigger: name.clone(),
                stmt: Some(i),
                message: format!(
                    "analyzer effect sets (reads {:?}, writes {:?}) disagree with the \
                     scheduler's (reads {:?}, writes {:?})",
                    a.reads, a.writes, b.reads, b.writes
                ),
                suggestion: Some(
                    "schedule::StmtEffects and analyze::derive_effects must implement the \
                     same statement semantics — one of them regressed"
                        .into(),
                ),
            });
        }
    }

    // Every statement scheduled exactly once.
    let mut stage_of = vec![usize::MAX; n];
    for (s, stage) in dag.stages().iter().enumerate() {
        for &i in stage {
            if i >= n || stage_of[i] != usize::MAX {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    pass: AnalyzerPass::Disjointness,
                    trigger: name.clone(),
                    stmt: Some(i.min(n.saturating_sub(1))),
                    message: if i >= n {
                        format!("stage {s} schedules statement {i}, past the body of {n}")
                    } else {
                        format!("statement {i} is scheduled twice (again in stage {s})")
                    },
                    suggestion: None,
                });
            } else {
                stage_of[i] = s;
            }
        }
    }
    for (i, &s) in stage_of.iter().enumerate() {
        if s == usize::MAX {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: AnalyzerPass::Disjointness,
                trigger: name.clone(),
                stmt: Some(i),
                message: format!("statement {i} is never scheduled into any stage"),
                suggestion: None,
            });
        }
    }
    if diags
        .iter()
        .any(|d| d.severity == Severity::Error && matches!(d.pass, AnalyzerPass::Disjointness))
    {
        return diags; // stage map is unusable; hazard checks would lie
    }

    // Every hazardous pair must be strictly ordered by stages. This is the
    // property `apply_stage` soundness rests on: it implies each stage's
    // writes are pairwise disjoint and no statement reads a stage-mate's
    // output (stages evaluate against the pre-stage environment).
    for j in 0..n {
        for i in 0..j {
            if let Some((kind, vars)) = hazard_between(&own[i], &own[j]) {
                if stage_of[i] >= stage_of[j] {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pass: AnalyzerPass::Disjointness,
                        trigger: name.clone(),
                        stmt: Some(j),
                        message: format!(
                            "statements {i} and {j} share stage {} but have a {kind} hazard \
                             on {vars:?}",
                            stage_of[j] + 1
                        ),
                        suggestion: Some(
                            "hazardous statements must be scheduled into strictly ordered \
                             stages; rebuild the DAG with StmtDag::analyze"
                                .into(),
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// Density at or below which the runtime folds a delta factor sparsely.
/// Mirrors `linview_matrix::SPARSE_FOLD_CROSSOVER` — the compiler crate
/// deliberately does not depend on the kernel crate, so the two constants
/// must be kept in sync by hand.
const SPARSE_FOLD_CROSSOVER: f64 = 0.05;

/// Per-trigger static cost and broadcast estimate (pass 4).
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Modeled FLOPs of one trigger firing (delta blocks + view folds).
    pub flops: f64,
    /// Modeled FLOPs of re-evaluating the affected views instead, when the
    /// source [`Program`] was available to price it.
    pub reeval_flops: Option<f64>,
    /// Broadcast payload of one firing: the serialized factored deltas a
    /// distributed backend ships to every worker.
    pub wire_bytes: u64,
    /// Rank of the incoming update the estimate is for.
    pub update_rank: usize,
    /// Symbolic-in-`(n, k)` rendering of the dominant cost terms.
    pub terms: String,
    /// Density-refined (nnz-aware) estimate, present when the caller
    /// supplied [`AnalyzeOptions::density`].
    pub sparse: Option<SparseEstimate>,
}

/// Density-refined companion to a [`CostEstimate`]: what the same firing
/// costs when each delta factor carries only `density · len` nonzeros —
/// sparse ApplyDelta folds replay stored entries (engaged at or below the
/// runtime's crossover density) and compressed broadcast frames ship
/// 16-byte triplets instead of 8-byte dense entries whenever that is
/// strictly smaller.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseEstimate {
    /// The assumed nonzero fraction per delta factor.
    pub density: f64,
    /// Predicted FLOPs of one firing with sparse-eligible folds replayed
    /// over stored entries only.
    pub flops: f64,
    /// Predicted broadcast payload of one firing under compressed
    /// (triplet-encoded) factor frames.
    pub wire_bytes: u64,
}

impl CostEstimate {
    /// Predicted REEVAL/INCR speedup, when re-evaluation could be priced.
    pub fn speedup(&self) -> Option<f64> {
        self.reeval_flops.map(|re| {
            if self.flops == 0.0 {
                f64::INFINITY
            } else {
                re / self.flops
            }
        })
    }
}

/// What the analyzer proved about one trigger.
#[derive(Debug, Clone)]
pub struct TriggerAnalysis {
    /// The trigger's input name.
    pub input: String,
    /// The independently re-derived effect sets, one per statement.
    pub effects: Vec<StmtEffects>,
    /// Stage count of the verified schedule (0 when the DAG failed).
    pub stages: usize,
    /// Widest verified stage.
    pub max_stage_width: usize,
    /// The pass-4 cost estimate.
    pub cost: CostEstimate,
}

/// Options for [`analyze_program`] / [`analyze_joint`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions<'a> {
    /// The source program, when available: enables the Table 2 criterion
    /// (pricing re-evaluation of the affected views for comparison).
    pub program: Option<&'a Program>,
    /// Cost model for pass 4 (`None` → the cubic model).
    pub model: Option<CostModel>,
    /// Expected nonzero fraction of each incoming delta factor, when the
    /// workload is known (basis-row streams are `1/n` dense): refines pass
    /// 4 with nnz-aware fold FLOPs and compressed-frame wire bytes. Values
    /// outside `(0, 1]` are ignored.
    pub density: Option<f64>,
}

/// The full analyzer output: diagnostics plus per-trigger facts.
#[derive(Debug, Clone)]
pub struct AnalyzerReport {
    /// All findings, in pass order per trigger.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-trigger analysis facts, in declaration order.
    pub triggers: Vec<TriggerAnalysis>,
}

impl AnalyzerReport {
    /// True when any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.first_error().is_some()
    }

    /// The first error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// `(errors, warnings)` counts.
    pub fn counts(&self) -> (usize, usize) {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        (errors, self.diagnostics.len() - errors)
    }
}

impl std::fmt::Display for AnalyzerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (errors, warnings) = self.counts();
        writeln!(
            f,
            "== static analysis: {} trigger(s), {errors} error(s), {warnings} warning(s) ==",
            self.triggers.len()
        )?;
        for t in &self.triggers {
            writeln!(
                f,
                "trigger '{}': {} stmt(s) in {} verified stage(s) (max width {})",
                t.input,
                t.effects.len(),
                t.stages,
                t.max_stage_width
            )?;
            write!(
                f,
                "  est. {:.3e} flops/firing, {} wire bytes/firing (update rank {})",
                t.cost.flops, t.cost.wire_bytes, t.cost.update_rank
            )?;
            match t.cost.speedup() {
                Some(s) => writeln!(
                    f,
                    "; reeval {:.3e} flops ({s:.1}x)",
                    t.cost.reeval_flops.unwrap_or(0.0)
                )?,
                None => writeln!(f)?,
            }
            if !t.cost.terms.is_empty() {
                writeln!(f, "  cost terms: {}", t.cost.terms)?;
            }
            if let Some(sp) = &t.cost.sparse {
                writeln!(
                    f,
                    "  at density {:.4}: est. {:.3e} flops/firing, {} wire bytes/firing \
                     (compressed frames)",
                    sp.density, sp.flops, sp.wire_bytes
                )?;
            }
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Runs all four passes over `tp`. Never fails — findings are reported as
/// [`Diagnostic`]s; use [`check_program`] for the deny-by-default form.
pub fn analyze_program(tp: &TriggerProgram, opts: &AnalyzeOptions) -> AnalyzerReport {
    let inputs: BTreeSet<String> = tp.triggers.iter().map(|t| t.input.clone()).collect();
    analyze_triggers(&tp.triggers, &tp.catalog, &inputs, opts)
}

/// Runs all four passes over a joint trigger (§4.4).
pub fn analyze_joint(joint: &JointTrigger, opts: &AnalyzeOptions) -> AnalyzerReport {
    let inputs: BTreeSet<String> = joint.inputs.iter().cloned().collect();
    analyze_triggers(
        std::slice::from_ref(&joint.trigger),
        &joint.catalog,
        &inputs,
        opts,
    )
}

/// Deny-by-default entry point used by [`compile`](crate::compile()):
/// returns the first error-severity diagnostic as an
/// [`ExprError::Analysis`].
pub fn check_program(tp: &TriggerProgram, program: Option<&Program>) -> Result<()> {
    let opts = AnalyzeOptions {
        program,
        ..Default::default()
    };
    match analyze_program(tp, &opts).first_error() {
        Some(d) => Err(d.to_error()),
        None => Ok(()),
    }
}

/// Deny-by-default entry point used by
/// [`compile_joint`](crate::compile_joint).
pub fn check_joint(joint: &JointTrigger, program: Option<&Program>) -> Result<()> {
    let opts = AnalyzeOptions {
        program,
        ..Default::default()
    };
    match analyze_joint(joint, &opts).first_error() {
        Some(d) => Err(d.to_error()),
        None => Ok(()),
    }
}

fn analyze_triggers(
    triggers: &[Trigger],
    cat: &Catalog,
    inputs: &BTreeSet<String>,
    opts: &AnalyzeOptions,
) -> AnalyzerReport {
    let model = opts.model.unwrap_or_else(CostModel::cubic);
    let mut diagnostics = Vec::new();
    let mut facts = Vec::new();

    // Program-wide read set (expression reads only — the RMW read an
    // ApplyDelta performs on its own target does not make the view "used").
    let mut read_anywhere: BTreeSet<String> = BTreeSet::new();
    for t in triggers {
        for stmt in &t.stmts {
            match stmt {
                TriggerStmt::Assign { expr, .. } => read_vars(expr, &mut read_anywhere),
                TriggerStmt::ShermanMorrison { inv_var, p, q, .. } => {
                    read_vars(p, &mut read_anywhere);
                    read_vars(q, &mut read_anywhere);
                    read_anywhere.insert(inv_var.clone());
                }
                TriggerStmt::ApplyDelta { u, v, .. } => {
                    read_vars(u, &mut read_anywhere);
                    read_vars(v, &mut read_anywhere);
                }
            }
        }
    }

    for trigger in triggers {
        let refined = shape_pass(trigger, cat, &mut diagnostics);
        let (stages, max_width) = match trigger.dag() {
            Ok(dag) => {
                diagnostics.extend(verify_stages(trigger, &dag));
                (dag.stage_count(), dag.max_stage_width())
            }
            Err(e) => {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    pass: AnalyzerPass::Disjointness,
                    trigger: trigger.input.clone(),
                    stmt: None,
                    message: format!("no staged schedule exists: {e}"),
                    suggestion: None,
                });
                (0, 0)
            }
        };
        liveness_pass(trigger, inputs, &read_anywhere, &mut diagnostics);
        // Cost formulas use the flow-refined catalog so per-trigger delta
        // block ranks (which the shared catalog cannot represent) price
        // correctly.
        let cost = cost_pass(
            trigger,
            &refined,
            &model,
            opts.program,
            opts.density,
            &mut diagnostics,
        );
        facts.push(TriggerAnalysis {
            input: trigger.input.clone(),
            effects: derive_effects(&trigger.stmts),
            stages,
            max_stage_width: max_width,
            cost,
        });
    }
    AnalyzerReport {
        diagnostics,
        triggers: facts,
    }
}

/// Pass 1: flow-sensitive shape/dimension inference over every statement.
///
/// Delta block shapes are *per trigger*: [`crate::compile`] shares one
/// catalog across all per-input triggers, so the recorded shape of a block
/// like `U_beta` reflects whichever trigger declared it last (the update
/// rank differs per input). The pass therefore refines a local copy of the
/// catalog as it walks the body — each `Assign` / Sherman–Morrison output
/// re-declares its block with the shape its *defining expression in this
/// trigger* produces — and every downstream conformance check (GEMM inner
/// dimensions, entrywise sums, `+=` folds against the stable view shapes)
/// runs against the refined catalog. The refined catalog is returned for
/// the cost pass.
fn shape_pass(trigger: &Trigger, cat: &Catalog, diags: &mut Vec<Diagnostic>) -> Catalog {
    let name = &trigger.input;
    let mut local = cat.clone();
    for (i, stmt) in trigger.stmts.iter().enumerate() {
        let mut error = |message: String, suggestion: String| {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pass: AnalyzerPass::Shape,
                trigger: name.clone(),
                stmt: Some(i),
                message,
                suggestion: Some(suggestion),
            });
        };
        match stmt {
            TriggerStmt::Assign { var, expr } => {
                if !local.contains(var) {
                    error(
                        format!("assigned block '{var}' is not declared in the catalog"),
                        format!("declare '{var}' with its block shape before use"),
                    );
                }
                match infer_shape(expr, &local) {
                    Ok(s) => local.declare(var, s.rows, s.cols),
                    Err((m, s)) => error(m, s),
                }
            }
            TriggerStmt::ShermanMorrison {
                inv_var,
                p,
                q,
                out_u,
                out_v,
            } => {
                let w = match local.get(inv_var) {
                    Ok(d) => d,
                    Err(_) => {
                        error(
                            format!("maintained inverse '{inv_var}' is not declared"),
                            format!("declare '{inv_var}' in the catalog"),
                        );
                        continue;
                    }
                };
                if w.rows != w.cols {
                    error(
                        format!(
                            "maintained inverse '{inv_var}' is ({}x{}), not square",
                            w.rows, w.cols
                        ),
                        "only square matrices have a maintained inverse".into(),
                    );
                    continue;
                }
                let (sp, sq) = match (infer_shape(p, &local), infer_shape(q, &local)) {
                    (Ok(sp), Ok(sq)) => (sp, sq),
                    (Err((m, s)), _) | (_, Err((m, s))) => {
                        error(m, s);
                        continue;
                    }
                };
                if sp.rows != w.rows || sq.rows != w.rows || sp.cols != sq.cols {
                    error(
                        format!(
                            "Sherman-Morrison factors ({}x{})·({}x{})' do not conform to \
                             the ({}x{}) inverse",
                            sp.rows, sp.cols, sq.rows, sq.cols, w.rows, w.cols
                        ),
                        "P and Q must both be n×k for an n×n inverse".into(),
                    );
                    continue;
                }
                for out in [out_u, out_v] {
                    if !local.contains(out) {
                        error(
                            format!("S-M output block '{out}' is not declared"),
                            format!("declare '{out}' as ({}x{})", w.rows, sp.cols),
                        );
                    }
                    local.declare(out, w.rows, sp.cols);
                }
            }
            TriggerStmt::ApplyDelta { target, u, v } => {
                let t = match local.get(target) {
                    Ok(d) => d,
                    Err(_) => {
                        error(
                            format!("maintained view '{target}' is not declared"),
                            format!("declare '{target}' in the catalog"),
                        );
                        continue;
                    }
                };
                let (su, sv) = match (infer_shape(u, &local), infer_shape(v, &local)) {
                    (Ok(su), Ok(sv)) => (su, sv),
                    (Err((m, s)), _) | (_, Err((m, s))) => {
                        error(m, s);
                        continue;
                    }
                };
                if su.rows != t.rows || sv.rows != t.cols || su.cols != sv.cols {
                    error(
                        format!(
                            "delta factors ({}x{})·({}x{})' do not conform to the \
                             ({}x{}) view '{target}'",
                            su.rows, su.cols, sv.rows, sv.cols, t.rows, t.cols
                        ),
                        "a low-rank update of an n×m view needs n×k and m×k factors".into(),
                    );
                }
            }
        }
    }
    local
}

/// Pass 3: dead blocks and unread maintained views.
fn liveness_pass(
    trigger: &Trigger,
    inputs: &BTreeSet<String>,
    read_anywhere: &BTreeSet<String>,
    diags: &mut Vec<Diagnostic>,
) {
    // Blocks computed but never read by any statement of the program.
    for (i, stmt) in trigger.stmts.iter().enumerate() {
        let outputs: Vec<&String> = match stmt {
            TriggerStmt::Assign { var, .. } => vec![var],
            TriggerStmt::ShermanMorrison { out_u, out_v, .. } => vec![out_u, out_v],
            TriggerStmt::ApplyDelta { .. } => continue,
        };
        for var in outputs {
            if !read_anywhere.contains(var) {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    pass: AnalyzerPass::Liveness,
                    trigger: trigger.input.clone(),
                    stmt: Some(i),
                    message: format!("block '{var}' is computed but never read"),
                    suggestion: Some(
                        "drop the statement or run the optimizer's dead-code elimination".into(),
                    ),
                });
            }
        }
    }
    // Views maintained but never read downstream. The last update target is
    // the program's output view and implicitly queried; inputs must always
    // track their stream.
    let terminal = trigger.stmts.iter().rev().find_map(|s| match s {
        TriggerStmt::ApplyDelta { target, .. } => Some(target.clone()),
        _ => None,
    });
    for view in trigger.maintained_views() {
        if inputs.contains(view) || read_anywhere.contains(view) {
            continue;
        }
        if terminal.as_deref() == Some(view) {
            continue;
        }
        diags.push(Diagnostic {
            severity: Severity::Warning,
            pass: AnalyzerPass::Liveness,
            trigger: trigger.input.clone(),
            stmt: None,
            message: format!("view '{view}' is maintained but never read by any trigger statement"),
            suggestion: Some(format!(
                "if '{view}' is never queried, remove its statement to save every firing \
                 the fold"
            )),
        });
    }
}

/// Pass 4: static FLOP / wire-byte estimation and the Table 2 criterion.
fn cost_pass(
    trigger: &Trigger,
    cat: &Catalog,
    model: &CostModel,
    program: Option<&Program>,
    density: Option<f64>,
    diags: &mut Vec<Diagnostic>,
) -> CostEstimate {
    let flops = trigger.cost(cat, model).unwrap_or(0.0);
    let density = density.filter(|d| *d > 0.0 && *d <= 1.0);

    // Wire bytes: each factored delta pair a distributed backend broadcasts
    // once per firing, 8 bytes per f64 entry. The density-refined variants
    // start from the dense figures and re-price only what the sparse
    // runtime paths change: ApplyDelta fold FLOPs and factor payloads.
    let mut wire_bytes = 0u64;
    let mut sparse_flops = flops;
    let mut sparse_wire = 0u64;
    let mut terms: Vec<String> = Vec::new();
    for stmt in &trigger.stmts {
        match stmt {
            TriggerStmt::ApplyDelta { target, u, v } => {
                if let (Ok(su), Ok(sv)) = (infer_shape(u, cat), infer_shape(v, cat)) {
                    wire_bytes += 8 * (su.rows * su.cols + sv.rows * sv.cols) as u64;
                    terms.push(format!(
                        "2k·nm [{target}: k={}, {}×{}]",
                        su.cols, su.rows, sv.rows
                    ));
                    if let Some(d) = density {
                        let (n, k, m) = (su.rows as f64, su.cols as f64, sv.rows as f64);
                        if d <= SPARSE_FOLD_CROSSOVER {
                            // Sparse fold: 2 flops per stored entry per view
                            // column, plus one row-gather per touched row —
                            // replaces the dense 2·k·n·m GEMM fold.
                            let nnz = d * n * k;
                            sparse_flops += (2.0 * nnz + nnz.min(n)) * m - 2.0 * k * n * m;
                        }
                        for len in [su.rows * su.cols, sv.rows * sv.cols] {
                            let nnz = (d * len as f64).ceil() as u64;
                            let len = len as u64;
                            // The codec's exact rule: 16-byte triplets win
                            // over 8-byte dense entries iff 2·nnz < len.
                            sparse_wire += if 2 * nnz < len { 16 * nnz } else { 8 * len };
                        }
                    }
                }
            }
            TriggerStmt::ShermanMorrison { inv_var, p, .. } => {
                if let (Ok(w), Ok(sp)) = (cat.get(inv_var), infer_shape(p, cat)) {
                    terms.push(format!("6k·n² [{inv_var}: k={}, n={}]", sp.cols, w.rows));
                }
            }
            TriggerStmt::Assign { var, expr } => {
                if let Ok(c) = model.expr_cost(expr, cat) {
                    terms.push(format!("eval [{var}: {c:.1e}]"));
                }
            }
        }
    }

    // Table 2 criterion: price re-evaluating the affected views when the
    // source program is available.
    let reeval_flops = program.and_then(|p| {
        let maintained: BTreeSet<&str> = trigger.maintained_views().into_iter().collect();
        let mut total = 0.0;
        for stmt in p.statements() {
            if maintained.contains(stmt.target.as_str()) {
                total += model.expr_cost(&stmt.expr, cat).ok()?;
            }
        }
        // Folding the input update itself is part of both strategies.
        Some(total)
    });
    if let Some(re) = reeval_flops {
        if re > 0.0 && flops > re {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pass: AnalyzerPass::Cost,
                trigger: trigger.input.clone(),
                stmt: None,
                message: format!(
                    "incremental firing (≈{flops:.3e} flops) is priced worse than \
                     re-evaluating the affected views (≈{re:.3e} flops)"
                ),
                suggestion: Some(format!(
                    "prefer re-evaluation for input '{}' (the paper's Table 2 criterion)",
                    trigger.input
                )),
            });
        }
    }

    CostEstimate {
        flops,
        reeval_flops,
        wire_bytes,
        update_rank: trigger.update_rank,
        terms: terms.join(" + "),
        sparse: density.map(|d| SparseEstimate {
            density: d,
            flops: sparse_flops.max(0.0),
            wire_bytes: sparse_wire,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};

    fn powers() -> (Program, Catalog) {
        let mut cat = Catalog::new();
        cat.declare("A", 64, 64);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("C", Expr::var("B") * Expr::var("B"));
        (p, cat)
    }

    #[test]
    fn compiler_output_is_clean() {
        let (p, cat) = powers();
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let report = analyze_program(
            &tp,
            &AnalyzeOptions {
                program: Some(&p),
                ..Default::default()
            },
        );
        assert!(!report.has_errors(), "{report}");
        let t = &report.triggers[0];
        assert!(t.stages >= 2 && t.max_stage_width >= 2);
        assert!(t.cost.flops > 0.0 && t.cost.wire_bytes > 0);
        assert!(t.cost.speedup().unwrap() > 1.0, "INCR should win: {report}");
        assert!(t.cost.sparse.is_none(), "no density supplied");
    }

    #[test]
    fn density_refines_fold_flops_and_compressed_wire_bytes() {
        let (p, cat) = powers();
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let at = |density: Option<f64>| {
            analyze_program(
                &tp,
                &AnalyzeOptions {
                    program: Some(&p),
                    density,
                    ..Default::default()
                },
            )
        };
        // Basis-row streams on a 64×64 input are 1/64 ≈ 0.016 dense: below
        // the fold crossover AND the triplet-encoding break-even, so both
        // refined figures must drop strictly below the dense estimates.
        let sparse = at(Some(1.0 / 64.0));
        assert!(!sparse.has_errors(), "{sparse}");
        for t in &sparse.triggers {
            let sp = t.cost.sparse.as_ref().expect("density was supplied");
            assert!(sp.flops < t.cost.flops, "{:?}", t.cost);
            assert!(sp.wire_bytes < t.cost.wire_bytes, "{:?}", t.cost);
        }
        let rendered = sparse.to_string();
        assert!(rendered.contains("at density"), "{rendered}");
        // Fully dense factors gain nothing: the refinement degenerates to
        // the dense estimate on both axes.
        let dense = at(Some(1.0));
        for t in &dense.triggers {
            let sp = t.cost.sparse.as_ref().unwrap();
            assert_eq!(sp.flops, t.cost.flops);
            assert_eq!(sp.wire_bytes, t.cost.wire_bytes);
        }
        // Out-of-range densities are ignored rather than mispriced.
        for bad in [0.0, -0.5, 1.5] {
            for t in &at(Some(bad)).triggers {
                assert!(t.cost.sparse.is_none());
            }
        }
    }

    #[test]
    fn effect_rederivation_matches_scheduler() {
        let (p, cat) = powers();
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        for t in &tp.triggers {
            let dag = t.dag().unwrap();
            assert_eq!(derive_effects(&t.stmts), dag.effects().to_vec());
        }
    }

    #[test]
    fn shape_pass_rejects_nonconforming_delta() {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("u", 8, 1);
        cat.declare("w", 6, 1); // wrong row count
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![TriggerStmt::ApplyDelta {
                target: "A".into(),
                u: Expr::var("u"),
                v: Expr::var("w"),
            }],
        };
        let tp = TriggerProgram {
            triggers: vec![t],
            catalog: cat,
        };
        let report = analyze_program(&tp, &AnalyzeOptions::default());
        let err = report.first_error().expect("shape error");
        assert_eq!(err.pass, AnalyzerPass::Shape);
        assert!(err.message.contains("do not conform"), "{err}");
        assert!(err.suggestion.is_some());
    }

    #[test]
    fn dangling_name_is_a_shape_error() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("x", 4, 1);
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![TriggerStmt::Assign {
                var: "x".into(),
                expr: Expr::var("ghost") * Expr::var("A"),
            }],
        };
        let tp = TriggerProgram {
            triggers: vec![t],
            catalog: cat,
        };
        let report = analyze_program(&tp, &AnalyzeOptions::default());
        let err = report.first_error().expect("unknown-var error");
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn injected_same_stage_hazard_is_rejected() {
        // Two += into the same view forced into one stage: WAW.
        let stmts = vec![
            TriggerStmt::ApplyDelta {
                target: "V".into(),
                u: Expr::var("u1"),
                v: Expr::var("v1"),
            },
            TriggerStmt::ApplyDelta {
                target: "V".into(),
                u: Expr::var("u2"),
                v: Expr::var("v2"),
            },
        ];
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts,
        };
        let effects = derive_effects(&t.stmts);
        // Empty predecessor lists put both statements into stage 0.
        let dag = StmtDag::from_preds(effects, vec![vec![], vec![]]).unwrap();
        let diags = verify_stages(&t, &dag);
        // The ApplyDelta RMW self-read makes the pair hazard surface as
        // read-after-write on the shared target (checked before WAW).
        assert!(
            diags.iter().any(|d| d.severity == Severity::Error
                && d.pass == AnalyzerPass::Disjointness
                && d.message.contains("hazard on [\"V\"]")),
            "{diags:?}"
        );
    }

    #[test]
    fn rank_bound_propagates() {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("u", 8, 1);
        cat.declare("v", 8, 1);
        // [u | A u] has rank bound 2; (A u) v' has rank bound 1.
        let stack = Expr::HStack(vec![Expr::var("u"), Expr::var("A") * Expr::var("u")]);
        assert_eq!(infer_shape(&stack, &cat).unwrap().rank, 2);
        let outer = (Expr::var("A") * Expr::var("u")) * Expr::var("v").t();
        let s = infer_shape(&outer, &cat).unwrap();
        assert_eq!((s.rows, s.cols, s.rank), (8, 8, 1));
        assert_eq!(infer_shape(&Expr::zero(3, 3), &cat).unwrap().rank, 0);
    }

    #[test]
    fn liveness_warns_on_dead_block() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("dU_A", 4, 1);
        cat.declare("dV_A", 4, 1);
        cat.declare("dead", 4, 1);
        let t = Trigger {
            input: "A".into(),
            update_rank: 1,
            stmts: vec![
                TriggerStmt::Assign {
                    var: "dead".into(),
                    expr: Expr::var("dU_A"),
                },
                TriggerStmt::ApplyDelta {
                    target: "A".into(),
                    u: Expr::var("dU_A"),
                    v: Expr::var("dV_A"),
                },
            ],
        };
        let tp = TriggerProgram {
            triggers: vec![t],
            catalog: cat,
        };
        let report = analyze_program(&tp, &AnalyzeOptions::default());
        assert!(!report.has_errors(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.pass == AnalyzerPass::Liveness && d.message.contains("'dead'")));
    }

    #[test]
    fn diagnostics_render_structured() {
        let d = Diagnostic {
            severity: Severity::Error,
            pass: AnalyzerPass::Shape,
            trigger: "A".into(),
            stmt: Some(3),
            message: "bad".into(),
            suggestion: Some("fix".into()),
        };
        let text = d.to_string();
        assert!(text.contains("error[shape]") && text.contains("stmt 3"));
        assert!(text.contains("hint: fix"));
        assert!(matches!(
            d.to_error(),
            ExprError::Analysis { stmt: Some(3), .. }
        ));
    }
}
