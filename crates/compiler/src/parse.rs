//! APL-style textual frontend (§6: "We have built an APL-style frontend
//! where users can provide their programs and annotate dynamic matrices").
//!
//! Grammar (statements end with `;`):
//!
//! ```text
//! program := stmt*
//! stmt    := IDENT ":=" expr ";"
//! expr    := term (("+" | "-") term)*
//! term    := factor ("*" factor)*
//! factor  := primary ("'")*              -- postfix transpose
//! primary := IDENT | NUMBER | "inv" "(" expr ")" | "I" "(" INT ")"
//!          | "zeros" "(" INT "," INT ")" | "(" expr ")"
//! ```
//!
//! Numbers act as scalar multipliers: `0.5 * A * B` parses to
//! `Scale(0.5, A·B)`.
//!
//! ```
//! use linview_compiler::parse::parse_program;
//! let p = parse_program("B := A * A; C := B * B;").unwrap();
//! assert_eq!(p.len(), 2);
//! ```

use linview_expr::Expr;
use std::fmt;

use crate::Program;

/// A parse failure with byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the offending token.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Assign, // :=
    Plus,
    Minus,
    Star,
    Tick,    // '
    InvMark, // ^-1 (postfix inverse, as printed by the pretty printer)
    LParen,
    RParen,
    Comma,
    Semi,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' | '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '+' => {
                toks.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                toks.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            '\'' => {
                toks.push((i, Tok::Tick));
                i += 1;
            }
            '^' => {
                if src[i..].starts_with("^-1") {
                    toks.push((i, Tok::InvMark));
                    i += 3;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected '^-1'".into(),
                    });
                }
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            ';' => {
                toks.push((i, Tok::Semi));
                i += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push((i, Tok::Assign));
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: i,
                        message: "expected ':='".into(),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || (bytes[i] == b'-'
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<f64>().map_err(|_| ParseError {
                    position: start,
                    message: format!("bad number literal '{text}'"),
                })?;
                toks.push((start, Tok::Number(value)));
            }
            other => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

/// A parsed multiplicative factor: either a scalar literal or a matrix.
enum Factor {
    Scalar(f64),
    Mat(Expr),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or_else(|| self.toks.last().map(|(p, _)| p + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                position: self.here(),
                message: format!("expected {what}"),
            })
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.here(),
            message: message.into(),
        })
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while self.peek().is_some() {
            let Some(Tok::Ident(name)) = self.bump() else {
                return self.err("expected statement target identifier");
            };
            self.expect(&Tok::Assign, "':='")?;
            let e = self.expr()?;
            self.expect(&Tok::Semi, "';'")?;
            prog.assign(name, e);
        }
        Ok(prog)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    lhs = lhs + self.term()?;
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    lhs = lhs - self.term()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut scalar = 1.0f64;
        let mut mat: Option<Expr> = None;
        loop {
            match self.factor()? {
                Factor::Scalar(s) => scalar *= s,
                Factor::Mat(m) => {
                    mat = Some(match mat {
                        None => m,
                        Some(acc) => acc * m,
                    })
                }
            }
            // `*` is optional: juxtaposition (`A B`, the paper's trigger
            // listing syntax) also denotes a product, so the pretty
            // printer's output parses back.
            match self.peek() {
                Some(Tok::Star) => self.pos += 1,
                Some(Tok::Ident(_)) | Some(Tok::Number(_)) | Some(Tok::LParen) => {}
                _ => break,
            }
        }
        match mat {
            Some(m) if scalar == 1.0 => Ok(m),
            Some(m) => Ok(m.scale(scalar)),
            None => self.err("term with no matrix factor (pure scalar expression)"),
        }
    }

    fn factor(&mut self) -> Result<Factor, ParseError> {
        let mut f = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Tick) => {
                    self.pos += 1;
                    f = match f {
                        Factor::Mat(m) => Factor::Mat(m.t()),
                        Factor::Scalar(_) => return self.err("transpose of a scalar"),
                    };
                }
                Some(Tok::InvMark) => {
                    self.pos += 1;
                    f = match f {
                        Factor::Mat(m) => Factor::Mat(m.inv()),
                        Factor::Scalar(_) => return self.err("inverse of a scalar literal"),
                    };
                }
                _ => return Ok(f),
            }
        }
    }

    fn primary(&mut self) -> Result<Factor, ParseError> {
        match self.bump() {
            Some(Tok::Number(v)) => Ok(Factor::Scalar(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Factor::Mat(e))
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "inv" => {
                    self.expect(&Tok::LParen, "'(' after inv")?;
                    let e = self.expr()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Factor::Mat(e.inv()))
                }
                "I" if self.peek() == Some(&Tok::LParen) => {
                    self.pos += 1;
                    let n = self.int_literal()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Factor::Mat(Expr::identity(n)))
                }
                "zeros" if self.peek() == Some(&Tok::LParen) => {
                    self.pos += 1;
                    let r = self.int_literal()?;
                    self.expect(&Tok::Comma, "','")?;
                    let c = self.int_literal()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Factor::Mat(Expr::zero(r, c)))
                }
                _ => Ok(Factor::Mat(Expr::var(name))),
            },
            _ => self.err("expected a primary expression"),
        }
    }

    fn int_literal(&mut self) -> Result<usize, ParseError> {
        match self.bump() {
            Some(Tok::Number(v)) if v.fract() == 0.0 && v >= 0.0 => Ok(v as usize),
            _ => self.err("expected a non-negative integer literal"),
        }
    }
}

/// Parses a textual program into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

/// Parses a single expression (convenience for tests and the REPL-style
/// examples).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if p.peek().is_some() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1_1() {
        let p = parse_program("B := A * A;\nC := B * B;").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.statements()[0].to_string(), "B := A A;");
        assert_eq!(p.statements()[1].target, "C");
    }

    #[test]
    fn parses_ols() {
        let e = parse_expr("inv(X' * X) * X' * Y").unwrap();
        assert_eq!(e.to_string(), "(X' X)^-1 X' Y");
    }

    #[test]
    fn parses_scalars_and_precedence() {
        let e = parse_expr("0.5 * A * B + C").unwrap();
        assert_eq!(e.to_string(), "0.5 (A B) + C");
        let e2 = parse_expr("A - B - C").unwrap();
        // Left associative subtraction.
        assert_eq!(e2.to_string(), "A - B - C");
    }

    #[test]
    fn parses_identity_and_zero_literals() {
        let e = parse_expr("I(4) + zeros(4, 4)").unwrap();
        assert_eq!(e.to_string(), "I(4) + 0(4x4)");
    }

    #[test]
    fn parses_parens_and_double_transpose() {
        let e = parse_expr("(A + B)' * C''").unwrap();
        assert_eq!(e.to_string(), "(A + B)' C''");
    }

    #[test]
    fn comments_are_ignored() {
        let p = parse_program("% gradient step\nT := A * T0 + B; # trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("B := A ** A;").unwrap_err();
        assert!(err.position > 0);
        assert!(err.to_string().contains("parse error"));
        assert!(parse_program("B = A;").is_err());
        assert!(parse_expr("2.5 * 3").is_err());
        assert!(parse_expr("A'").is_ok());
        assert!(parse_expr("3'").is_err());
    }

    #[test]
    fn juxtaposition_denotes_product() {
        let e = parse_expr("A B C").unwrap();
        assert_eq!(e, parse_expr("A * B * C").unwrap());
        let p = parse_program("B := A A;").unwrap();
        assert_eq!(p.statements()[0].to_string(), "B := A A;");
        // Scalar juxtaposition too: "2 A" = 2·A.
        assert_eq!(parse_expr("2 A").unwrap(), Expr::var("A").scale(2.0));
    }

    #[test]
    fn display_output_parses_back() {
        for src in [
            "A * B + C'",
            "inv(X' * X) * X' * Y",
            "0.5 * A * (B - C)",
            "I(4) + A * A",
        ] {
            let e = parse_expr(src).unwrap();
            let round = parse_expr(&e.to_string()).unwrap();
            assert_eq!(e, round, "round-trip failed for {src}: printed {e}");
        }
    }

    #[test]
    fn scientific_notation_numbers() {
        let e = parse_expr("1e-2 * A").unwrap();
        assert_eq!(e, Expr::var("A").scale(0.01));
    }
}
