//! Analytical REEVAL-vs-INCR comparison (§5 as an API).
//!
//! Given a program and the set of dynamic inputs, [`analyze`] prices both
//! maintenance strategies under the symbolic cost model:
//!
//! * **re-evaluation** — the cost of evaluating every statement whose value
//!   can change (statements over purely static inputs are computed once and
//!   never again);
//! * **incremental** — the compiled trigger program's cost
//!   ([`TriggerProgram::cost`]), i.e. delta-block evaluation plus low-rank
//!   view updates.
//!
//! The resulting [`AnalysisReport`] carries the predicted speedup and the
//! extra memory incremental maintenance needs (it materializes every
//! statement; re-evaluation only needs the final view and live
//! intermediates) — the same trade-off Tables 2 and 3 tabulate.

use linview_expr::cost::CostModel;
use linview_expr::Catalog;

use crate::{compile, CompileOptions, Program, Result, TriggerProgram};

/// The outcome of the §5-style analysis.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Modeled FLOPs to re-evaluate all dynamic statements once.
    pub reeval_flops: f64,
    /// Modeled FLOPs for one firing of every trigger.
    pub incremental_flops: f64,
    /// Bytes of state incremental maintenance materializes (all views).
    pub incremental_memory_bytes: usize,
    /// Bytes of state re-evaluation must keep (inputs + final view).
    pub reeval_memory_bytes: usize,
    /// The compiled trigger program the estimate is based on.
    pub trigger_program: TriggerProgram,
}

impl AnalysisReport {
    /// Predicted REEVAL/INCR speedup per update.
    pub fn predicted_speedup(&self) -> f64 {
        if self.incremental_flops == 0.0 {
            f64::INFINITY
        } else {
            self.reeval_flops / self.incremental_flops
        }
    }

    /// Memory overhead factor of going incremental.
    pub fn memory_overhead(&self) -> f64 {
        if self.reeval_memory_bytes == 0 {
            1.0
        } else {
            self.incremental_memory_bytes as f64 / self.reeval_memory_bytes as f64
        }
    }

    /// True when the model predicts incremental maintenance pays off.
    pub fn incremental_wins(&self) -> bool {
        self.predicted_speedup() > 1.0
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "REEVAL: {:.3e} flops/update, {} B state",
            self.reeval_flops, self.reeval_memory_bytes
        )?;
        writeln!(
            f,
            "INCR:   {:.3e} flops/update, {} B state",
            self.incremental_flops, self.incremental_memory_bytes
        )?;
        writeln!(
            f,
            "predicted speedup {:.1}x at {:.1}x the memory",
            self.predicted_speedup(),
            self.memory_overhead()
        )
    }
}

/// Prices both strategies for `program` under rank-`update_rank` updates to
/// `inputs`. The catalog must declare every base matrix.
pub fn analyze(
    program: &Program,
    inputs: &[&str],
    cat: &Catalog,
    model: &CostModel,
    opts: &CompileOptions,
) -> Result<AnalysisReport> {
    let normalized = program.hoist_inverses(inputs);
    let tp = compile(&normalized, inputs, cat, opts)?;
    let full_cat = &tp.catalog;

    // Re-evaluation: statements transitively affected by any input.
    let mut dynamic: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
    let mut reeval_flops = 0.0;
    for stmt in normalized.statements() {
        if stmt.expr.references_any(dynamic.iter().map(String::as_str)) {
            reeval_flops += model.expr_cost(&stmt.expr, full_cat)?;
            dynamic.push(stmt.target.clone());
        }
    }
    // Applying the input delta itself costs one rank-k outer product.
    for input in inputs {
        let d = full_cat.get(input)?;
        reeval_flops += linview_expr::cost::low_rank_update_cost(d, opts.update_rank);
    }

    let incremental_flops = tp.cost(model)?;

    // Memory: INCR materializes inputs + every statement target; REEVAL
    // holds inputs + the final statement's view.
    let bytes_of = |name: &str| -> Result<usize> {
        Ok(full_cat.get(name)?.len() * std::mem::size_of::<f64>())
    };
    let mut incr_mem = 0usize;
    for input in inputs {
        incr_mem += bytes_of(input)?;
    }
    for stmt in normalized.statements() {
        incr_mem += bytes_of(&stmt.target)?;
    }
    let mut reeval_mem = 0usize;
    for input in inputs {
        reeval_mem += bytes_of(input)?;
    }
    if let Some(last) = normalized.statements().last() {
        reeval_mem += bytes_of(&last.target)?;
    }

    Ok(AnalysisReport {
        reeval_flops,
        incremental_flops,
        incremental_memory_bytes: incr_mem,
        reeval_memory_bytes: reeval_mem,
        trigger_program: tp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_expr::Expr;

    fn powers(n: usize, statements: usize) -> (Program, Catalog) {
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let mut p = Program::new();
        let mut prev = "A".to_string();
        for i in 0..statements {
            let name = format!("P{i}");
            p.assign(&name, Expr::var(&prev) * Expr::var(&prev));
            prev = name;
        }
        (p, cat)
    }

    #[test]
    fn incremental_wins_for_matrix_powers() {
        let (p, cat) = powers(256, 3); // A^8
        let report = analyze(
            &p,
            &["A"],
            &cat,
            &CostModel::cubic(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(report.incremental_wins());
        // n³-class vs n²k-class: at n = 256 the gap is large.
        assert!(report.predicted_speedup() > 10.0);
        // But it costs more memory (every power materialized).
        assert!(report.memory_overhead() > 1.4);
    }

    #[test]
    fn static_statements_do_not_count_toward_reeval() {
        let mut cat = Catalog::new();
        cat.declare("A", 64, 64);
        cat.declare("M", 64, 64);
        let mut p = Program::new();
        p.assign("N", Expr::var("M") * Expr::var("M")); // static
        p.assign("B", Expr::var("A") * Expr::var("A")); // dynamic
        let report = analyze(
            &p,
            &["A"],
            &cat,
            &CostModel::cubic(),
            &CompileOptions::default(),
        )
        .unwrap();
        // Only B's product + the input update are re-evaluated.
        let model = CostModel::cubic();
        let expected = model.mul_cost(64, 64, 64) + 2.0 * 64.0 * 64.0;
        assert!((report.reeval_flops - expected).abs() < 1.0);
    }

    #[test]
    fn gamma_controls_the_gap() {
        // With a smaller γ, re-evaluation gets relatively cheaper and the
        // predicted speedup shrinks — §3's framing of when IVM pays off.
        let (p, cat) = powers(256, 2);
        let opts = CompileOptions::default();
        let cubic = analyze(&p, &["A"], &cat, &CostModel::cubic(), &opts).unwrap();
        let strassen = analyze(&p, &["A"], &cat, &CostModel::with_gamma(2.807), &opts).unwrap();
        assert!(strassen.predicted_speedup() < cubic.predicted_speedup());
        assert!(strassen.incremental_wins());
    }

    #[test]
    fn report_renders() {
        let (p, cat) = powers(32, 2);
        let report = analyze(
            &p,
            &["A"],
            &cat,
            &CostModel::cubic(),
            &CompileOptions::default(),
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("predicted speedup"));
        assert!(text.contains("REEVAL:"));
    }
}
