//! Algorithm 1: `Compile(P, I) → T`.
//!
//! For each dynamic input `X`, walk the program's statements in order,
//! deriving the factored delta of every right-hand side under the current
//! delta map `D` (initially `{X ↦ (dU_X, dV_X)}`), appending each statement's
//! delta to `D` so later statements see it (delta *propagation*, §4.3), and
//! finally emit the update statements `Aᵢ += Uᵢ Vᵢᵀ` in program order.
//!
//! Statements whose right-hand side is a (dynamic) matrix inverse are
//! maintained with the Sherman–Morrison trigger primitive instead of a
//! static delta expression; run [`Program::hoist_inverses`] first so every
//! such inverse is a top-level statement.

use linview_expr::delta::{self, Delta, DeltaMap};
use linview_expr::{simplify, Catalog, DeltaOptions, Expr};

use crate::{Program, Result, Trigger, TriggerProgram, TriggerStmt};

/// Options for incremental compilation.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Rank of the incoming updates (`ΔX = dU_X dV_Xᵀ` with this many
    /// columns). Rank 1 is the paper's canonical single-row update.
    pub update_rank: usize,
    /// Delta derivation options (common-factor extraction toggle).
    pub delta: DeltaOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            update_rank: 1,
            delta: DeltaOptions::default(),
        }
    }
}

/// Compiles `program` into one trigger per input in `inputs`.
///
/// `cat` must declare the shape of every base matrix; view shapes are
/// inferred. The returned [`TriggerProgram`] carries the extended catalog
/// (views + all delta block variables).
pub fn compile(
    program: &Program,
    inputs: &[&str],
    cat: &Catalog,
    opts: &CompileOptions,
) -> Result<TriggerProgram> {
    let mut catalog = cat.clone();
    program.infer_dims(&mut catalog)?;

    let mut triggers = Vec::with_capacity(inputs.len());
    for input in inputs {
        let trigger = compile_trigger(program, input, &mut catalog, opts)?;
        // Validate the staged schedule at compile time: the runtime relies
        // on every emitted trigger admitting a topological stage order.
        trigger.dag()?;
        triggers.push(trigger);
    }
    let tp = TriggerProgram { triggers, catalog };
    // Deny-by-default static analysis: shape inference, stage-disjointness
    // proofs, and the scheduler cross-check must all pass before any
    // backend sees the program.
    crate::analyze::check_program(&tp, Some(program))?;
    Ok(tp)
}

/// Compiles `program` into a **single** trigger handling *simultaneous*
/// updates to all of `inputs` (§4.4 / Example 4.5: the multi-matrix delta
/// rule `Δ_D(E) = Δ_A(E) + Δ_{D∖{A}}(E + Δ_A(E))` falls out of the product
/// rule, which is exact for simultaneous updates).
///
/// This differs from [`compile`] — which emits one trigger per input, to be
/// fired one update at a time — in that one firing folds a whole
/// multi-input change (e.g. the gradient-descent pattern where `ΔX`
/// perturbs both `A = I − XᵀX` and `B = XᵀY`) into every view at once.
pub fn compile_joint(
    program: &Program,
    inputs: &[&str],
    cat: &Catalog,
    opts: &CompileOptions,
) -> Result<JointTrigger> {
    let mut catalog = cat.clone();
    program.infer_dims(&mut catalog)?;

    let mut deltas = DeltaMap::new();
    let mut updates = Vec::new();
    for input in inputs {
        let (du, dv) = delta::declare_input_delta(&mut catalog, input, opts.update_rank)?;
        deltas.insert(input.to_string(), (du.clone(), dv.clone()));
        updates.push(TriggerStmt::ApplyDelta {
            target: input.to_string(),
            u: du,
            v: dv,
        });
    }

    let mut compute = Vec::new();
    for stmt in program.statements() {
        let target = &stmt.target;
        let (u_name, v_name) = (format!("U_{target}"), format!("V_{target}"));
        let produced = if let Expr::Inverse(inner) = &stmt.expr {
            compile_inverse_stmt(
                target,
                inner,
                &mut catalog,
                &deltas,
                opts,
                &mut compute,
                &u_name,
                &v_name,
            )?
        } else {
            compile_plain_stmt(
                target,
                &stmt.expr,
                &mut catalog,
                &deltas,
                opts,
                &mut compute,
                &u_name,
                &v_name,
            )?
        };
        if produced {
            deltas.insert(target.clone(), (Expr::var(&u_name), Expr::var(&v_name)));
            updates.push(TriggerStmt::ApplyDelta {
                target: target.clone(),
                u: Expr::var(&u_name),
                v: Expr::var(&v_name),
            });
        }
    }

    let mut stmts = compute;
    stmts.extend(updates);
    let trigger = Trigger {
        input: inputs.join("+"),
        update_rank: opts.update_rank,
        stmts,
    };
    trigger.dag()?; // compile-time schedule validation, as in `compile`
    let joint = JointTrigger {
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        update_rank: opts.update_rank,
        trigger,
        catalog,
    };
    crate::analyze::check_joint(&joint, Some(program))?; // deny-by-default
    Ok(joint)
}

/// A single trigger maintaining all views under *simultaneous* factored
/// updates to several inputs (the §4.4 multi-update extension).
#[derive(Debug, Clone)]
pub struct JointTrigger {
    /// The dynamic inputs, in declaration order; one `(dU_X, dV_X)` pair is
    /// bound per input at firing time.
    pub inputs: Vec<String>,
    /// Rank of each incoming update.
    pub update_rank: usize,
    /// The trigger body (compute phase, then all `+=` updates).
    pub trigger: Trigger,
    /// Catalog covering bases, views, and delta blocks.
    pub catalog: Catalog,
}

impl std::fmt::Display for JointTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pairs: Vec<String> = self
            .inputs
            .iter()
            .map(|i| format!("(dU_{i}, dV_{i})"))
            .collect();
        writeln!(
            f,
            "ON UPDATE {} BY {}:",
            self.inputs.join(", "),
            pairs.join(", ")
        )?;
        for s in &self.trigger.stmts {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

fn compile_trigger(
    program: &Program,
    input: &str,
    catalog: &mut Catalog,
    opts: &CompileOptions,
) -> Result<Trigger> {
    // D ← list(⟨X, u, v⟩)
    let (du, dv) = delta::declare_input_delta(catalog, input, opts.update_rank)?;
    let mut deltas = DeltaMap::new();
    deltas.insert(input.to_string(), (du.clone(), dv.clone()));

    let mut compute = Vec::new();
    // Update statements: the input first (paper's Example 4.6 order), then
    // each affected view in program order.
    let mut updates = vec![TriggerStmt::ApplyDelta {
        target: input.to_string(),
        u: du,
        v: dv,
    }];

    for stmt in program.statements() {
        let target = &stmt.target;
        // ⟨Pi, Qi⟩ ← ComputeDelta(Ei, D)
        let (u_name, v_name) = (format!("U_{target}"), format!("V_{target}"));
        let produced = if let Expr::Inverse(inner) = &stmt.expr {
            compile_inverse_stmt(
                target,
                inner,
                catalog,
                &deltas,
                opts,
                &mut compute,
                &u_name,
                &v_name,
            )?
        } else {
            compile_plain_stmt(
                target,
                &stmt.expr,
                catalog,
                &deltas,
                opts,
                &mut compute,
                &u_name,
                &v_name,
            )?
        };
        if produced {
            // D ← D.append(⟨Ai, Pi, Qi⟩)
            deltas.insert(target.clone(), (Expr::var(&u_name), Expr::var(&v_name)));
            updates.push(TriggerStmt::ApplyDelta {
                target: target.clone(),
                u: Expr::var(&u_name),
                v: Expr::var(&v_name),
            });
        }
    }

    let mut stmts = compute;
    stmts.extend(updates);
    Ok(Trigger {
        input: input.to_string(),
        update_rank: opts.update_rank,
        stmts,
    })
}

/// Handles `target := expr` for non-inverse right-hand sides. Returns true
/// when the statement is affected by the update (a delta was emitted).
#[allow(clippy::too_many_arguments)]
fn compile_plain_stmt(
    _target: &str,
    expr: &Expr,
    catalog: &mut Catalog,
    deltas: &DeltaMap,
    opts: &CompileOptions,
    compute: &mut Vec<TriggerStmt>,
    u_name: &str,
    v_name: &str,
) -> Result<bool> {
    match delta::derive(expr, catalog, deltas, &opts.delta)? {
        Delta::Zero => Ok(false),
        Delta::Factored { u, v } => {
            let u = simplify::simplify(&u, catalog)?;
            let v = simplify::simplify(&v, catalog)?;
            let du = u.dim(catalog)?;
            let dv = v.dim(catalog)?;
            catalog.declare(u_name, du.rows, du.cols);
            catalog.declare(v_name, dv.rows, dv.cols);
            compute.push(TriggerStmt::Assign {
                var: u_name.to_string(),
                expr: u,
            });
            compute.push(TriggerStmt::Assign {
                var: v_name.to_string(),
                expr: v,
            });
            Ok(true)
        }
    }
}

/// Handles `target := inner⁻¹` via the Sherman–Morrison primitive.
#[allow(clippy::too_many_arguments)]
fn compile_inverse_stmt(
    target: &str,
    inner: &Expr,
    catalog: &mut Catalog,
    deltas: &DeltaMap,
    opts: &CompileOptions,
    compute: &mut Vec<TriggerStmt>,
    u_name: &str,
    v_name: &str,
) -> Result<bool> {
    match delta::derive(inner, catalog, deltas, &opts.delta)? {
        Delta::Zero => Ok(false),
        Delta::Factored { u: p, v: q } => {
            let p = simplify::simplify(&p, catalog)?;
            let q = simplify::simplify(&q, catalog)?;
            // Materialize P/Q once so the S-M loop reads plain variables.
            let (p_name, q_name) = (format!("P_{target}"), format!("Q_{target}"));
            let dp = p.dim(catalog)?;
            let dq = q.dim(catalog)?;
            catalog.declare(&p_name, dp.rows, dp.cols);
            catalog.declare(&q_name, dq.rows, dq.cols);
            compute.push(TriggerStmt::Assign {
                var: p_name.clone(),
                expr: p,
            });
            compute.push(TriggerStmt::Assign {
                var: q_name.clone(),
                expr: q,
            });
            // ΔW has the same rank as the inner delta: one rank-1 output
            // pair per S-M application (§4.1: "Note that Δ(E⁻¹) is also a
            // rank-1 matrix" per step).
            let n = catalog.get(target)?.rows;
            catalog.declare(u_name, n, dp.cols);
            catalog.declare(v_name, n, dp.cols);
            compute.push(TriggerStmt::ShermanMorrison {
                inv_var: target.to_string(),
                p: Expr::var(p_name),
                q: Expr::var(q_name),
                out_u: u_name.to_string(),
                out_v: v_name.to_string(),
            });
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn powers_program() -> (Program, Catalog) {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("C", Expr::var("B") * Expr::var("B"));
        (p, cat)
    }

    #[test]
    fn compiles_example_4_6_structure() {
        let (p, cat) = powers_program();
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        assert_eq!(tp.triggers.len(), 1);
        let t = &tp.triggers[0];
        // Compute phase: U_B, V_B, U_C, V_C.
        let assigns: Vec<_> = t.compute_phase().collect();
        assert_eq!(assigns.len(), 4);
        // Update phase: A, B, C in order.
        assert_eq!(t.maintained_views(), vec!["A", "B", "C"]);
        // Rank growth 1 -> 2 -> 4 (§4.3).
        assert_eq!(tp.catalog.get("U_B").unwrap().cols, 2);
        assert_eq!(tp.catalog.get("U_C").unwrap().cols, 4);
    }

    #[test]
    fn generated_trigger_text_matches_paper_shape() {
        let (p, cat) = powers_program();
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let text = tp.to_string();
        assert!(text.contains("ON UPDATE A BY (dU_A, dV_A):"));
        assert!(text.contains("U_B := [ dU_A | A dU_A + dU_A (dV_A' dU_A) ];"));
        assert!(text.contains("V_B := [ A' dV_A | dV_A ];"));
        assert!(text.contains("A += dU_A dV_A';"));
        assert!(text.contains("C += U_C V_C';"));
    }

    #[test]
    fn statements_untouched_by_update_are_skipped() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("M", 4, 4);
        let mut p = Program::new();
        p.assign("B", Expr::var("A") * Expr::var("A"));
        p.assign("N", Expr::var("M") * Expr::var("M")); // static
        let tp = compile(&p, &["A"], &cat, &CompileOptions::default()).unwrap();
        let t = &tp.triggers[0];
        assert_eq!(t.maintained_views(), vec!["A", "B"]);
    }

    #[test]
    fn one_trigger_per_input() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("B", 4, 4);
        let mut p = Program::new();
        p.assign("C", Expr::var("A") * Expr::var("B"));
        let tp = compile(&p, &["A", "B"], &cat, &CompileOptions::default()).unwrap();
        assert_eq!(tp.triggers.len(), 2);
        assert!(tp.trigger_for("A").is_some());
        assert!(tp.trigger_for("B").is_some());
        assert!(tp.trigger_for("C").is_none());
    }

    #[test]
    fn joint_compilation_covers_example_4_5() {
        // Δ_{A,B}(A·B) = (ΔA)B + A(ΔB) + (ΔA)(ΔB) — a single trigger with
        // both input deltas bound, block rank 2 (factored).
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("B", 8, 8);
        let mut p = Program::new();
        p.assign("C", Expr::var("A") * Expr::var("B"));
        let joint = compile_joint(&p, &["A", "B"], &cat, &CompileOptions::default()).unwrap();
        assert_eq!(joint.inputs, vec!["A", "B"]);
        let text = joint.to_string();
        assert!(text.starts_with("ON UPDATE A, B BY (dU_A, dV_A), (dU_B, dV_B):"));
        // Both input views and C are updated.
        assert_eq!(joint.trigger.maintained_views(), vec!["A", "B", "C"]);
        // The §4.3-factored multi-update delta has rank 2: the dU_A block
        // absorbs both the (ΔA)B and (ΔA)(ΔB) monomials.
        assert_eq!(joint.catalog.get("U_C").unwrap().cols, 2);
        assert!(text.contains("dU_A"));
        assert!(text.contains("dU_B"));
    }

    #[test]
    fn joint_compilation_skips_unaffected_statements() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("B", 4, 4);
        cat.declare("M", 4, 4);
        let mut p = Program::new();
        p.assign("C", Expr::var("A") * Expr::var("B"));
        p.assign("N", Expr::var("M") * Expr::var("M")); // static
        let joint = compile_joint(&p, &["A", "B"], &cat, &CompileOptions::default()).unwrap();
        assert!(!joint.trigger.maintained_views().contains(&"N"));
    }

    #[test]
    fn inverse_statement_uses_sherman_morrison() {
        let mut cat = Catalog::new();
        cat.declare("X", 8, 4);
        let mut p = Program::new();
        p.assign("Z", Expr::var("X").t() * Expr::var("X"));
        p.assign("W", Expr::var("Z").inv());
        let tp = compile(&p, &["X"], &cat, &CompileOptions::default()).unwrap();
        let t = &tp.triggers[0];
        let sm: Vec<_> = t
            .stmts
            .iter()
            .filter(|s| matches!(s, TriggerStmt::ShermanMorrison { .. }))
            .collect();
        assert_eq!(sm.len(), 1);
        // W is still updated via ApplyDelta from the S-M output blocks.
        assert!(t.maintained_views().contains(&"W"));
        // ΔZ for rank-1 ΔX has rank 2, so the S-M output blocks are n×2.
        assert_eq!(tp.catalog.get("U_W").unwrap().cols, 2);
    }

    #[test]
    fn rank_k_updates_scale_block_widths() {
        let (p, cat) = powers_program();
        let opts = CompileOptions {
            update_rank: 3,
            ..Default::default()
        };
        let tp = compile(&p, &["A"], &cat, &opts).unwrap();
        assert_eq!(tp.catalog.get("dU_A").unwrap().cols, 3);
        assert_eq!(tp.catalog.get("U_B").unwrap().cols, 6);
        assert_eq!(tp.catalog.get("U_C").unwrap().cols, 12);
    }

    #[test]
    fn unfactored_compilation_triples_ranks() {
        let (p, cat) = powers_program();
        let opts = CompileOptions {
            update_rank: 1,
            delta: DeltaOptions {
                factor_common: false,
            },
        };
        let tp = compile(&p, &["A"], &cat, &opts).unwrap();
        assert_eq!(tp.catalog.get("U_B").unwrap().cols, 3);
        assert_eq!(tp.catalog.get("U_C").unwrap().cols, 9);
    }
}
