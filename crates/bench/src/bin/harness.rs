//! Paper-table harness: regenerates the rows of every table and figure in
//! LINVIEW's evaluation section at laptop scale.
//!
//! ```text
//! cargo run -p linview-bench --release --bin harness -- all
//! cargo run -p linview-bench --release --bin harness -- fig3a fig3e
//! cargo run -p linview-bench --release --bin harness -- --quick all
//! ```

use linview_bench::{experiments, Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let cfg = if quick {
        Config::quick()
    } else {
        Config::default()
    };

    if names.is_empty() {
        eprintln!(
            "usage: harness [--quick] <experiment>...\n\
             experiments: fig3a fig3b fig3c fig3d fig3e fig3f fig3g fig3h \
             table2 table3 table4 engine scheduler gemm sparsity serving ablations extensions all"
        );
        std::process::exit(2);
    }

    println!(
        "LINVIEW experiment harness (n = {}, k = {}, {} updates per point)\n",
        cfg.n, cfg.k, cfg.updates
    );
    for name in names {
        match experiments::by_name(name, &cfg) {
            Some(tables) => {
                for t in tables {
                    println!("{t}");
                }
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                std::process::exit(2);
            }
        }
    }
}
