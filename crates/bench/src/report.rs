//! Plain-text table rendering for the harness output.

use std::fmt;

/// A printable experiment result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (e.g. "Fig 3a — Matrix Powers, evaluation models").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; panics if the cell count disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let w = self.widths();
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = w[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let sep: Vec<String> = w.iter().map(|&x| "-".repeat(x)).collect();
        writeln!(f, "| {} |", sep.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = w[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "> {n}")?;
        }
        Ok(())
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats a speedup factor the way the paper annotates its bars ("18.1x").
pub fn fmt_speedup(reeval: std::time::Duration, incr: std::time::Duration) -> String {
    let denom = incr.as_secs_f64();
    if denom == 0.0 {
        return "inf".into();
    }
    format!("{:.1}x", reeval.as_secs_f64() / denom)
}

/// Formats byte counts.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["model", "time"]);
        t.row(vec!["LIN".into(), "12.0 ms".into()]);
        t.row(vec!["SKIP-8".into(), "3.1 ms".into()]);
        t.note("shape only");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| SKIP-8 |"));
        assert!(s.contains("> shape only"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_nanos(800_000)), "800.0 us");
        assert_eq!(
            fmt_speedup(Duration::from_secs(2), Duration::from_secs(1)),
            "2.0x"
        );
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }
}
