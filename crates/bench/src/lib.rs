//! # linview-bench
//!
//! Shared experiment drivers for regenerating every table and figure of the
//! LINVIEW paper's evaluation (§7). Each `figNx`/`tableN` function in
//! [`experiments`] builds the paper's workload at laptop scale, measures the
//! strategies being compared, and returns a printable [`report::Table`]
//! whose rows mirror the paper's plot series.
//!
//! Two consumers:
//!
//! * `cargo run -p linview-bench --release --bin harness -- <experiment>` —
//!   prints the tables (the source of EXPERIMENTS.md).
//! * `cargo bench -p linview-bench` — Criterion benches, one per figure or
//!   table, reusing the same workload builders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

/// Scaling configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Base square dimension for single-size experiments.
    pub n: usize,
    /// Iteration count for the iterative workloads.
    pub k: usize,
    /// Updates measured per data point (averaged).
    pub updates: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 192,
            k: 16,
            updates: 5,
        }
    }
}

impl Config {
    /// A fast configuration for smoke tests.
    pub fn quick() -> Self {
        Config {
            n: 96,
            k: 8,
            updates: 2,
        }
    }
}
